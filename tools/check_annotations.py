#!/usr/bin/env python
"""Flag undefined names inside deferred (string) type annotations.

Deferred annotations — quoted strings or anything under ``from
__future__ import annotations`` — are never evaluated at import time,
so a typo or missing typing import (``Dict`` used without being
imported, the bug this tool was written against) sails through the
entire functional test suite and only explodes when a runtime
inspector calls ``typing.get_type_hints``. Static linters with an
undefined-name rule catch this, but the repro toolchain must work
offline with the stdlib only, so this is a first-party AST pass.

For every module it collects the names bound anywhere in the file —
imports (including ``if TYPE_CHECKING:`` blocks, which are legitimate
annotation-only imports), assignments, function and class definitions —
plus builtins. Every annotation expression is then parsed and each
root ``Name`` it references must be in that set.

Usage::

    python tools/check_annotations.py src tests benchmarks

Exits non-zero and prints ``path:line: name`` for each violation.
"""

import ast
import builtins
import sys
from pathlib import Path

#: Names valid in annotations without any binding.
IMPLICIT = {"None"} | set(dir(builtins))


def _bound_names(tree: ast.AST) -> set:
    """Every name the module binds anywhere, at any nesting depth.

    Deliberately over-approximate: a name bound inside a function would
    not actually be visible to ``get_type_hints``, but chasing scopes
    buys little for a checker whose job is catching never-imported
    names.
    """
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.alias):
            target = node.asname or node.name.split(".")[0]
            names.add(target)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Name) and \
                isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, ast.arg):
            names.add(node.arg)
    return names


def _annotation_nodes(tree: ast.AST):
    """Yield ``(lineno, expression_node)`` for every annotation."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (args.posonlyargs + args.args + args.kwonlyargs
                        + [a for a in (args.vararg, args.kwarg) if a]):
                if arg.annotation is not None:
                    yield arg.annotation.lineno, arg.annotation
            if node.returns is not None:
                yield node.returns.lineno, node.returns
        elif isinstance(node, ast.AnnAssign):
            yield node.annotation.lineno, node.annotation


def _referenced_roots(annotation: ast.AST, lineno: int):
    """Root names an annotation expression refers to.

    Quoted annotations (``"SolverTelemetry"``) are parsed recursively;
    unparsable strings are skipped (they may be intentional literals).
    For dotted references only the root matters (``np.ndarray`` needs
    ``np``).
    """
    stack = [(annotation, lineno)]
    while stack:
        node, line = stack.pop()
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                continue
            stack.append((parsed.body, line))
            continue
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and \
                    isinstance(child.ctx, ast.Load):
                yield line, child.id
            elif isinstance(child, ast.Constant) and \
                    isinstance(child.value, str) and child is not node:
                stack.append((child, line))


def check_file(path: Path):
    """Return ``[(lineno, name), ...]`` undefined-in-annotation hits."""
    tree = ast.parse(path.read_text(), filename=str(path))
    bound = _bound_names(tree) | IMPLICIT
    problems = []
    for lineno, annotation in _annotation_nodes(tree):
        for line, name in _referenced_roots(annotation, lineno):
            if name not in bound:
                problems.append((line, name))
    return problems


def main(argv):
    roots = [Path(p) for p in (argv or ["src"])]
    failures = 0
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            for lineno, name in check_file(path):
                print(f"{path}:{lineno}: undefined name {name!r} "
                      f"in annotation")
                failures += 1
    if failures:
        print(f"{failures} undefined annotation name(s)",
              file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
