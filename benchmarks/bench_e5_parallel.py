"""E5 — Parallel-scalability figures (paper analogue: graph-centric vs.
vertex-centric paradigm, and speedup with workers).

Expected shape: the block-centric engine needs several times fewer
supersteps and messages than the vertex-centric baseline at equal
partitioning; locality-aware partitions (time-range) beat hash
partitions; wall-clock improves with workers until process overhead
dominates at this (laptop) scale.
"""

import os
import time


from repro.bench.runner import PerfArtifact
from repro.bench.tables import render_rows, render_series
from repro.bench.workloads import sized_citation_graph
from repro.engine.blocks import BlockEngine, vertex_centric_pagerank
from repro.engine.parallel import ParallelBlockEngine
from repro.graph.partition import bfs_partition, hash_partition, \
    range_partition

SCALE = 40_000
WORKER_COUNTS = [1, 2, 4]


def test_e5_paradigm_comparison(benchmark, run_once):
    graph, _ = sized_citation_graph(SCALE)
    partitions = {
        "range(8)": range_partition(graph, 8),
        "hash(8)": hash_partition(graph, 8, seed=1),
        "bfs(8)": bfs_partition(graph, 8, seed=1),
    }

    def run_all():
        rows = []
        for name, partition in partitions.items():
            start = time.perf_counter()
            block = BlockEngine(graph, partition).run()
            block_seconds = time.perf_counter() - start
            start = time.perf_counter()
            vertex = vertex_centric_pagerank(graph, partition)
            vertex_seconds = time.perf_counter() - start
            rows.append({
                "partition": name,
                "cut%": f"{partition.cut_fraction(graph) * 100:.1f}",
                "block ss": block.supersteps,
                "vertex ss": vertex.supersteps,
                "block msgs": block.messages,
                "vertex msgs": vertex.messages,
                "block ms": f"{block_seconds * 1e3:.0f}",
                "vertex ms": f"{vertex_seconds * 1e3:.0f}",
            })
        return rows

    rows = run_once(benchmark, run_all)
    print("\n" + render_rows(
        f"E5a graph-centric vs vertex-centric ({SCALE} articles)", rows))
    for row in rows:
        assert row["block ss"] <= row["vertex ss"]
        assert row["block msgs"] <= row["vertex msgs"]
    by_name = {row["partition"]: row for row in rows}
    assert by_name["range(8)"]["block ss"] <= by_name["hash(8)"]["block ss"]


def test_e5_worker_scaling(benchmark, run_once):
    graph, _ = sized_citation_graph(SCALE)
    partition = range_partition(graph, 8)

    def run_all():
        from repro.obs import SolverTelemetry

        timings = []
        supersteps = []
        shipped = []
        for workers in WORKER_COUNTS:
            engine = ParallelBlockEngine(graph, partition,
                                         num_workers=workers)
            telemetry = SolverTelemetry("parallel")
            start = time.perf_counter()
            result = engine.run(telemetry=telemetry)
            timings.append(time.perf_counter() - start)
            supersteps.append(result.supersteps)
            shipped.append(telemetry.bytes_shipped)
            assert result.converged
        return timings, supersteps, shipped

    timings, supersteps, shipped = run_once(benchmark, run_all)
    print("\n" + render_series(
        f"E5b wall-clock vs workers ({SCALE} articles, range(8), "
        f"{os.cpu_count()} cores)",
        "workers", WORKER_COUNTS,
        {
            "seconds": [f"{t:.2f}" for t in timings],
            "supersteps": supersteps,
            "shipped MB": [f"{b / 1e6:.1f}" for b in shipped],
            "speedup": [f"{timings[0] / t:.2f}x" for t in timings],
        }))

    artifact = PerfArtifact("E5")
    for workers, seconds, steps, bytes_shipped in zip(
            WORKER_COUNTS, timings, supersteps, shipped):
        artifact.record("worker_scaling", num_workers=workers,
                        seconds=seconds, supersteps=steps,
                        bytes_shipped=bytes_shipped,
                        speedup=timings[0] / seconds)
    print(f"wrote {artifact.save()}")
    # Supersteps may grow mildly with workers (weaker cross-worker
    # coupling) but must stay far below the vertex-centric count.
    assert max(supersteps) < 15


def test_e5_ipc_data_planes(benchmark, run_once):
    """E5c — zero-copy shared memory vs pickled IPC, same math.

    Expected shape: identical fixed points (bit for bit), per-superstep
    serialized bytes collapsing to the control-message floor on the
    shm plane, and wall-clock no worse (usually better: the score
    vector is no longer pickled to every worker every superstep).
    """
    import numpy as np

    from repro.obs import SolverTelemetry

    graph, _ = sized_citation_graph(SCALE)
    partition = range_partition(graph, 8)
    planes = {"shm": True, "pickle": False}

    def run_all():
        measured = {}
        for name, flag in planes.items():
            engine = ParallelBlockEngine(graph, partition,
                                         num_workers=4,
                                         shared_memory=flag)
            telemetry = SolverTelemetry("parallel")
            start = time.perf_counter()
            result = engine.run(telemetry=telemetry)
            measured[name] = {
                "seconds": time.perf_counter() - start,
                "bytes": telemetry.bytes_shipped,
                "shm_bytes": telemetry.counters.get("ipc.shm_bytes", 0),
                "supersteps": result.supersteps,
                "scores": result.scores,
            }
            assert result.converged
        return measured

    measured = run_once(benchmark, run_all)
    print("\n" + render_rows(
        f"E5c IPC data planes ({SCALE} articles, range(8), 4 workers)",
        [{
            "plane": name,
            "seconds": f"{m['seconds']:.2f}",
            "shipped KB": f"{m['bytes'] / 1e3:.1f}",
            "shm MB": f"{m['shm_bytes'] / 1e6:.1f}",
            "supersteps": m["supersteps"],
        } for name, m in measured.items()]))

    artifact = PerfArtifact("E5")
    for name, m in measured.items():
        artifact.record("ipc_plane", plane=name,
                        seconds=m["seconds"],
                        bytes_shipped=m["bytes"],
                        shm_bytes=m["shm_bytes"],
                        supersteps=m["supersteps"])
    print(f"wrote {artifact.save()}")
    assert np.array_equal(measured["shm"]["scores"],
                          measured["pickle"]["scores"])
    assert measured["shm"]["bytes"] < measured["pickle"]["bytes"] / 10
