"""Sustained write-load freshness benchmark (partitioned → served).

Streams a long synthetic feed through the partitioned ingest pipeline
(:class:`repro.ingest.PartitionedIngestPipeline`) into a live
:class:`repro.serve.ShardedGateway` sink — the full record-to-served
path: K partition journals, deterministic fan-in, shared admission,
batch apply, board publish, shard scatter — with segment archival armed
so the journals stay bounded while the load runs. It writes one
``RunReport`` with:

* ``metrics/records_lost`` / ``metrics/duplicates_applied`` — clean
  feed records missing from (or double-applied to) the served corpus,
  computed from corpus sizes against the fault-free reference batch.
  Deterministic: must stay 0 (CI hard-gates these);
* ``metrics/records_per_sec`` — sustained ingest throughput,
  pull-to-served (wall clock; soft);
* ``metrics/freshness_served_p50_ms`` / ``_p99_ms`` — arrival→served
  wall-clock latency percentiles from the shared
  ``repro_freshness_served_seconds`` histogram, ``stage="served"``
  (bucket upper bounds, so quantized; soft);
* ``metrics/segments_archived`` / ``metrics/segments_reclaimed_bytes``
  — journal segments reclaimed while the load ran (deterministic for
  fixed arguments);
* ``metrics/batches_applied`` / ``metrics/served_samples`` — run shape.

CI diffs the report against the committed baseline with::

    python benchmarks/compare.py \
        benchmarks/baselines/ingest_sustained.json OUT.json \
        --hard-prefix metrics/records_lost \
        --hard-prefix metrics/duplicates_applied

so loss or double application fails the build while wall-clock
throughput and latency drift on shared runners stays soft. The script
also self-checks — zero loss, zero duplicates, served samples present,
archival actually reclaimed segments — and exits 2 before writing a
report when the run itself is broken.

Regenerate the baseline (after an *intentional* change) by running this
script with ``--json`` pointed at the baseline path.

Named ``ingest_sustained.py`` (not ``bench_*.py``) on purpose:
``bench_*`` files are collected by pytest as benchmark suites; this is
a standalone script for CI.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.generator import GeneratorConfig, generate_dataset
from repro.engine.live import LiveRanker
from repro.ingest import (Coalescer, PartitionedIngestPipeline,
                          SyntheticSource, fault_free_reference)
from repro.ingest.sim import datasets_equal
from repro.engine.updates import apply_update
from repro.obs import Observability
from repro.obs.metrics import FRESHNESS_METRIC
from repro.obs.report import RunReport
from repro.serve import ShardedGateway


def _served_percentiles(snapshot: Dict[str, object],
                        quantiles: Sequence[float]
                        ) -> Tuple[int, List[float]]:
    """(sample count, per-quantile upper bounds in ms) for
    ``stage="served"`` of the shared freshness histogram."""
    instrument = snapshot.get(FRESHNESS_METRIC) or {}
    for entry in instrument.get("values", []):
        if entry.get("labels", {}).get("stage") != "served":
            continue
        buckets = list(instrument.get("buckets", []))
        counts = list(entry.get("counts", []))
        total = sum(counts)
        if not total:
            return 0, [0.0 for _ in quantiles]
        results = []
        for quantile in quantiles:
            target = quantile * total
            cumulative = 0
            value = buckets[-1] if buckets else 0.0
            for index, count in enumerate(counts):
                cumulative += count
                if cumulative >= target:
                    # The overflow bucket has no upper bound; report
                    # the largest finite bound as the floor estimate.
                    value = buckets[index] if index < len(buckets) \
                        else buckets[-1]
                    break
            results.append(value * 1000.0)
        return total, results
    return 0, [0.0 for _ in quantiles]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Sustained write-load benchmark: partitioned "
                    "ingest into a sharded serving gateway; writes a "
                    "RunReport for benchmarks/compare.py gating.")
    parser.add_argument("--json", required=True,
                        help="where to write the RunReport")
    parser.add_argument("--records", type=int, default=600,
                        help="synthetic feed length")
    parser.add_argument("--seed", type=int, default=4)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--segment-records", type=int, default=48,
                        help="journal segment size (small enough that "
                             "archival reclaims during the run)")
    args = parser.parse_args(argv)

    dataset = generate_dataset(GeneratorConfig(
        num_articles=150, num_venues=6, num_authors=50,
        start_year=2000, end_year=2015, seed=args.seed + 11))
    source = SyntheticSource(
        sorted(dataset.articles), args.records, seed=args.seed,
        duplicate_every=9, cite_every=5)

    workdir = Path(tempfile.mkdtemp(prefix="ingest-sustained-"))
    obs = Observability("ingest-sustained")
    try:
        live = LiveRanker(dataset,
                          checkpoint_dir=workdir / "checkpoints",
                          obs=obs)
        with ShardedGateway(live, args.shards, mode="inline",
                            obs=obs) as gateway:
            pipeline = PartitionedIngestPipeline(
                live, source, workdir / "journal", args.partitions,
                coalescer=Coalescer(max_queue=96, min_batch=16,
                                    max_batch=48),
                segment_records=args.segment_records,
                compaction="archive", sink=gateway, obs=obs)
            started = time.perf_counter()
            report = pipeline.run()
            elapsed = time.perf_counter() - started
        served_dataset = live.dataset
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    reference = fault_free_reference(source, dataset)
    reference_dataset = apply_update(dataset, reference)
    expected_new = len(reference_dataset.articles) \
        - len(dataset.articles)
    applied_new = len(served_dataset.articles) - len(dataset.articles)
    expected_edges = reference_dataset.num_citations
    applied_edges = served_dataset.num_citations
    lost = max(0, expected_new - applied_new) \
        + max(0, expected_edges - applied_edges)
    duplicated = max(0, applied_new - expected_new) \
        + max(0, applied_edges - expected_edges)
    identical = datasets_equal(served_dataset, reference_dataset)

    served_samples, (p50_ms, p99_ms) = _served_percentiles(
        obs.metrics.snapshot(), (0.50, 0.99))
    records_per_sec = report.records_pulled / elapsed \
        if elapsed > 0 else 0.0

    print(f"# ingest-sustained: {report.records_pulled} records, "
          f"{args.partitions} partitions -> {args.shards} shards "
          f"in {elapsed:.3f}s ({records_per_sec:,.0f} rec/s)")
    print(f"#   served: n={served_samples} p50<={p50_ms:.2f}ms "
          f"p99<={p99_ms:.2f}ms")
    print(f"#   archival: {report.segments_archived} segment(s), "
          f"{report.segments_reclaimed_bytes} bytes reclaimed")
    print(f"#   contract: lost={lost} duplicated={duplicated} "
          f"corpus_identical={identical}")

    if lost or duplicated or not identical:
        print(f"FATAL: served corpus diverged from the fault-free "
              f"reference (lost={lost}, duplicated={duplicated}, "
              f"identical={identical})", file=sys.stderr)
        return 2
    if not served_samples:
        print("FATAL: no served freshness samples — the gateway sink "
              "never published, so the benchmark measured nothing",
              file=sys.stderr)
        return 2
    if not report.segments_archived:
        print("FATAL: archival reclaimed no segments — shrink "
              "--segment-records or lengthen --records",
              file=sys.stderr)
        return 2

    run_report = RunReport("ingest-sustained")
    run_report.record_metric("records_total", report.records_pulled)
    run_report.record_metric("records_lost", lost)
    run_report.record_metric("duplicates_applied", duplicated)
    run_report.record_metric("corpus_identical", int(identical))
    run_report.record_metric("batches_applied", report.batches_applied)
    run_report.record_metric("duplicates_skipped",
                             report.duplicates_skipped)
    run_report.record_metric("segments_archived",
                             report.segments_archived)
    run_report.record_metric("segments_reclaimed_bytes",
                             report.segments_reclaimed_bytes)
    run_report.record_metric("served_samples", served_samples)
    run_report.record_metric("records_per_sec",
                             round(records_per_sec, 1))
    run_report.record_metric("freshness_served_p50_ms",
                             round(p50_ms, 3))
    run_report.record_metric("freshness_served_p99_ms",
                             round(p99_ms, 3))
    print(f"wrote {run_report.save(args.json)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
