"""E10 (extension) — Decay-kernel ablation.

The paper commits to exponential time decay; this ablation swaps the
kernel while keeping everything else fixed: exponential (the paper's),
linear fade, and no decay at all (reducing prestige to classic weighted
PageRank). Expected shape: both decaying kernels beat no-decay on the
young-article slice; the exact kernel family matters much less than
having *any* decay — supporting the paper's design without overclaiming
the specific functional form.
"""

from repro.bench.tables import render_rows
from repro.bench.workloads import aminer_small
from repro.core.time_weight import (
    exponential_decay,
    linear_decay,
    no_decay,
)
from repro.core.twpr import time_weighted_pagerank
from repro.core.popularity import popularity_scores
from repro.core.importance import combine_importance
from repro.eval.metrics import pairwise_accuracy
from repro.eval.protocol import young_pairs

KERNELS = [
    ("exponential(0.1)", exponential_decay(0.1)),
    ("linear(30y)", linear_decay(30.0)),
    ("none", no_decay()),
]


def test_e10_kernel_ablation(benchmark, run_once):
    dataset, truth = aminer_small(20_000)
    graph = dataset.citation_csr()
    years = dataset.article_years(graph)
    observation = int(years.max())
    ids = [int(i) for i in graph.node_ids]
    young = young_pairs(dataset, truth, window=3)

    def run_all():
        rows = []
        for name, kernel in KERNELS:
            prestige = time_weighted_pagerank(graph, years,
                                              decay=kernel).scores
            popularity = popularity_scores(graph, years, observation,
                                           decay=kernel)
            importance = combine_importance(prestige, popularity,
                                            theta=0.5,
                                            normalization="rank")
            scores = dict(zip(ids, importance))
            rows.append({
                "kernel": name,
                "all pairs": f"{pairwise_accuracy(scores, truth.pairs):.4f}",
                "young pairs": f"{pairwise_accuracy(scores, young):.4f}",
            })
        return rows

    rows = run_once(benchmark, run_all)
    print("\n" + render_rows(
        "E10 decay-kernel ablation (article importance only, theta=0.5)",
        rows))

    young_acc = {row["kernel"]: float(row["young pairs"]) for row in rows}
    assert young_acc["exponential(0.1)"] > young_acc["none"]
    assert young_acc["linear(30y)"] > young_acc["none"]
