"""E3 — Parameter-sensitivity figures (paper analogue: accuracy vs. each
model knob, one sweep per sub-figure).

Sweeps: prestige decay lambda, popularity decay sigma, the
prestige/popularity balance theta, and the article/venue/author blend.
Expected shape: smooth single-peaked curves — performance degrades
gracefully away from the defaults, and extreme settings (decay 0 =
static PageRank; theta extremes) are visibly worse than the middle.
"""


from repro.bench.tables import render_series
from repro.bench.workloads import aminer_small
from repro.core.model import ArticleRanker, RankerConfig
from repro.eval.metrics import pairwise_accuracy

SCALE = 10_000

LAMBDAS = [0.0, 0.05, 0.1, 0.2, 0.4]
SIGMAS = [0.1, 0.2, 0.4, 0.8]
THETAS = [0.0, 0.25, 0.5, 0.75, 1.0]
BLENDS = [(1.0, 0.0, 0.0), (0.6, 0.4, 0.0), (0.6, 0.25, 0.15),
          (0.4, 0.4, 0.2), (0.34, 0.33, 0.33)]


def accuracy(dataset, truth, **overrides) -> float:
    ranker = ArticleRanker(RankerConfig(**overrides))
    return pairwise_accuracy(ranker.rank(dataset).by_id(), truth.pairs)


def test_e3_lambda_and_sigma(benchmark, run_once):
    dataset, truth = aminer_small(SCALE)

    def sweep():
        lam = [accuracy(dataset, truth, prestige_decay=v)
               for v in LAMBDAS]
        sig = [accuracy(dataset, truth, popularity_decay=v)
               for v in SIGMAS]
        return lam, sig

    lam, sig = run_once(benchmark, sweep)
    print("\n" + render_series(
        "E3a pairwise accuracy vs prestige decay lambda", "lambda",
        LAMBDAS, {"pairwise": [f"{v:.4f}" for v in lam]}))
    print("\n" + render_series(
        "E3b pairwise accuracy vs popularity decay sigma", "sigma",
        SIGMAS, {"pairwise": [f"{v:.4f}" for v in sig]}))
    assert max(lam) - min(lam) < 0.2  # graceful degradation
    assert all(v > 0.5 for v in lam + sig)


def test_e3_theta(benchmark, run_once):
    dataset, truth = aminer_small(SCALE)
    values = run_once(benchmark, lambda: [
        accuracy(dataset, truth, theta=theta) for theta in THETAS])
    print("\n" + render_series(
        "E3c pairwise accuracy vs theta (prestige weight)", "theta",
        THETAS, {"pairwise": [f"{v:.4f}" for v in values]}))
    assert all(v > 0.5 for v in values)


def test_e3_blend(benchmark, run_once):
    dataset, truth = aminer_small(SCALE)

    def sweep():
        results = []
        for article, venue, author in BLENDS:
            results.append(accuracy(
                dataset, truth, weight_article=article,
                weight_venue=venue, weight_author=author))
        return results

    values = run_once(benchmark, sweep)
    labels = [f"{a}/{v}/{u}" for a, v, u in BLENDS]
    print("\n" + render_series(
        "E3d pairwise accuracy vs article/venue/author blend",
        "blend (A/V/U)", labels,
        {"pairwise": [f"{v:.4f}" for v in values]}))
    # The ensemble must beat the article-only corner.
    assert max(values[1:]) > values[0]
