"""E6 — Incremental vs. batch figure (paper analogue: dynamic ranking
runtime as the update batch grows, plus the approximation cost).

Expected shape: for small arrival batches the incremental algorithm is
an order of magnitude faster than recomputing from scratch, because the
affected area stays a small fraction of the graph; as the update
fraction grows the affected area — and the advantage — shrinks, with the
crossover somewhere in the tens of percent. The approximation error
stays tiny throughout.
"""

import time

import numpy as np
import pytest

from repro.bench.tables import render_series
from repro.core.twpr import time_weighted_pagerank
from repro.data.generator import GeneratorConfig, generate_dataset
from repro.engine.incremental import IncrementalEngine
from repro.engine.updates import fraction_update

SCALE = 30_000
FRACTIONS = [0.005, 0.01, 0.02, 0.05, 0.10, 0.20]


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(GeneratorConfig(
        num_articles=SCALE, num_venues=60, num_authors=7_500, seed=31))


def test_e6_incremental_vs_batch(benchmark, run_once, dataset):
    def run_all():
        rows = []
        for fraction in FRACTIONS:
            base, batch = fraction_update(dataset, fraction)
            engine = IncrementalEngine(base, delta_threshold=1e-3)
            start = time.perf_counter()
            report = engine.apply(batch)
            incremental_seconds = time.perf_counter() - start

            # Fair batch comparator: what a non-incremental system does
            # on arrival — rebuild the graph from the dataset and solve.
            start = time.perf_counter()
            graph = engine.dataset.citation_csr()
            years = engine.dataset.article_years(graph)
            exact = time_weighted_pagerank(graph, years,
                                           decay=engine.decay)
            batch_seconds = time.perf_counter() - start
            error = float(np.abs(engine.scores - exact.scores).sum())
            rows.append((fraction, report.affected.fraction,
                         incremental_seconds, batch_seconds, error))
        return rows

    rows = run_once(benchmark, run_all)
    print("\n" + render_series(
        f"E6 incremental vs batch recompute ({SCALE} articles, "
        "threshold 1e-3)",
        "update %", [f"{f * 100:.1f}" for f in FRACTIONS],
        {
            "affected %": [f"{r[1] * 100:.1f}" for r in rows],
            "incr ms": [f"{r[2] * 1e3:.0f}" for r in rows],
            "batch ms": [f"{r[3] * 1e3:.0f}" for r in rows],
            "speedup": [f"{r[3] / r[2]:.2f}x" for r in rows],
            "L1 error": [f"{r[4]:.1e}" for r in rows],
        }))

    # Small updates must touch a small area, stay accurate and beat the
    # batch recompute clearly.
    smallest = rows[0]
    assert smallest[1] < 0.5
    assert smallest[4] < 1e-2
    assert smallest[3] / smallest[2] > 2.0
    # The affected area grows with the update size, eroding the speedup.
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][3] / rows[-1][2] < smallest[3] / smallest[2]
