"""Streaming-ingest chaos CI smoke benchmark (small, fast, gated).

Runs :func:`repro.ingest.run_ingest_sim` with every fault class armed —
duplicate storm, mangled records, late citations, a source stall, a
transient source error, a flaky parser, a poison record, a mid-batch
worker kill with journal resume, and a torn journal tail — then writes
one ``RunReport`` with:

* ``metrics/records_lost`` / ``metrics/duplicates_applied`` — clean
  feed records missing from the final corpus, and records applied more
  than once. Both computed from corpus sizes (not pipeline counters)
  and deterministic: must stay 0;
* ``metrics/bit_identical`` / ``metrics/contract_held`` — whether the
  chaos run's final ranking is score-for-score identical to the
  fault-free single-batch run, and the combined verdict. Deterministic:
  must stay 1;
* ``metrics/quarantined`` / ``metrics/duplicates_skipped`` /
  ``metrics/batches_applied`` — run shape (deterministic for fixed
  arguments);
* ``metrics/freshness_max_records`` / ``metrics/peak_queue`` —
  arrival-to-visible lag (in records, a deterministic clock) and
  coalescer occupancy.

CI diffs the report against the committed baseline with::

    python benchmarks/compare.py benchmarks/baselines/ingest_smoke.json \
        OUT.json --hard-prefix metrics/records_lost \
        --hard-prefix metrics/duplicates_applied \
        --hard-prefix metrics/quarantined

so any increase in loss, double application, or quarantine volume
fails the build while shape drift is reported but soft. (``compare.py``
flags increases only; a ``bit_identical``/``contract_held`` drop to 0
is caught by this script's own self-check, which exits 2 before any
report is written.)

Regenerate the baseline (after an *intentional* change) by running this
script with ``--json`` pointed at the baseline path.

Named ``ingest_smoke.py`` (not ``bench_*.py``) on purpose: ``bench_*``
files are collected by pytest as benchmark suites; this is a
standalone script for CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.ingest import run_ingest_sim


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Small streaming-ingest chaos benchmark; writes a "
                    "RunReport for benchmarks/compare.py gating.")
    parser.add_argument("--json", required=True,
                        help="where to write the RunReport")
    parser.add_argument("--records", type=int, default=80,
                        help="synthetic feed length")
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args(argv)

    sim = run_ingest_sim(
        records=args.records, seed=args.seed,
        duplicate_every=7, mangle_every=11, cite_every=5,
        stall_record=10, stall_seconds=0.001, fail_record=20,
        flaky_record=30, poison_record=40, crash_batch=2,
        truncate_journal=True)
    print(sim.render())

    if sim.status != "ok":
        print(f"FATAL: run {sim.status}: {sim.error}",
              file=sys.stderr)
        return 2
    if not (sim.crashed and sim.resumed):
        print("FATAL: the scripted mid-batch crash (or the journal "
              "resume) never happened — the chaos run tested nothing",
              file=sys.stderr)
        return 2
    if not sim.contract_held:
        print(f"FATAL: delivery contract violated "
              f"(records_lost={sim.metrics.get('records_lost')}, "
              f"duplicates_applied="
              f"{sim.metrics.get('duplicates_applied')}, "
              f"bit_identical={sim.metrics.get('bit_identical')})",
              file=sys.stderr)
        return 2

    print(f"wrote {sim.to_report().save(args.json)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
