"""Diff two RunReport JSON artifacts and flag perf regressions.

Usage::

    python benchmarks/compare.py BASELINE.json CANDIDATE.json \
        [--threshold 0.2]

Compares, section by section, everything two reports both measured:

* ``timings`` — per-stage wall-clock seconds;
* scalar numeric entries of ``metrics``;
* ``PerfArtifact`` records (``metrics["records"]``), matched by
  position within each label group, numeric field by numeric field.

A *regression* is a candidate value more than ``threshold`` (default
20%) above the baseline; the exit code is 1 when any stage regressed,
so CI can gate on it. With one or more ``--hard-prefix PREFIX``
options, only regressions whose key starts with a given prefix are
fatal — the rest are reported as *soft* and don't affect the exit
code. That lets CI hard-fail on deterministic measurements (e.g.
``metrics/bytes_``) while tolerating noisy ones (``timings/``) on
shared runners. Improvements are reported too, never fatal.
Values too small to time reliably (< 1 ms) are skipped — their ratios
are noise. Works across format versions: v1 artifacts simply have
fewer sections to compare.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.report import RunReport

#: Below this many seconds a timing ratio is noise, not signal.
MIN_COMPARABLE_SECONDS = 1e-3


@dataclass
class Delta:
    """One measurement present in both reports."""

    key: str
    baseline: float
    candidate: float

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.candidate > 0 else 1.0
        return self.candidate / self.baseline

    @property
    def change(self) -> float:
        """Relative change: +0.25 means 25% slower/larger."""
        return self.ratio - 1.0


@dataclass
class Comparison:
    """Everything two reports both measured, split by verdict."""

    regressions: List[Delta]
    improvements: List[Delta]
    unchanged: List[Delta]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _numeric_items(payload: Dict[str, object]) -> Iterator[
        Tuple[str, float]]:
    for key, value in payload.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            yield str(key), float(value)


def _record_series(report: Dict[str, object]) -> Iterator[
        Tuple[str, float]]:
    """PerfArtifact records flattened to comparable keys.

    Records are matched by position *within their label group*, so two
    runs of the same benchmark script line up row for row.
    """
    records = report.get("metrics", {}).get("records", [])
    if not isinstance(records, list):
        return
    position: Dict[str, int] = {}
    for record in records:
        if not isinstance(record, dict):
            continue
        label = str(record.get("label", "record"))
        index = position.get(label, 0)
        position[label] = index + 1
        for key, value in _numeric_items(record):
            if key == "label":
                continue
            yield f"records/{label}[{index}].{key}", value


def _measurements(report: Dict[str, object]) -> Dict[str, float]:
    measurements: Dict[str, float] = {}
    for stage, seconds in _numeric_items(report.get("timings", {})):
        if seconds >= MIN_COMPARABLE_SECONDS:
            measurements[f"timings/{stage}"] = seconds
    for key, value in _numeric_items(report.get("metrics", {})):
        measurements[f"metrics/{key}"] = value
    for key, value in _record_series(report):
        measurements[key] = value
    return measurements


def compare_reports(baseline: Dict[str, object],
                    candidate: Dict[str, object],
                    threshold: float = 0.2) -> Comparison:
    """Classify every measurement both reports share."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    base = _measurements(baseline)
    cand = _measurements(candidate)
    comparison = Comparison([], [], [])
    for key in sorted(set(base) & set(cand)):
        delta = Delta(key, base[key], cand[key])
        if delta.change > threshold:
            comparison.regressions.append(delta)
        elif delta.change < -threshold:
            comparison.improvements.append(delta)
        else:
            comparison.unchanged.append(delta)
    comparison.regressions.sort(key=lambda d: d.change, reverse=True)
    return comparison


def split_regressions(comparison: Comparison,
                      hard_prefixes: Optional[Sequence[str]]
                      ) -> Tuple[List[Delta], List[Delta]]:
    """Split regressions into (hard, soft) under the prefix gate.

    Without prefixes every regression is hard (the historical
    behavior); with prefixes only matching keys are.
    """
    if not hard_prefixes:
        return list(comparison.regressions), []
    hard = [delta for delta in comparison.regressions
            if any(delta.key.startswith(prefix)
                   for prefix in hard_prefixes)]
    soft = [delta for delta in comparison.regressions
            if delta not in hard]
    return hard, soft


def render(comparison: Comparison, baseline_name: str,
           candidate_name: str, threshold: float,
           hard_prefixes: Optional[Sequence[str]] = None) -> str:
    lines = [f"# compare: {baseline_name} -> {candidate_name} "
             f"(threshold {threshold:.0%})"]
    _, soft = split_regressions(comparison, hard_prefixes)
    soft_keys = {delta.key for delta in soft}

    def _row(delta: Delta, verdict: str) -> str:
        return (f"{verdict:<12} {delta.key:<44} "
                f"{delta.baseline:>12.6g} -> {delta.candidate:>12.6g}  "
                f"({delta.change:+.1%})")

    for delta in comparison.regressions:
        verdict = "regr (soft)" if delta.key in soft_keys \
            else "REGRESSION"
        lines.append(_row(delta, verdict))
    for delta in comparison.improvements:
        lines.append(_row(delta, "improvement"))
    for delta in comparison.unchanged:
        lines.append(_row(delta, "ok"))
    if not (comparison.regressions or comparison.improvements
            or comparison.unchanged):
        lines.append("(the reports share no comparable measurements)")
    lines.append(f"{len(comparison.regressions)} regression(s), "
                 f"{len(comparison.improvements)} improvement(s), "
                 f"{len(comparison.unchanged)} unchanged")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two RunReport JSON files; exit 1 on any "
                    "regression beyond the threshold.")
    parser.add_argument("baseline", help="baseline report (JSON)")
    parser.add_argument("candidate", help="candidate report (JSON)")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="relative regression gate (0.2 = 20%%)")
    parser.add_argument("--hard-prefix", action="append",
                        dest="hard_prefixes", metavar="PREFIX",
                        help="only regressions whose key starts with "
                             "this prefix are fatal (repeatable); "
                             "others are reported as soft")
    args = parser.parse_args(argv)
    baseline = RunReport.load(args.baseline)
    candidate = RunReport.load(args.candidate)
    comparison = compare_reports(baseline, candidate,
                                 threshold=args.threshold)
    try:
        print(render(comparison,
                     str(baseline.get("name", args.baseline)),
                     str(candidate.get("name", args.candidate)),
                     args.threshold, args.hard_prefixes))
    except BrokenPipeError:  # downstream pager/head closed the pipe
        try:
            sys.stdout.close()
        except OSError:
            pass
    hard, _ = split_regressions(comparison, args.hard_prefixes)
    return 1 if hard else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
