"""Sharded serve-load CI smoke benchmark (small, fast, gated).

Drives the K-shard scatter-gather gateway under publish churn with one
shard crash-faulted mid-run, then writes one ``RunReport`` with:

* ``metrics/merge_mismatches`` — merged top-k entries that differ from
  the single-process ``RankingService`` (bit-exact compare: ids,
  scores, tie order). Deterministic, must stay 0;
* ``metrics/queries_failed`` / ``metrics/shards_missing`` — reads that
  failed outright and shards still degraded after ``repair()``.
  Deterministic, must stay 0;
* ``metrics/num_shards`` / ``metrics/board_epoch`` — run shape
  (deterministic for fixed arguments);
* ``metrics/p50_ms`` / ``metrics/p99_ms`` / ``metrics/avg_latency_ms``
  — tail latency under churn (noisy on shared runners).

CI diffs the report against the committed baseline with::

    python benchmarks/compare.py benchmarks/baselines/serve_load_smoke.json \
        OUT.json --hard-prefix metrics/merge_mismatches \
        --hard-prefix metrics/queries_failed \
        --hard-prefix metrics/shards_ --hard-prefix metrics/num_shards

so merge/correctness regressions fail the build while latency noise is
reported but soft. The script additionally self-checks the degradation
story: the crashed shard must be *visible* in ``health()`` while the
fault is live and fully repaired afterwards — a silent fault or a
failed repair exits 2 before any report is written.

Regenerate the baseline (after an *intentional* change) by running this
script with ``--json`` pointed at the baseline path.

Named ``serve_load_smoke.py`` (not ``bench_*.py``) on purpose:
``bench_*`` files are collected by pytest as benchmark suites; this is
a standalone script for CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.data.generator import GeneratorConfig, generate_dataset
from repro.serve import run_load

CRASHED_SHARD = 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Small sharded serve-load benchmark; writes a "
                    "RunReport for benchmarks/compare.py gating.")
    parser.add_argument("--json", required=True,
                        help="where to write the RunReport")
    parser.add_argument("--scale", type=int, default=400,
                        help="synthetic corpus size (articles)")
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--mode", choices=("inline", "process"),
                        default="inline")
    parser.add_argument("--batches", type=int, default=3)
    parser.add_argument("--readers", type=int, default=4)
    parser.add_argument("--queries", type=int, default=25,
                        help="queries each reader issues")
    args = parser.parse_args(argv)

    config = GeneratorConfig(num_articles=args.scale, num_venues=8,
                             num_authors=args.scale // 4,
                             start_year=2000, end_year=2012, seed=23)
    dataset = generate_dataset(config)
    report = run_load(dataset, num_shards=args.shards, mode=args.mode,
                      batches=args.batches, batch_size=16,
                      readers=args.readers, queries=args.queries,
                      crash_shard=CRASHED_SHARD, fault_epoch=1)
    print(report.render())

    if report.status != "ok":
        print(f"FATAL: run {report.status}: {report.error}",
              file=sys.stderr)
        return 2
    if report.degraded_during != [CRASHED_SHARD]:
        print(f"FATAL: crashed shard {CRASHED_SHARD} not visible in "
              f"health() while faulted (saw {report.degraded_during})",
              file=sys.stderr)
        return 2
    if report.shards_missing or report.health.get("status") != "fresh":
        print("FATAL: repair() did not restore every shard",
              file=sys.stderr)
        return 2
    if report.merge_mismatches:
        print(f"FATAL: {report.merge_mismatches} merged entries "
              f"differ from the single-process service",
              file=sys.stderr)
        return 2

    print(f"wrote {report.to_report().save(args.json)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
