"""E8 — Young-article robustness table (paper analogue: the motivating
claim that static citation measures mis-rank recently published work).

Protocol: pairwise accuracy of every method, once over all judgment
pairs and once restricted to pairs of *young* articles (both published
within 3 years of the corpus horizon — too recent to have accumulated
citations proportional to merit).

Expected shape: every method loses accuracy on the young slice, but the
time-aware ensemble (popularity + venue + author signals, none of which
need years of citations) degrades far less than PageRank and raw counts,
whose young-slice accuracy collapses toward coin-flipping.
"""


from repro.bench.tables import render_rows
from repro.bench.workloads import aminer_small, compute_baseline_scores
from repro.eval.metrics import pairwise_accuracy
from repro.eval.protocol import young_pairs

WINDOW = 3


def test_e8_young_articles(benchmark, run_once):
    dataset, truth = aminer_small(20_000)
    scores_by_method = run_once(
        benchmark, lambda: compute_baseline_scores(dataset))
    young = young_pairs(dataset, truth, window=WINDOW)

    rows = []
    for method, scores in scores_by_method.items():
        overall = pairwise_accuracy(scores, truth.pairs)
        young_acc = pairwise_accuracy(scores, young)
        rows.append({
            "method": method,
            "all pairs": f"{overall:.4f}",
            f"young (<= {WINDOW}y)": f"{young_acc:.4f}",
            "drop": f"{overall - young_acc:+.4f}",
        })
    rows.sort(key=lambda r: -float(r[f"young (<= {WINDOW}y)"]))
    print("\n" + render_rows(
        f"E8 young-article robustness ({len(young)} young pairs of "
        f"{len(truth.pairs)})", rows))

    young_acc = {row["method"]: float(row[f"young (<= {WINDOW}y)"])
                 for row in rows}
    assert young_acc["QISAR"] > young_acc["PageRank"]
    assert young_acc["QISAR"] > young_acc["CitationCount"]
