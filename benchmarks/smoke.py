"""Parallel-engine CI smoke benchmark (small, fast, gated).

Runs the block-centric parallel engine on a small synthetic citation
graph over both IPC data planes and writes one ``RunReport`` with:

* ``metrics/bytes_shipped_shm`` / ``metrics/bytes_shipped_pickle`` —
  bytes actually serialized toward workers (the shm plane must stay at
  the control-message floor: these numbers are deterministic for a
  fixed graph/worker count, so regressions here mean the data plane
  started shipping arrays again);
* ``metrics/supersteps_*`` — convergence behavior (deterministic);
* ``metrics/blocks_skipped_*`` — frontier-compaction savings
  (deterministic for a fixed graph/worker count, soft-compared);
* ``timings/*_run`` — wall-clock per plane (noisy on shared runners);
* ``timings/kernel_*`` / ``metrics/kernel_speedup`` — per-node vs
  batched level-kernel Gauss–Seidel sweep wall-clock on a synthetic
  citation DAG (soft: timing keys are never hard-gated, and the
  speedup ratio is reported for trend-watching).

CI diffs the report against the committed baseline with::

    python benchmarks/compare.py benchmarks/baselines/parallel_smoke.json \
        OUT.json --hard-prefix metrics/bytes_ --hard-prefix metrics/supersteps_

so byte/superstep regressions fail the build while timing noise is
reported but soft. Regenerate the baseline (after an *intentional*
change) by running this script with ``--json`` pointed at the baseline
path.

Named ``smoke.py`` (not ``bench_*.py``) on purpose: ``bench_*`` files
are collected by pytest as benchmark suites; this is a standalone
script for CI.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

import numpy as np

from repro.bench.workloads import sized_citation_graph
from repro.engine.parallel import ParallelBlockEngine
from repro.graph.csr import CSRGraph
from repro.graph.partition import range_partition
from repro.obs import RunReport, SolverTelemetry, StageTimings
from repro.ranking.gauss_seidel import gauss_seidel_pagerank

PLANES = (("shm", True), ("pickle", False))


#: Sweeps per timed solve. Gauss–Seidel in influence order converges in
#: ~2 sweeps on a DAG, which would make whole-solve timing mostly
#: measure level-plan construction; an unreachable ``tol`` disables the
#: convergence exit so both kernels execute exactly this many sweeps.
KERNEL_SWEEPS = 10


def kernel_section(report: RunReport, timings: StageTimings,
                   nodes: int, edges: int, reps: int) -> bool:
    """Time the per-node vs level-kernel sweep on a citation DAG.

    Returns False when the two kernels disagree (a correctness bug,
    not a perf regression — the caller aborts).
    """
    rng = np.random.default_rng(9)
    a = rng.integers(0, nodes, edges)
    b = rng.integers(0, nodes, edges)
    keep = a != b
    # Newer articles cite older ones: src > dst, acyclic by construction.
    src = np.maximum(a[keep], b[keep])
    dst = np.minimum(a[keep], b[keep])
    graph = CSRGraph.from_edges(zip(src.tolist(), dst.tolist()),
                                nodes=range(nodes))

    best = {}
    results = {}
    for kernel in ("pernode", "levels"):
        elapsed = []
        for _ in range(reps):
            start = time.perf_counter()
            results[kernel] = gauss_seidel_pagerank(
                graph, tol=1e-300, max_sweeps=KERNEL_SWEEPS,
                kernel=kernel)
            elapsed.append(time.perf_counter() - start)
        best[kernel] = min(elapsed)
        timings.add(f"kernel_{kernel}", best[kernel])

    drift = float(np.abs(results["levels"].scores
                         - results["pernode"].scores).max())
    if drift > 1e-12:
        print(f"FATAL: kernels disagree (max drift {drift:.3g})",
              file=sys.stderr)
        return False
    speedup = best["pernode"] / best["levels"]
    report.record_metric("kernel_nodes", nodes)
    report.record_metric("kernel_sweeps", KERNEL_SWEEPS)
    report.record_metric("kernel_speedup", round(speedup, 2))
    print(f"kernel: pernode {best['pernode']:.3f}s, levels "
          f"{best['levels']:.3f}s ({speedup:.1f}x over "
          f"{KERNEL_SWEEPS} sweeps)")
    return True


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Small parallel-engine benchmark; writes a "
                    "RunReport for benchmarks/compare.py gating.")
    parser.add_argument("--json", required=True,
                        help="where to write the RunReport")
    parser.add_argument("--scale", type=int, default=3000,
                        help="synthetic corpus size (articles)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--blocks", type=int, default=6)
    parser.add_argument("--kernel-nodes", type=int, default=10_000,
                        help="DAG size for the sweep-kernel timing")
    parser.add_argument("--kernel-edges", type=int, default=200_000,
                        help="candidate edges for the kernel DAG")
    parser.add_argument("--reps", type=int, default=3,
                        help="best-of repetitions for kernel timing")
    args = parser.parse_args(argv)

    graph, _ = sized_citation_graph(args.scale)
    partition = range_partition(graph, args.blocks)
    timings = StageTimings()
    report = RunReport("parallel-smoke", timings=timings)
    report.record_metric("scale", args.scale)
    report.record_metric("workers", args.workers)
    report.record_metric("blocks", args.blocks)

    scores = {}
    for name, flag in PLANES:
        telemetry = SolverTelemetry("parallel")
        engine = ParallelBlockEngine(graph, partition,
                                     num_workers=args.workers,
                                     shared_memory=flag)
        start = time.perf_counter()
        result = engine.run(telemetry=telemetry)
        seconds = time.perf_counter() - start
        if not result.converged:
            print(f"FATAL: {name} plane did not converge",
                  file=sys.stderr)
            return 2
        timings.add(f"{name}_run", seconds)
        scores[name] = result.scores
        report.record_metric(f"bytes_shipped_{name}",
                             telemetry.bytes_shipped)
        report.record_metric(f"supersteps_{name}", result.supersteps)
        report.record_metric(f"blocks_skipped_{name}",
                             result.blocks_skipped)
        if flag is True:
            report.record_metric(
                "shm_segment_bytes",
                int(telemetry.counters.get("ipc.shm_bytes", 0)))
        print(f"{name:>6}: {seconds:.3f}s, {result.supersteps} "
              f"supersteps, {telemetry.bytes_shipped} bytes shipped")

    if not np.array_equal(scores["shm"], scores["pickle"]):
        print("FATAL: data planes disagree on the fixed point",
              file=sys.stderr)
        return 2
    if not kernel_section(report, timings, args.kernel_nodes,
                          args.kernel_edges, args.reps):
        return 2
    print(f"wrote {report.save(args.json)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
