"""Parallel-engine CI smoke benchmark (small, fast, gated).

Runs the block-centric parallel engine on a small synthetic citation
graph over both IPC data planes and writes one ``RunReport`` with:

* ``metrics/bytes_shipped_shm`` / ``metrics/bytes_shipped_pickle`` —
  bytes actually serialized toward workers (the shm plane must stay at
  the control-message floor: these numbers are deterministic for a
  fixed graph/worker count, so regressions here mean the data plane
  started shipping arrays again);
* ``metrics/supersteps_*`` — convergence behavior (deterministic);
* ``timings/*_run`` — wall-clock per plane (noisy on shared runners).

CI diffs the report against the committed baseline with::

    python benchmarks/compare.py benchmarks/baselines/parallel_smoke.json \
        OUT.json --hard-prefix metrics/bytes_ --hard-prefix metrics/supersteps_

so byte/superstep regressions fail the build while timing noise is
reported but soft. Regenerate the baseline (after an *intentional*
change) by running this script with ``--json`` pointed at the baseline
path.

Named ``smoke.py`` (not ``bench_*.py``) on purpose: ``bench_*`` files
are collected by pytest as benchmark suites; this is a standalone
script for CI.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

import numpy as np

from repro.bench.workloads import sized_citation_graph
from repro.engine.parallel import ParallelBlockEngine
from repro.graph.partition import range_partition
from repro.obs import RunReport, SolverTelemetry, StageTimings

PLANES = (("shm", True), ("pickle", False))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Small parallel-engine benchmark; writes a "
                    "RunReport for benchmarks/compare.py gating.")
    parser.add_argument("--json", required=True,
                        help="where to write the RunReport")
    parser.add_argument("--scale", type=int, default=3000,
                        help="synthetic corpus size (articles)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--blocks", type=int, default=6)
    args = parser.parse_args(argv)

    graph, _ = sized_citation_graph(args.scale)
    partition = range_partition(graph, args.blocks)
    timings = StageTimings()
    report = RunReport("parallel-smoke", timings=timings)
    report.record_metric("scale", args.scale)
    report.record_metric("workers", args.workers)
    report.record_metric("blocks", args.blocks)

    scores = {}
    for name, flag in PLANES:
        telemetry = SolverTelemetry("parallel")
        engine = ParallelBlockEngine(graph, partition,
                                     num_workers=args.workers,
                                     shared_memory=flag)
        start = time.perf_counter()
        result = engine.run(telemetry=telemetry)
        seconds = time.perf_counter() - start
        if not result.converged:
            print(f"FATAL: {name} plane did not converge",
                  file=sys.stderr)
            return 2
        timings.add(f"{name}_run", seconds)
        scores[name] = result.scores
        report.record_metric(f"bytes_shipped_{name}",
                             telemetry.bytes_shipped)
        report.record_metric(f"supersteps_{name}", result.supersteps)
        if flag is True:
            report.record_metric(
                "shm_segment_bytes",
                int(telemetry.counters.get("ipc.shm_bytes", 0)))
        print(f"{name:>6}: {seconds:.3f}s, {result.supersteps} "
              f"supersteps, {telemetry.bytes_shipped} bytes shipped")

    if not np.array_equal(scores["shm"], scores["pickle"]):
        print("FATAL: data planes disagree on the fixed point",
              file=sys.stderr)
        return 2
    print(f"wrote {report.save(args.json)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
