"""E7 — Affected-area figure (paper analogue: the expansion threshold's
area/accuracy trade-off).

Expected shape: shrinking the threshold delta grows the affected area
monotonically toward the whole graph and drives the approximation error
toward solver tolerance; large thresholds keep the area (and cost) tiny
at modest error. This is the knob that makes incremental ranking
tunable.
"""

import pytest

from repro.bench.tables import render_series
from repro.data.generator import GeneratorConfig, generate_dataset
from repro.engine.incremental import IncrementalEngine
from repro.engine.updates import fraction_update

SCALE = 20_000
THRESHOLDS = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5]
UPDATE_FRACTION = 0.02


@pytest.fixture(scope="module")
def split():
    dataset = generate_dataset(GeneratorConfig(
        num_articles=SCALE, num_venues=40, num_authors=5_000, seed=37))
    return fraction_update(dataset, UPDATE_FRACTION)


def test_e7_threshold_tradeoff(benchmark, run_once, split):
    base, batch = split

    def run_all():
        rows = []
        for threshold in THRESHOLDS:
            engine = IncrementalEngine(base, delta_threshold=threshold)
            report = engine.apply(batch)
            rows.append((report.affected.fraction,
                         report.seconds,
                         engine.error_vs_exact(),
                         report.iterations))
        return rows

    rows = run_once(benchmark, run_all)
    print("\n" + render_series(
        f"E7 affected area vs threshold ({SCALE} articles, "
        f"{UPDATE_FRACTION * 100:.0f}% update)",
        "delta", [f"{t:.0e}" for t in THRESHOLDS],
        {
            "affected %": [f"{r[0] * 100:.1f}" for r in rows],
            "apply ms": [f"{r[1] * 1e3:.0f}" for r in rows],
            "L1 error": [f"{r[2]:.1e}" for r in rows],
            "iterations": [r[3] for r in rows],
        }))

    fractions = [r[0] for r in rows]
    errors = [r[2] for r in rows]
    # Monotone: tighter threshold -> larger area.
    assert all(a <= b + 1e-12
               for a, b in zip(fractions, fractions[1:]))
    # Error at the tightest threshold reaches the boundary-approximation
    # floor (unaffected nodes keep rescaled old scores, so the error does
    # not go all the way to solver tolerance — that is the documented
    # trade-off of the affected/unaffected split).
    assert errors[-1] <= errors[0] + 1e-12
    assert errors[-1] < 1e-3
