"""E1 — Effectiveness table (paper analogue: pairwise accuracy of the
model vs. all baselines on the AMiner-like and MAG-like corpora).

Expected shape: QISAR (the full assembled model) tops every static and
time-aware baseline on pairwise accuracy and quality correlation; raw
citation count and pure-recency methods trail.
"""

import pytest

from repro.bench.tables import render_rows
from repro.bench.workloads import (
    aminer_small,
    compute_baseline_scores,
    mag_small,
)
from repro.core.model import ArticleRanker
from repro.eval.protocol import evaluate_ranking

CORPORA = [
    ("aminer-like", aminer_small, 20_000),
    ("mag-like", mag_small, 40_000),
]


@pytest.mark.parametrize("name,loader,scale",
                         CORPORA, ids=[c[0] for c in CORPORA])
def test_e1_effectiveness(benchmark, run_once, name, loader, scale):
    dataset, truth = loader(scale)
    scores_by_method = compute_baseline_scores(dataset)

    # The timed kernel: one full model run (the paper's "our approach").
    run_once(benchmark, lambda: ArticleRanker().rank(dataset))

    rows = []
    for method, scores in scores_by_method.items():
        report = evaluate_ranking(scores, truth)
        rows.append({"method": method, **report.as_row()})
    rows.sort(key=lambda r: -float(r["pairwise"]))
    print("\n" + render_rows(
        f"E1 effectiveness — {name} ({dataset.num_articles} articles, "
        f"{dataset.num_citations} citations)", rows))

    by_method = {row["method"]: float(row["pairwise"]) for row in rows}
    assert by_method["QISAR"] == max(by_method.values())
    assert by_method["QISAR"] > by_method["PageRank"]
    assert by_method["QISAR"] > by_method["CitationCount"]
