"""E12 (extension) — Full-model dynamic ranking (LiveRanker).

E6 measured incremental maintenance of the prestige component alone;
this experiment measures the *whole system* a live index runs: per
arrival batch, maintain prestige incrementally and re-assemble the full
model, vs. recomputing the full model cold.

Expected shape (and honest accounting): the stages the incremental
engine replaces — graph rebuild + TWPR solve — shrink by a multiple,
while the linear-time assembly stages (popularity, venue, author,
blend) are identical on both paths, so the end-to-end win is bounded by
the assembly share. Head-of-ranking agreement stays ~perfect. The
prestige-stage speedup is the paper's incremental claim (E6); this
experiment shows where it lands in a full pipeline.
"""

import time

import pytest

from repro.bench.tables import render_series
from repro.core.model import ArticleRanker
from repro.data.generator import GeneratorConfig, generate_dataset
from repro.engine.live import LiveRanker
from repro.engine.updates import yearly_updates
from repro.eval.metrics import top_k_overlap

SCALE = 25_000


@pytest.fixture(scope="module")
def stream():
    """Base snapshot plus quarterly arrival batches (last two years)."""
    from repro.engine.updates import UpdateBatch

    dataset = generate_dataset(GeneratorConfig(
        num_articles=SCALE, num_venues=50, num_authors=6_000,
        start_year=1985, end_year=2015, seed=41))
    _, max_year = dataset.year_range()
    base, yearly = yearly_updates(dataset, max_year - 1)
    quarterly = []
    for batch in yearly:
        articles = sorted(batch.articles, key=lambda a: a.id)
        quarter = -(-len(articles) // 4)
        for start in range(0, len(articles), quarter):
            quarterly.append(UpdateBatch(
                articles=tuple(articles[start:start + quarter]),
                venues=batch.venues if start == 0 else (),
                authors=batch.authors if start == 0 else ()))
    return base, quarterly


def test_e12_live_vs_cold(benchmark, run_once, stream):
    base, batches = stream

    def run_all():
        live = LiveRanker(base, delta_threshold=1e-3)
        ranker = ArticleRanker()
        rows = []
        for batch in batches:
            start = time.perf_counter()
            result, report = live.apply(batch)
            live_seconds = time.perf_counter() - start
            live_prestige = report.seconds

            start = time.perf_counter()
            cold = ranker.rank(live.dataset)
            cold_seconds = time.perf_counter() - start
            cold_timings = cold.diagnostics["timings"]
            cold_prestige = cold_timings["build_graph"] \
                + cold_timings["article_prestige"]

            overlap = top_k_overlap(result.by_id(), cold.by_id(), 100)
            rows.append((batch.articles[0].year, batch.num_articles,
                         report.affected.fraction, live_prestige,
                         cold_prestige, live_seconds, cold_seconds,
                         overlap))
        return rows

    rows = run_once(benchmark, run_all)
    print("\n" + render_series(
        f"E12 live full-model ranking vs cold recompute "
        f"({SCALE} articles, quarterly arrivals; 'prestige' = graph "
        "maintenance + TWPR, the stage the incremental engine replaces)",
        "quarter", [f"{r[0]}q{i % 4 + 1}" for i, r in enumerate(rows)],
        {
            "new": [r[1] for r in rows],
            "affected %": [f"{r[2] * 100:.1f}" for r in rows],
            "prestige live ms": [f"{r[3] * 1e3:.0f}" for r in rows],
            "prestige cold ms": [f"{r[4] * 1e3:.0f}" for r in rows],
            "prestige speedup": [f"{r[4] / r[3]:.2f}x" for r in rows],
            "total live ms": [f"{r[5] * 1e3:.0f}" for r in rows],
            "total cold ms": [f"{r[6] * 1e3:.0f}" for r in rows],
            "top-100 overlap": [f"{r[7]:.2f}" for r in rows],
        }))

    for row in rows:
        assert row[7] > 0.85              # head agreement
        assert row[4] / row[3] > 1.5      # the replaced stage shrinks
    # End-to-end, live must at least not lose (assembly dominates both).
    total_live = sum(row[5] for row in rows)
    total_cold = sum(row[6] for row in rows)
    assert total_live < total_cold * 1.1
