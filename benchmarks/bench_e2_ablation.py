"""E2 — Ablation table (paper analogue: contribution of each component).

Variants: the full model; prestige-only and popularity-only importance
(theta extremes); article-signal only (no venue, no author); no-venue;
no-author. Expected shape: the full model wins; dropping the venue
signal hurts most (venue prestige carries strong quality information);
single-signal variants trail the full ensemble.
"""


from repro.bench.tables import render_rows
from repro.bench.workloads import aminer_small
from repro.core.model import ArticleRanker, RankerConfig
from repro.eval.protocol import evaluate_ranking

VARIANTS = [
    ("full", {}),
    ("prestige-only", {"theta": 1.0}),
    ("popularity-only", {"theta": 0.0}),
    ("article-only", {"weight_article": 1.0, "weight_venue": 0.0,
                      "weight_author": 0.0}),
    ("no-venue", {"weight_venue": 0.0}),
    ("no-author", {"weight_author": 0.0}),
]


def test_e2_ablation(benchmark, run_once):
    dataset, truth = aminer_small(20_000)

    def run_all():
        results = {}
        for name, overrides in VARIANTS:
            ranker = ArticleRanker(RankerConfig(**overrides))
            results[name] = ranker.rank(dataset).by_id()
        return results

    scores_by_variant = run_once(benchmark, run_all)

    rows = []
    for name, _ in VARIANTS:
        report = evaluate_ranking(scores_by_variant[name], truth)
        rows.append({"variant": name, **report.as_row()})
    print("\n" + render_rows(
        f"E2 ablation — aminer-like ({dataset.num_articles} articles)",
        rows))

    pairwise = {row["variant"]: float(row["pairwise"]) for row in rows}
    assert pairwise["full"] >= max(pairwise["article-only"],
                                   pairwise["prestige-only"],
                                   pairwise["popularity-only"])
    assert pairwise["full"] >= pairwise["no-venue"]
