"""E11 (extension) — Monte-Carlo approximation vs iterative solving.

The batch-efficiency discussion includes the classic approximation
alternative: estimate PageRank by simulating terminating random walks.
The sweep varies the walk budget and reports estimation error (L1 and
top-100 overlap vs the exact solution) and wall-clock.

Expected shape: error decays ~ 1/sqrt(budget); the head of the ranking
stabilizes with small budgets (hubs are visited constantly) while the
full distribution converges slowly — iterative solvers dominate for
full-precision scores, sampling is only competitive for rough top-k.
"""

import time

import numpy as np

from repro.bench.tables import render_series
from repro.bench.workloads import sized_citation_graph
from repro.eval.metrics import top_k_overlap
from repro.ranking.montecarlo import monte_carlo_pagerank
from repro.ranking.pagerank import pagerank

SCALE = 20_000
BUDGETS = [1, 5, 20, 80]


def test_e11_montecarlo_tradeoff(benchmark, run_once):
    graph, _ = sized_citation_graph(SCALE)
    start = time.perf_counter()
    exact = pagerank(graph)
    exact_seconds = time.perf_counter() - start
    ids = list(range(graph.num_nodes))
    exact_by_id = dict(zip(ids, exact.scores))

    def run_all():
        rows = []
        for budget in BUDGETS:
            start = time.perf_counter()
            estimate = monte_carlo_pagerank(graph,
                                            walks_per_node=budget,
                                            seed=3)
            seconds = time.perf_counter() - start
            error = float(np.abs(estimate.scores - exact.scores).sum())
            overlap = top_k_overlap(exact_by_id,
                                    dict(zip(ids, estimate.scores)), 100)
            rows.append((seconds, error, overlap, estimate.steps))
        return rows

    rows = run_once(benchmark, run_all)
    print("\n" + render_series(
        f"E11 Monte-Carlo PageRank vs exact "
        f"({SCALE} articles; exact power iteration: "
        f"{exact_seconds * 1e3:.0f} ms, {exact.iterations} iters)",
        "walks/node", BUDGETS,
        {
            "ms": [f"{r[0] * 1e3:.0f}" for r in rows],
            "L1 error": [f"{r[1]:.3f}" for r in rows],
            "top-100 overlap": [f"{r[2]:.2f}" for r in rows],
            "steps": [r[3] for r in rows],
        }))

    errors = [r[1] for r in rows]
    overlaps = [r[2] for r in rows]
    # Error decreases and head agreement increases with the budget.
    assert errors[-1] < errors[0]
    assert overlaps[-1] >= overlaps[0]
    assert overlaps[-1] > 0.8
