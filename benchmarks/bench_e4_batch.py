"""E4 — Batch-efficiency figure (paper analogue: runtime of the batch
algorithm, naive vs. optimized TWPR, as the graph grows).

Expected shape: the optimized level-sweep solver needs a near-constant
handful of sweeps while naive power iteration needs tens of iterations,
and the two fixed points agree to solver tolerance.

Measured finding (recorded in EXPERIMENTS.md): on a *single machine with
vectorized matvecs*, power iteration is already near-optimal on shallow
citation DAGs — its iteration count tracks the DAG depth, not
log(tol)/log(damping) — so the optimization's wall-clock win does not
materialize here; its 5-15x win is in *rounds*, which is the cost that
matters when every round is a distributed superstep (see E5). We report
both columns honestly.
"""


from repro.bench.runner import PerfArtifact
from repro.bench.tables import render_series
from repro.bench.workloads import sized_citation_graph
from repro.engine.batch import compare_solvers

SIZES = [5_000, 10_000, 20_000, 40_000, 80_000]


def test_e4_solver_scaling(benchmark, run_once):
    comparisons = run_once(benchmark, lambda: [
        compare_solvers(*sized_citation_graph(size)) for size in SIZES])

    artifact = PerfArtifact("E4")
    for comparison in comparisons:
        artifact.record(
            "solver_scaling",
            num_nodes=comparison.num_nodes,
            num_edges=comparison.num_edges,
            naive_iterations=comparison.naive.iterations,
            optimized_sweeps=comparison.optimized.iterations,
            naive_seconds=comparison.naive_seconds,
            optimized_seconds=comparison.optimized_seconds,
            iteration_speedup=comparison.iteration_speedup,
            time_speedup=comparison.time_speedup,
            agreement_l1=comparison.agreement_l1)
    print(f"\nwrote {artifact.save()}")

    print("\n" + render_series(
        "E4 TWPR batch solvers vs graph size "
        "(naive power iteration vs optimized level sweeps)",
        "|V|", SIZES,
        {
            "|E|": [c.num_edges for c in comparisons],
            "naive iters": [c.naive.iterations for c in comparisons],
            "opt sweeps": [c.optimized.iterations for c in comparisons],
            "naive ms": [f"{c.naive_seconds * 1e3:.1f}"
                         for c in comparisons],
            "opt ms": [f"{c.optimized_seconds * 1e3:.1f}"
                       for c in comparisons],
            "time speedup": [f"{c.time_speedup:.2f}x"
                             for c in comparisons],
            "L1 agreement": [f"{c.agreement_l1:.1e}"
                             for c in comparisons],
        }))

    for comparison in comparisons:
        assert comparison.agreement_l1 < 1e-8
        assert comparison.iteration_speedup > 5
        # Wall-clock stays within a small constant factor of the naive
        # solver (the iteration win is what transfers to distributed
        # rounds — see module docstring and E5).
        assert comparison.time_speedup > 0.05


def test_e4_warm_start(benchmark, run_once):
    """Warm-starting from slightly stale scores (the other batch trick)."""
    from repro.core.twpr import time_weighted_pagerank

    graph, years = sized_citation_graph(40_000)
    cold = time_weighted_pagerank(graph, years, method="power")

    warm = run_once(benchmark, lambda: time_weighted_pagerank(
        graph, years, method="power", initial=cold.scores))
    print(f"\nE4 warm start: cold {cold.iterations} iters -> warm "
          f"{warm.iterations} iters")
    assert warm.iterations < cold.iterations
