"""Shared benchmark configuration.

Benchmarks are single-shot experiment drivers: the *table* each one
prints is the deliverable (the paper's table/figure analogue), and the
``benchmark`` fixture times the experiment's headline kernel once. Keep
scales moderate — the full suite must run in minutes on a laptop.
"""

import pytest


def single_run(benchmark, func, *args, **kwargs):
    """Time ``func`` exactly once through pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture()
def run_once():
    return single_run
