"""E9 — Dataset-statistics table (paper analogue: the "datasets" table
every ICDE evaluation opens with).

Reports the structural properties of the two synthetic corpora standing
in for AMiner and MAG, verifying they exhibit the properties the
algorithms exploit: power-law in-degree, (near-)acyclicity, strictly
backward-in-time citations, entity counts at realistic ratios.
"""


from repro.bench.tables import render_rows
from repro.bench.workloads import aminer_small, mag_small
from repro.graph.stats import compute_stats


def test_e9_dataset_statistics(benchmark, run_once):
    def run_all():
        rows = []
        for name, loader, scale in [("aminer-like", aminer_small, 20_000),
                                    ("mag-like", mag_small, 40_000)]:
            dataset, _ = loader(scale)
            graph = dataset.citation_csr()
            stats = compute_stats(graph, dataset.article_years(graph))
            row = {"corpus": name, **stats.as_row()}
            row["venues"] = dataset.num_venues
            row["authors"] = dataset.num_authors
            row["years"] = "{}-{}".format(*dataset.year_range())
            rows.append((row, stats))
        return rows

    rows = run_once(benchmark, run_all)
    print("\n" + render_rows("E9 dataset statistics",
                             [row for row, _ in rows]))

    for row, stats in rows:
        assert stats.forward_edges == 0     # citations point backward
        assert stats.acyclic                # ... hence a DAG
        assert 1.2 < stats.powerlaw_alpha < 3.5
        assert stats.max_in_degree > 50 * stats.mean_in_degree
