"""Dataset samplers: carve consistent sub-corpora out of a big dump.

Real AMiner/MAG dumps are orders of magnitude larger than a laptop run
wants; scaling studies also need families of growing subsets. All
samplers return a self-consistent :class:`ScholarlyDataset` (references
trimmed to sampled articles, entities restricted to those used).

* :func:`random_article_sample` — uniform articles (baseline sampler;
  destroys degree structure, useful as a control).
* :func:`snowball_sample` — BFS over the undirected citation relation
  from seed articles (keeps local structure).
* :func:`forest_fire_sample` — Leskovec-style recursive burning with
  geometric fan-out (preserves degree skew and community structure
  better than either of the above).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional, Set

import numpy as np

from repro.errors import DatasetError
from repro.data.schema import Article, ScholarlyDataset


def _restrict(dataset: ScholarlyDataset, keep: Set[int],
              name: str) -> ScholarlyDataset:
    """Induced sub-dataset on article ids ``keep``."""
    if not keep:
        raise DatasetError("sample is empty")
    sample = ScholarlyDataset(name=name)
    used_venues = set()
    used_authors = set()
    for article_id in sorted(keep):
        article = dataset.articles[article_id]
        refs = tuple(r for r in article.references if r in keep)
        sample.articles[article_id] = Article(
            id=article.id, title=article.title, year=article.year,
            venue_id=article.venue_id, author_ids=article.author_ids,
            references=refs, quality=article.quality)
        if article.venue_id is not None:
            used_venues.add(article.venue_id)
        used_authors.update(article.author_ids)
    for venue_id in used_venues:
        sample.venues[venue_id] = dataset.venues[venue_id]
    for author_id in used_authors:
        sample.authors[author_id] = dataset.authors[author_id]
    return sample


def _undirected_neighbors(dataset: ScholarlyDataset) -> Dict[int, Set[int]]:
    neighbors: Dict[int, Set[int]] = {i: set() for i in dataset.articles}
    for citing, cited in dataset.citation_edges():
        neighbors[citing].add(cited)
        neighbors[cited].add(citing)
    return neighbors


def random_article_sample(dataset: ScholarlyDataset, size: int,
                          seed: int = 0) -> ScholarlyDataset:
    """Uniformly sample ``size`` articles (without replacement)."""
    if not 0 < size <= dataset.num_articles:
        raise DatasetError(
            f"size must be in (0, {dataset.num_articles}], got {size}")
    rng = np.random.default_rng(seed)
    ids = np.asarray(sorted(dataset.articles), dtype=np.int64)
    keep = set(int(i) for i in rng.choice(ids, size=size, replace=False))
    return _restrict(dataset, keep, f"{dataset.name}-random{size}")


def snowball_sample(dataset: ScholarlyDataset, size: int,
                    seeds: Optional[Iterable[int]] = None,
                    seed: int = 0) -> ScholarlyDataset:
    """BFS from seed articles over the undirected citation relation.

    Stops once ``size`` articles are collected; if the reachable region
    is smaller, new random seeds are drawn until the quota is met.
    """
    if not 0 < size <= dataset.num_articles:
        raise DatasetError(
            f"size must be in (0, {dataset.num_articles}], got {size}")
    rng = np.random.default_rng(seed)
    neighbors = _undirected_neighbors(dataset)
    all_ids = sorted(dataset.articles)

    keep: Set[int] = set()
    queue: deque = deque()
    if seeds is not None:
        for article_id in seeds:
            if article_id not in dataset.articles:
                raise DatasetError(f"unknown seed article {article_id}")
            if article_id not in keep:
                keep.add(article_id)
                queue.append(article_id)

    while len(keep) < size:
        if not queue:
            remaining = [i for i in all_ids if i not in keep]
            fresh = int(rng.choice(remaining))
            keep.add(fresh)
            queue.append(fresh)
            if len(keep) >= size:
                break
        node = queue.popleft()
        for neighbor in sorted(neighbors[node]):
            if neighbor not in keep:
                keep.add(neighbor)
                queue.append(neighbor)
                if len(keep) >= size:
                    break
    return _restrict(dataset, keep, f"{dataset.name}-snowball{size}")


def forest_fire_sample(dataset: ScholarlyDataset, size: int,
                       burn_probability: float = 0.7,
                       seed: int = 0) -> ScholarlyDataset:
    """Forest-fire sampling (Leskovec & Faloutsos 2006).

    From a random ember, burn a geometric number of unburned neighbours
    (mean ``p/(1-p)``), recurse from each; reignite at a fresh random
    article when the fire dies out before the quota.
    """
    if not 0 < size <= dataset.num_articles:
        raise DatasetError(
            f"size must be in (0, {dataset.num_articles}], got {size}")
    if not 0.0 < burn_probability < 1.0:
        raise DatasetError("burn_probability must be in (0, 1)")
    rng = np.random.default_rng(seed)
    neighbors = _undirected_neighbors(dataset)
    all_ids = sorted(dataset.articles)

    burned: Set[int] = set()
    while len(burned) < size:
        remaining = [i for i in all_ids if i not in burned]
        ember = int(rng.choice(remaining))
        burned.add(ember)
        frontier = deque([ember])
        while frontier and len(burned) < size:
            node = frontier.popleft()
            fresh = [x for x in sorted(neighbors[node])
                     if x not in burned]
            if not fresh:
                continue
            fanout = min(int(rng.geometric(1.0 - burn_probability)),
                         len(fresh))
            chosen = rng.choice(len(fresh), size=fanout, replace=False)
            for position in chosen:
                target = fresh[int(position)]
                if target not in burned:
                    burned.add(target)
                    frontier.append(target)
                    if len(burned) >= size:
                        break
    return _restrict(dataset, burned, f"{dataset.name}-fire{size}")
