"""Ground-truth builders for effectiveness evaluation.

The paper evaluates against human signals: expert pairwise judgments of
article importance and curated lists of high-impact articles. With
synthetic data the planted latent quality plays the expert's role (see
DESIGN.md "Substitutions"):

* :func:`pairwise_judgments` — sample article pairs whose quality gap is
  large enough that an expert verdict would be unambiguous; the judged
  order is "higher quality wins".
* :func:`award_list` — the top-quality articles of each eligible year, a
  synthetic "test-of-time award" list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.data.schema import ScholarlyDataset


@dataclass(frozen=True)
class GroundTruth:
    """Evaluation targets derived from one dataset.

    Attributes:
        pairs: ``(better_id, worse_id)`` expert-style pairwise judgments.
        awards: article ids of synthetic award winners (relevance set).
        quality_by_id: latent quality per article id (graded relevance).
    """

    pairs: Tuple[Tuple[int, int], ...]
    awards: Tuple[int, ...]
    quality_by_id: Dict[int, float]


def pairwise_judgments(dataset: ScholarlyDataset, num_pairs: int = 2_000,
                       min_gap: float = 0.5, same_era_window: Optional[int]
                       = None, seed: int = 0
                       ) -> List[Tuple[int, int]]:
    """Sample ``(better, worse)`` pairs by planted quality.

    Pairs are kept only when the relative quality gap exceeds ``min_gap``
    (as a fraction of the larger quality), mimicking that experts are shown
    pairs they can actually judge. With ``same_era_window`` set, both
    articles must be published within that many years of each other —
    matching how judgment campaigns avoid apples-to-oranges eras.
    """
    if num_pairs <= 0:
        raise DatasetError("num_pairs must be positive")
    rng = np.random.default_rng(seed)
    ids = np.asarray(sorted(dataset.articles), dtype=np.int64)
    if len(ids) < 2:
        raise DatasetError("need at least two articles for pairs")
    quality = np.asarray([dataset.articles[i].quality for i in ids],
                         dtype=np.float64)
    if np.any(np.isnan(quality)) or None in {
            dataset.articles[int(i)].quality for i in ids}:
        raise DatasetError("pairwise judgments need planted quality")
    years = np.asarray([dataset.articles[int(i)].year for i in ids])

    pairs: List[Tuple[int, int]] = []
    attempts = 0
    max_attempts = num_pairs * 200
    while len(pairs) < num_pairs and attempts < max_attempts:
        take = min(4 * (num_pairs - len(pairs)), 100_000)
        attempts += take
        left = rng.integers(0, len(ids), size=take)
        right = rng.integers(0, len(ids), size=take)
        for a, b in zip(left, right):
            if a == b:
                continue
            if same_era_window is not None \
                    and abs(int(years[a]) - int(years[b])) \
                    > same_era_window:
                continue
            qa, qb = quality[a], quality[b]
            high, low = (a, b) if qa >= qb else (b, a)
            gap = abs(qa - qb) / max(qa, qb, 1e-12)
            if gap < min_gap:
                continue
            pairs.append((int(ids[high]), int(ids[low])))
            if len(pairs) >= num_pairs:
                break
    if len(pairs) < num_pairs:
        raise DatasetError(
            f"could only sample {len(pairs)}/{num_pairs} judgable pairs; "
            "lower min_gap or widen same_era_window")
    return pairs


def award_list(dataset: ScholarlyDataset, per_year: int = 3,
               min_age: int = 5, observation_year: Optional[int] = None
               ) -> List[int]:
    """Synthetic test-of-time awards: top-quality articles per eligible year.

    Only articles at least ``min_age`` years old at ``observation_year``
    (default: dataset max year) are eligible, like real retrospective
    awards.
    """
    if per_year <= 0:
        raise DatasetError("per_year must be positive")
    _, max_year = dataset.year_range()
    horizon = observation_year if observation_year is not None else max_year
    winners: List[int] = []
    by_year: Dict[int, List] = {}
    for article in dataset.articles.values():
        if article.quality is None:
            raise DatasetError("award list needs planted quality")
        if article.year <= horizon - min_age:
            by_year.setdefault(article.year, []).append(article)
    for year in sorted(by_year):
        ranked = sorted(by_year[year],
                        key=lambda a: (-a.quality, a.id))
        winners.extend(a.id for a in ranked[:per_year])
    return winners


def build_ground_truth(dataset: ScholarlyDataset, num_pairs: int = 2_000,
                       min_gap: float = 0.5, per_year: int = 3,
                       min_age: int = 5, seed: int = 0) -> GroundTruth:
    """Bundle pairwise judgments, award list and graded quality."""
    pairs = pairwise_judgments(dataset, num_pairs=num_pairs,
                               min_gap=min_gap, seed=seed)
    awards = award_list(dataset, per_year=per_year, min_age=min_age)
    quality = {a.id: float(a.quality) for a in dataset.articles.values()
               if a.quality is not None}
    if len(quality) != dataset.num_articles:
        raise DatasetError("all articles need planted quality")
    return GroundTruth(pairs=tuple(pairs), awards=tuple(awards),
                       quality_by_id=quality)
