"""Entity schema and the :class:`ScholarlyDataset` container.

A dataset is a consistent snapshot of three entity kinds — articles, venues,
authors — plus the citation relation carried on each article's
``references`` tuple. All cross-references inside a validated dataset
resolve; dangling references (citations to articles outside the snapshot,
ubiquitous in real dumps) are permitted on input and dropped when building
graphs, mirroring how the paper's datasets are preprocessed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class Article:
    """One scholarly article.

    ``quality`` is the generator's planted latent quality (ground-truth
    importance); it is ``None`` for real-world data.
    """

    id: int
    title: str
    year: int
    venue_id: Optional[int] = None
    author_ids: Tuple[int, ...] = ()
    references: Tuple[int, ...] = ()
    quality: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "author_ids", tuple(self.author_ids))
        object.__setattr__(self, "references", tuple(self.references))


@dataclass(frozen=True)
class Venue:
    """A publication venue (conference or journal)."""

    id: int
    name: str
    prestige: Optional[float] = None


@dataclass(frozen=True)
class Author:
    """An author of one or more articles."""

    id: int
    name: str


class ScholarlyDataset:
    """A snapshot of articles, venues and authors.

    The container is mutable only through :meth:`add_article` /
    :meth:`add_venue` / :meth:`add_author` (used by parsers, the generator
    and the dynamic-update machinery); everything else is read-only.
    """

    def __init__(self, name: str = "dataset") -> None:
        self.name = name
        self.articles: Dict[int, Article] = {}
        self.venues: Dict[int, Venue] = {}
        self.authors: Dict[int, Author] = {}

    # ------------------------------------------------------------------
    # construction

    def add_article(self, article: Article) -> None:
        if article.id in self.articles:
            raise DatasetError(f"duplicate article id {article.id}")
        self.articles[article.id] = article

    def add_venue(self, venue: Venue) -> None:
        if venue.id in self.venues:
            raise DatasetError(f"duplicate venue id {venue.id}")
        self.venues[venue.id] = venue

    def add_author(self, author: Author) -> None:
        if author.id in self.authors:
            raise DatasetError(f"duplicate author id {author.id}")
        self.authors[author.id] = author

    # ------------------------------------------------------------------
    # sizes

    @property
    def num_articles(self) -> int:
        return len(self.articles)

    @property
    def num_venues(self) -> int:
        return len(self.venues)

    @property
    def num_authors(self) -> int:
        return len(self.authors)

    @property
    def num_citations(self) -> int:
        """Count of resolvable citation edges (both endpoints present)."""
        return sum(1 for a in self.articles.values()
                   for ref in a.references if ref in self.articles)

    def year_range(self) -> Tuple[int, int]:
        """``(min_year, max_year)`` over all articles."""
        if not self.articles:
            raise DatasetError("dataset has no articles")
        years = [a.year for a in self.articles.values()]
        return min(years), max(years)

    # ------------------------------------------------------------------
    # validation

    def validate(self, strict: bool = False) -> List[str]:
        """Check internal consistency; return a list of problems found.

        Non-strict mode tolerates dangling references (normal in real
        dumps). Strict mode reports them too. Problems that are always
        errors: unknown venue/author ids, self-citations, citations of
        strictly newer articles by more than one year (impossible edges).
        """
        problems: List[str] = []
        for article in self.articles.values():
            if article.venue_id is not None \
                    and article.venue_id not in self.venues:
                problems.append(f"article {article.id}: unknown venue "
                                f"{article.venue_id}")
            for author_id in article.author_ids:
                if author_id not in self.authors:
                    problems.append(f"article {article.id}: unknown author "
                                    f"{author_id}")
            for ref in article.references:
                if ref == article.id:
                    problems.append(f"article {article.id}: self-citation")
                elif ref not in self.articles:
                    if strict:
                        problems.append(f"article {article.id}: dangling "
                                        f"reference {ref}")
        return problems

    def check(self, strict: bool = False) -> None:
        """Like :meth:`validate` but raise :class:`DatasetError` on issues."""
        problems = self.validate(strict=strict)
        if problems:
            preview = "; ".join(problems[:5])
            raise DatasetError(
                f"dataset {self.name!r} failed validation with "
                f"{len(problems)} problem(s): {preview}")

    # ------------------------------------------------------------------
    # graph views

    def citation_edges(self) -> Iterable[Tuple[int, int]]:
        """Yield resolvable ``(citing, cited)`` article-id pairs."""
        for article in self.articles.values():
            for ref in article.references:
                if ref in self.articles and ref != article.id:
                    yield article.id, ref

    def citation_graph(self) -> DiGraph:
        """Mutable citation graph (edges point citing -> cited)."""
        graph = DiGraph()
        graph.add_nodes(self.articles.keys())
        graph.add_edges(self.citation_edges())
        return graph

    def citation_csr(self) -> CSRGraph:
        """Immutable CSR snapshot of the citation graph.

        Node index order is ascending article id, so aligned attribute
        arrays from :meth:`article_years` can be used directly.
        """
        return CSRGraph.from_edges(self.citation_edges(),
                                   nodes=sorted(self.articles))

    def article_years(self, graph: Optional[CSRGraph] = None) -> np.ndarray:
        """``int64[n]`` publication year aligned with CSR node indices."""
        if graph is None:
            ids = sorted(self.articles)
        else:
            ids = graph.node_ids.tolist()
        return np.asarray([self.articles[i].year for i in ids],
                          dtype=np.int64)

    def article_qualities(self,
                          graph: Optional[CSRGraph] = None) -> np.ndarray:
        """``float64[n]`` planted quality aligned with CSR node indices.

        Raises :class:`DatasetError` when any article lacks a quality
        (real-world data has none).
        """
        ids = graph.node_ids.tolist() if graph is not None \
            else sorted(self.articles)
        values = np.empty(len(ids), dtype=np.float64)
        for pos, article_id in enumerate(ids):
            quality = self.articles[article_id].quality
            if quality is None:
                raise DatasetError(
                    f"article {article_id} has no latent quality")
            values[pos] = quality
        return values

    # ------------------------------------------------------------------
    # temporal slicing (dynamic-ranking experiments)

    def snapshot_until(self, year: int, name: Optional[str] = None
                       ) -> "ScholarlyDataset":
        """Sub-dataset of articles published in or before ``year``.

        References to articles outside the snapshot are trimmed, so the
        result validates strictly. Venues/authors are restricted to those
        actually used.
        """
        snap = ScholarlyDataset(name or f"{self.name}@{year}")
        kept = {a.id for a in self.articles.values() if a.year <= year}
        used_venues = set()
        used_authors = set()
        for article in self.articles.values():
            if article.id not in kept:
                continue
            refs = tuple(r for r in article.references if r in kept)
            snap.articles[article.id] = replace(article, references=refs)
            if article.venue_id is not None:
                used_venues.add(article.venue_id)
            used_authors.update(article.author_ids)
        for venue_id in used_venues:
            if venue_id in self.venues:
                snap.venues[venue_id] = self.venues[venue_id]
        for author_id in used_authors:
            if author_id in self.authors:
                snap.authors[author_id] = self.authors[author_id]
        return snap

    def articles_in_year(self, year: int) -> List[Article]:
        """All articles published exactly in ``year`` (id order)."""
        return sorted((a for a in self.articles.values() if a.year == year),
                      key=lambda a: a.id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ScholarlyDataset(name={self.name!r}, "
                f"articles={self.num_articles}, venues={self.num_venues}, "
                f"authors={self.num_authors})")
