"""Parser/writer for the AMiner (DBLP-Citation-network) text format.

The format the AMiner citation dumps use, one record per article::

    #* title
    #@ author1;author2
    #t 1998
    #c SIGMOD
    #index 42
    #% 7          (one line per reference, may repeat)
    #! abstract   (ignored)

Records are separated by blank lines. Venue and author ids are assigned by
first appearance of their names. A real AMiner dump drops straight into
:func:`parse_aminer`; the same function parses the miniature fixtures the
tests generate through :func:`write_aminer`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import DatasetError, ParseError
from repro.data.quarantine import ParseReport, validate_on_error
from repro.data.schema import Article, Author, ScholarlyDataset, Venue

PathLike = Union[str, Path]


class _RecordBuilder:
    """Accumulates the fields of one ``#*``-record."""

    def __init__(self) -> None:
        self.title: Optional[str] = None
        self.authors: List[str] = []
        self.year: Optional[int] = None
        self.venue: Optional[str] = None
        self.index: Optional[int] = None
        self.references: List[int] = []
        #: set when a line of this record failed to parse under
        #: quarantine — the whole record is then dropped, once.
        self.bad = False

    @property
    def started(self) -> bool:
        return any((self.title is not None, self.index is not None,
                    self.year is not None, self.authors, self.references))


def _parse_line(builder: _RecordBuilder, line: str, path: Path,
                line_number: int) -> None:
    """Fold one tagged line into ``builder`` (raises ParseError)."""
    if line.startswith("#*"):
        builder.title = line[2:].strip()
    elif line.startswith("#@"):
        names = [n.strip() for n in line[2:].split(";")]
        builder.authors = [n for n in names if n]
    elif line.startswith("#t"):
        text = line[2:].strip()
        try:
            builder.year = int(text) if text else 0
        except ValueError:
            raise ParseError(f"bad year {text!r}", str(path),
                             line_number) from None
    elif line.startswith("#c"):
        builder.venue = line[2:].strip() or None
    elif line.startswith("#index"):
        text = line[6:].strip()
        try:
            builder.index = int(text)
        except ValueError:
            raise ParseError(f"bad index {text!r}", str(path),
                             line_number) from None
    elif line.startswith("#%"):
        text = line[2:].strip()
        if text:
            try:
                builder.references.append(int(text))
            except ValueError:
                raise ParseError(f"bad reference {text!r}",
                                 str(path), line_number) from None
    elif line.startswith("#!") or line.startswith("#"):
        pass  # abstract or unknown tag: ignored
    else:
        raise ParseError(f"unrecognized line {line[:40]!r}",
                         str(path), line_number)


def parse_aminer(path: PathLike, on_error: str = "strict",
                 report: Optional[ParseReport] = None) -> ScholarlyDataset:
    """Parse an AMiner citation-network text file into a dataset.

    Articles missing an ``#index`` raise; articles missing a year get year
    0 (AMiner uses 0 for unknown). Dangling references are preserved (the
    schema tolerates them; graph builders drop them).

    ``on_error="quarantine"`` skips malformed records instead of
    aborting the whole parse and accounts for them in ``report`` (pass a
    :class:`repro.data.quarantine.ParseReport` to inspect counts and the
    first offending lines); the default ``"strict"`` raises on the first
    bad record, as a reproducible experiment pipeline should.
    """
    validate_on_error(on_error)
    quarantine = on_error == "quarantine"
    if report is None:
        report = ParseReport()
    path = Path(path)
    dataset = ScholarlyDataset(name=path.stem)
    venue_ids: Dict[str, int] = {}
    author_ids: Dict[str, int] = {}

    def finish(builder: _RecordBuilder, line_number: int) -> None:
        if not builder.started or builder.bad:
            return  # bad records were accounted at the offending line
        try:
            if builder.index is None:
                raise ParseError("record has no #index line", str(path),
                                 line_number)
            venue_id = None
            if builder.venue:
                if builder.venue not in venue_ids:
                    venue_ids[builder.venue] = len(venue_ids)
                    dataset.add_venue(Venue(id=venue_ids[builder.venue],
                                            name=builder.venue))
                venue_id = venue_ids[builder.venue]
            team: List[int] = []
            for name in builder.authors:
                if name not in author_ids:
                    author_ids[name] = len(author_ids)
                    dataset.add_author(Author(id=author_ids[name],
                                              name=name))
                team.append(author_ids[name])
            dataset.add_article(Article(
                id=builder.index,
                title=builder.title or "",
                year=builder.year if builder.year is not None else 0,
                venue_id=venue_id,
                author_ids=tuple(team),
                references=tuple(builder.references),
            ))
        except (ParseError, DatasetError) as exc:
            if not quarantine:
                raise
            report.record_error(exc if isinstance(exc, ParseError)
                                else ParseError(str(exc), str(path),
                                                line_number))
            return
        report.record_ok()

    builder = _RecordBuilder()
    last_line = 0
    with open(path, encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            last_line = line_number
            line = raw.rstrip("\n")
            if not line.strip():
                finish(builder, line_number)
                builder = _RecordBuilder()
                continue
            if line.startswith("#*") and builder.title is not None:
                # New record without separating blank line.
                finish(builder, line_number)
                builder = _RecordBuilder()
            try:
                _parse_line(builder, line, path, line_number)
            except ParseError as exc:
                if not quarantine:
                    raise
                if not builder.bad:
                    builder.bad = True
                    report.record_error(exc)
    finish(builder, last_line + 1)
    return dataset


def write_aminer(dataset: ScholarlyDataset, path: PathLike) -> None:
    """Write ``dataset`` in AMiner text format (round-trips with parse)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        for article in dataset.articles.values():
            handle.write(f"#*{article.title}\n")
            if article.author_ids:
                names = ";".join(dataset.authors[a].name
                                 for a in article.author_ids)
                handle.write(f"#@{names}\n")
            handle.write(f"#t{article.year}\n")
            if article.venue_id is not None:
                handle.write(f"#c{dataset.venues[article.venue_id].name}\n")
            handle.write(f"#index{article.id}\n")
            for ref in article.references:
                handle.write(f"#%{ref}\n")
            handle.write("\n")
