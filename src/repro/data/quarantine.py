"""Quarantine accounting for tolerant dataset parsing.

A multi-gigabyte AMiner/MAG dump almost always contains a handful of
mangled records — a bad year, a missing ``#index``, a short TSV row.
Aborting a multi-hour ingest on record three million is the wrong
default for a production pipeline, so the parsers accept
``on_error="quarantine"``: malformed records are skipped and accounted
for in a :class:`ParseReport` (counts plus the first few offending
locations), while ``on_error="strict"`` — the default — keeps today's
fail-fast behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError

#: How many offending records a report keeps verbatim; beyond this only
#: the count grows (a corrupt dump must not balloon memory).
MAX_SAMPLES = 5

_MODES = ("strict", "quarantine")


def validate_on_error(on_error: str) -> str:
    """Check an ``on_error`` parser argument; returns it unchanged."""
    if on_error not in _MODES:
        raise ConfigError(
            f"on_error must be one of {_MODES}, got {on_error!r}")
    return on_error


@dataclass
class ParseReport:
    """What a tolerant parse kept and what it quarantined."""

    records_ok: int = 0
    quarantined: int = 0
    samples: List[str] = field(default_factory=list)
    #: Source location per kept sample (``path:line``, ``record N`` of
    #: a stream, or ``"?"``), aligned index-for-index with ``samples``
    #: — on a multi-GB dump "bad year" alone is not actionable, the
    #: offending line is.
    locations: List[str] = field(default_factory=list)

    def record_ok(self) -> None:
        self.records_ok += 1

    def record_error(self, error: Exception,
                     location: Optional[str] = None) -> None:
        """Account one malformed record (first few kept verbatim).

        ``location`` names where the record came from (``"record 42"``
        of a stream, ``"dump.txt:317"``); when omitted it is derived
        from the error's own ``path``/``line`` attributes
        (:class:`repro.errors.ParseError` carries them), falling back
        to ``"?"``.
        """
        self.quarantined += 1
        if len(self.samples) < MAX_SAMPLES:
            if location is None:
                path = getattr(error, "path", "")
                line = getattr(error, "line", 0)
                location = f"{path}:{line}" if path else "?"
            self.samples.append(str(error))
            self.locations.append(location)

    @property
    def total(self) -> int:
        return self.records_ok + self.quarantined

    @property
    def clean(self) -> bool:
        return self.quarantined == 0

    def summary(self) -> str:
        """One human line, plus one located line per kept sample."""
        head = (f"parsed {self.records_ok} record(s), "
                f"quarantined {self.quarantined}")
        if not self.samples:
            return head
        located = []
        for index, sample in enumerate(self.samples):
            where = self.locations[index] \
                if index < len(self.locations) else "?"
            # ParseError messages already lead with "path:line: ";
            # repeating the location would just be noise.
            if where != "?" and not sample.startswith(where):
                located.append(f"  - [{where}] {sample}")
            else:
                located.append(f"  - {sample}")
        shown = "\n".join(located)
        suffix = "" if self.quarantined <= len(self.samples) \
            else f"\n  ... and {self.quarantined - len(self.samples)} more"
        return f"{head}\n{shown}{suffix}"


@dataclass(frozen=True)
class QuarantinedBatch:
    """One update batch the serving layer refused to publish.

    Kept with the offending batch itself so an operator can inspect,
    fix, and replay it; ``reasons`` are the guardrail violations or the
    update-path exception that condemned it.
    """

    index: int
    reasons: tuple
    attempts: int
    num_articles: int
    num_citations: int
    batch: Optional[object] = None

    def report(self) -> Dict[str, object]:
        """JSON-serializable triage record (the batch itself omitted)."""
        return {
            "index": self.index,
            "reasons": list(self.reasons),
            "attempts": self.attempts,
            "num_articles": self.num_articles,
            "num_citations": self.num_citations,
        }

    def summary(self) -> str:
        head = (f"batch {self.index} quarantined after "
                f"{self.attempts} attempt(s): ")
        return head + "; ".join(self.reasons)
