"""Scholarly data layer: schema, synthetic generator, real-format parsers.

The central type is :class:`~repro.data.schema.ScholarlyDataset` — articles,
venues and authors plus the citation relation. Datasets come from three
sources:

* :func:`~repro.data.generator.generate_dataset` — synthetic scholarly
  graphs with planted latent quality (the stand-in for AMiner/MAG dumps and
  expert ground truth; see DESIGN.md "Substitutions").
* :func:`~repro.data.aminer.parse_aminer` — the AMiner / DBLP-Citation
  ``#*``/``#index`` text format.
* :func:`~repro.data.mag.parse_mag_directory` — a documented subset of the
  Microsoft Academic Graph TSV layout.
"""

from repro.data.generator import GeneratorConfig, generate_dataset
from repro.data.ground_truth import (
    GroundTruth,
    award_list,
    build_ground_truth,
    pairwise_judgments,
)
from repro.data.io import load_dataset_jsonl, save_dataset_jsonl
from repro.data.schema import Article, Author, ScholarlyDataset, Venue

__all__ = [
    "Article",
    "Author",
    "Venue",
    "ScholarlyDataset",
    "GeneratorConfig",
    "generate_dataset",
    "GroundTruth",
    "award_list",
    "build_ground_truth",
    "pairwise_judgments",
    "load_dataset_jsonl",
    "save_dataset_jsonl",
]
