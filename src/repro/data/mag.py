"""Parser/writer for a documented subset of the MAG TSV layout.

The Microsoft Academic Graph ships as a directory of headerless
tab-separated files. This module supports the minimal file set article
ranking needs (column positions follow the original schema where the
original file has them):

* ``Papers.txt`` — ``paper_id \\t title \\t year \\t venue_id`` where
  ``venue_id`` may be empty.
* ``PaperReferences.txt`` — ``paper_id \\t reference_id``.
* ``PaperAuthorAffiliations.txt`` — ``paper_id \\t author_id``.
* ``Venues.txt`` — ``venue_id \\t name`` (optional file).
* ``Authors.txt`` — ``author_id \\t name`` (optional file).

Missing optional files yield auto-named venues/authors.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import DatasetError, ParseError
from repro.data.quarantine import ParseReport, validate_on_error
from repro.data.schema import Article, Author, ScholarlyDataset, Venue

PathLike = Union[str, Path]

PAPERS_FILE = "Papers.txt"
REFERENCES_FILE = "PaperReferences.txt"
AUTHORSHIP_FILE = "PaperAuthorAffiliations.txt"
VENUES_FILE = "Venues.txt"
AUTHORS_FILE = "Authors.txt"


def _int_field(text: str, what: str, path: Path, line: int) -> int:
    try:
        return int(text)
    except ValueError:
        raise ParseError(f"bad {what} {text!r}", str(path), line) from None


def _pair_rows(path: Path, what_a: str, what_b: str, quarantine: bool,
               report: ParseReport):
    """Yield ``(id, id)`` pairs from a two-column TSV, quarantining bad
    rows when asked."""
    with open(path, encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            if not raw.strip():
                continue
            try:
                parts = raw.rstrip("\n").split("\t")
                if len(parts) < 2:
                    raise ParseError("expected 2 columns", str(path),
                                     line_number)
                yield (_int_field(parts[0], what_a, path, line_number),
                       _int_field(parts[1], what_b, path, line_number))
            except ParseError as exc:
                if not quarantine:
                    raise
                report.record_error(exc)


def parse_mag_directory(directory: PathLike, on_error: str = "strict",
                        report: Optional[ParseReport] = None
                        ) -> ScholarlyDataset:
    """Parse a MAG-style directory into a :class:`ScholarlyDataset`.

    ``on_error="quarantine"`` skips malformed rows (short rows, non-int
    ids/years, duplicate paper ids) instead of aborting the multi-file
    parse, accounting for them in ``report``; a missing ``Papers.txt``
    stays fatal in both modes — that is a broken layout, not a broken
    record. The default ``"strict"`` raises on the first bad row.
    """
    validate_on_error(on_error)
    quarantine = on_error == "quarantine"
    if report is None:
        report = ParseReport()
    directory = Path(directory)
    papers_path = directory / PAPERS_FILE
    if not papers_path.exists():
        raise ParseError(f"missing {PAPERS_FILE}", str(directory), 0)

    dataset = ScholarlyDataset(name=directory.name)

    references: Dict[int, List[int]] = {}
    refs_path = directory / REFERENCES_FILE
    if refs_path.exists():
        for src, dst in _pair_rows(refs_path, "paper id", "reference id",
                                   quarantine, report):
            references.setdefault(src, []).append(dst)

    authorship: Dict[int, List[int]] = {}
    auth_path = directory / AUTHORSHIP_FILE
    if auth_path.exists():
        for paper, author in _pair_rows(auth_path, "paper id",
                                        "author id", quarantine, report):
            authorship.setdefault(paper, []).append(author)

    venue_names: Dict[int, str] = {}
    venues_path = directory / VENUES_FILE
    if venues_path.exists():
        with open(venues_path, encoding="utf-8") as handle:
            for line_number, raw in enumerate(handle, start=1):
                if not raw.strip():
                    continue
                parts = raw.rstrip("\n").split("\t")
                try:
                    venue_id = _int_field(parts[0], "venue id",
                                          venues_path, line_number)
                except ParseError as exc:
                    if not quarantine:
                        raise
                    report.record_error(exc)
                    continue
                venue_names[venue_id] = parts[1] if len(parts) > 1 else ""

    author_names: Dict[int, str] = {}
    authors_path = directory / AUTHORS_FILE
    if authors_path.exists():
        with open(authors_path, encoding="utf-8") as handle:
            for line_number, raw in enumerate(handle, start=1):
                if not raw.strip():
                    continue
                parts = raw.rstrip("\n").split("\t")
                try:
                    author_id = _int_field(parts[0], "author id",
                                           authors_path, line_number)
                except ParseError as exc:
                    if not quarantine:
                        raise
                    report.record_error(exc)
                    continue
                author_names[author_id] = parts[1] if len(parts) > 1 \
                    else ""

    def parse_paper_row(parts: List[str], line_number: int
                        ) -> Tuple[int, str, int, Optional[int]]:
        if len(parts) < 3:
            raise ParseError("expected >= 3 columns", str(papers_path),
                             line_number)
        paper_id = _int_field(parts[0], "paper id", papers_path,
                              line_number)
        year = _int_field(parts[2], "year", papers_path, line_number)
        venue_id = None
        if len(parts) > 3 and parts[3].strip():
            venue_id = _int_field(parts[3], "venue id", papers_path,
                                  line_number)
        return paper_id, parts[1], year, venue_id

    seen_venues: Dict[int, None] = {}
    seen_authors: Dict[int, None] = {}
    with open(papers_path, encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            if not raw.strip():
                continue
            parts = raw.rstrip("\n").split("\t")
            try:
                paper_id, title, year, venue_id = parse_paper_row(
                    parts, line_number)
                team = tuple(authorship.get(paper_id, ()))
                dataset.add_article(Article(
                    id=paper_id, title=title, year=year,
                    venue_id=venue_id, author_ids=team,
                    references=tuple(references.get(paper_id, ())),
                ))
            except (ParseError, DatasetError) as exc:
                if not quarantine:
                    raise
                report.record_error(
                    exc if isinstance(exc, ParseError)
                    else ParseError(str(exc), str(papers_path),
                                    line_number))
                continue
            if venue_id is not None:
                seen_venues[venue_id] = None
            for author_id in team:
                seen_authors[author_id] = None
            report.record_ok()

    for venue_id in seen_venues:
        dataset.add_venue(Venue(
            id=venue_id,
            name=venue_names.get(venue_id, f"venue-{venue_id}")))
    for author_id in seen_authors:
        dataset.add_author(Author(
            id=author_id,
            name=author_names.get(author_id, f"author-{author_id}")))
    return dataset


def write_mag_directory(dataset: ScholarlyDataset,
                        directory: PathLike) -> None:
    """Write ``dataset`` as a MAG-style directory (round-trips)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / PAPERS_FILE, "w", encoding="utf-8") as handle:
        for article in dataset.articles.values():
            venue = "" if article.venue_id is None else str(article.venue_id)
            handle.write(f"{article.id}\t{article.title}\t{article.year}"
                         f"\t{venue}\n")
    with open(directory / REFERENCES_FILE, "w", encoding="utf-8") as handle:
        for article in dataset.articles.values():
            for ref in article.references:
                handle.write(f"{article.id}\t{ref}\n")
    with open(directory / AUTHORSHIP_FILE, "w", encoding="utf-8") as handle:
        for article in dataset.articles.values():
            for author_id in article.author_ids:
                handle.write(f"{article.id}\t{author_id}\n")
    with open(directory / VENUES_FILE, "w", encoding="utf-8") as handle:
        for venue in dataset.venues.values():
            handle.write(f"{venue.id}\t{venue.name}\n")
    with open(directory / AUTHORS_FILE, "w", encoding="utf-8") as handle:
        for author in dataset.authors.values():
            handle.write(f"{author.id}\t{author.name}\n")
