"""Synthetic scholarly-graph generator.

Stands in for the AMiner / MAG dumps the paper evaluates on (offline
environment — see DESIGN.md "Substitutions"). The generator reproduces the
structural properties the paper's algorithms exploit:

* articles arrive in yearly cohorts (the graph *grows*, enabling the
  dynamic-ranking experiments);
* citations point backward in time and attach preferentially by current
  in-degree (power-law in-degree), recency (aging) and a planted **latent
  quality** per article;
* venues have prestige levels correlated with the quality of the articles
  they publish; authors accumulate articles preferentially (productivity
  skew).

The planted quality is the evaluation ground truth: an article's "true
importance" that expert judgments would approximate. Because quality causes
citations only *stochastically* (moderated by recency and luck), rankers
that read the citation network well recover quality better than raw
citation counts — exactly the regime the paper targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.data.schema import Article, Author, ScholarlyDataset, Venue


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the synthetic scholarly graph.

    Attributes:
        num_articles: total article count across all years.
        num_venues: venue count; venue prestige is log-normal.
        num_authors: author-pool size; per-article team sampled
            preferentially by past productivity.
        start_year / end_year: publication-year span (inclusive); cohort
            sizes grow geometrically by ``growth`` per year, matching the
            exponential growth of real scholarly corpora.
        growth: yearly cohort growth factor (>= 1).
        mean_references: mean out-degree (references per article), Poisson.
        pref_exponent: preferential-attachment exponent on in-degree.
        aging: recency preference — attachment weight multiplies
            ``exp(aging * year_of_candidate)``; larger favours recent work.
        quality_sigma: log-normal sigma of latent quality.
        quality_boost: attachment weight multiplies
            ``exp(quality_boost * quality)``.
        venue_quality_mix: fraction of an article's quality inherited from
            its venue's prestige (0 = independent, 1 = fully venue-driven).
        author_quality_mix: fraction of an article's pre-venue quality
            inherited from its team's mean latent ability (strong authors
            write strong papers — what makes authorship an informative
            ranking signal).
        team_size_mean: mean authors per article (>=1, shifted Poisson).
        within_year_mean: mean number of *same-year* citations per article
            (Poisson). Real corpora contain in-press cross-citations that
            create small cycles; 0 (the default) keeps the graph a DAG.
        seed: RNG seed; generation is fully deterministic given the config.
    """

    num_articles: int = 10_000
    num_venues: int = 50
    num_authors: int = 3_000
    start_year: int = 1990
    end_year: int = 2015
    growth: float = 1.08
    mean_references: float = 12.0
    pref_exponent: float = 1.0
    aging: float = 0.12
    quality_sigma: float = 1.0
    quality_boost: float = 1.2
    venue_quality_mix: float = 0.4
    author_quality_mix: float = 0.45
    team_size_mean: float = 2.5
    within_year_mean: float = 0.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_articles <= 0:
            raise ConfigError("num_articles must be positive")
        if self.num_venues <= 0 or self.num_authors <= 0:
            raise ConfigError("num_venues and num_authors must be positive")
        if self.end_year < self.start_year:
            raise ConfigError("end_year must be >= start_year")
        if self.growth < 1.0:
            raise ConfigError("growth must be >= 1")
        if self.mean_references < 0:
            raise ConfigError("mean_references must be non-negative")
        if not 0.0 <= self.venue_quality_mix <= 1.0:
            raise ConfigError("venue_quality_mix must be in [0, 1]")
        if not 0.0 <= self.author_quality_mix <= 1.0:
            raise ConfigError("author_quality_mix must be in [0, 1]")
        if self.team_size_mean < 1.0:
            raise ConfigError("team_size_mean must be >= 1")
        if self.within_year_mean < 0.0:
            raise ConfigError("within_year_mean must be non-negative")


def _cohort_sizes(config: GeneratorConfig) -> List[int]:
    """Split ``num_articles`` into geometrically growing yearly cohorts."""
    num_years = config.end_year - config.start_year + 1
    raw = np.power(config.growth, np.arange(num_years, dtype=np.float64))
    sizes = np.floor(raw / raw.sum() * config.num_articles).astype(np.int64)
    sizes = np.maximum(sizes, 1 if config.num_articles >= num_years else 0)
    # Fix rounding drift on the most recent cohort.
    drift = config.num_articles - int(sizes.sum())
    sizes[-1] += drift
    if sizes[-1] < 0:
        raise ConfigError("num_articles too small for the year span")
    return sizes.tolist()


def generate_dataset(config: GeneratorConfig) -> ScholarlyDataset:
    """Generate a :class:`ScholarlyDataset` according to ``config``.

    Article ids are assigned in publication order (``0..n-1``) so id order
    equals time order — a property the incremental-engine experiments rely
    on when slicing snapshots.
    """
    rng = np.random.default_rng(config.seed)
    dataset = ScholarlyDataset(name=f"synthetic-{config.seed}")

    venue_prestige = rng.lognormal(mean=0.0, sigma=1.0,
                                   size=config.num_venues)
    venue_prestige /= venue_prestige.max()
    for venue_id in range(config.num_venues):
        dataset.add_venue(Venue(id=venue_id,
                                name=f"Venue-{venue_id:03d}",
                                prestige=float(venue_prestige[venue_id])))
    for author_id in range(config.num_authors):
        dataset.add_author(Author(id=author_id,
                                  name=f"Author-{author_id:05d}"))

    sizes = _cohort_sizes(config)
    n = config.num_articles

    years = np.empty(n, dtype=np.int64)
    qualities = np.empty(n, dtype=np.float64)
    venue_of = np.empty(n, dtype=np.int64)
    in_degree = np.zeros(n, dtype=np.float64)
    author_productivity = np.ones(config.num_authors, dtype=np.float64)
    # Latent author ability: the hidden trait that makes authorship an
    # informative ranking signal (mean-1 log-normal).
    author_ability = rng.lognormal(mean=0.0, sigma=1.2,
                                   size=config.num_authors)
    author_ability /= author_ability.mean()
    # Able authors publish more: productivity-weighted team sampling
    # starts from ability, so the rich-get-richer process compounds on
    # top of talent (as in real corpora).
    author_productivity += author_ability

    # Venue choice is quality-correlated: high-quality work lands in
    # prestigious venues. Pre-rank venues once.
    venue_order = np.argsort(-venue_prestige)

    references: List[Sequence[int]] = [()] * n
    author_lists: List[Sequence[int]] = [()] * n

    next_id = 0
    for offset, cohort in enumerate(sizes):
        if cohort == 0:
            continue
        year = config.start_year + offset
        first = next_id
        next_id += cohort
        ids = np.arange(first, next_id)
        years[ids] = year

        # Authors first: shifted-Poisson team size, drawn preferentially
        # by productivity (rich-get-richer authorship). Sampling uses one
        # inverse-CDF batch per cohort; duplicate draws within a team are
        # collapsed, which approximates without-replacement sampling.
        team_sizes = 1 + rng.poisson(config.team_size_mean - 1.0,
                                     size=cohort)
        cdf = np.cumsum(author_productivity)
        cdf /= cdf[-1]
        draws = np.searchsorted(cdf, rng.random(int(team_sizes.sum())))
        team_ability = np.empty(cohort, dtype=np.float64)
        cursor = 0
        for position, article_id in enumerate(ids):
            size = int(team_sizes[position])
            team = np.unique(draws[cursor:cursor + size])
            cursor += size
            author_lists[article_id] = team.tolist()
            author_productivity[team] += 1.0
            team_ability[position] = author_ability[team].mean()

        # Latent quality: a personal log-normal component, the team's
        # ability, and the prestige of the (quality-matched) venue.
        own = rng.lognormal(mean=0.0, sigma=config.quality_sigma,
                            size=cohort)
        own /= own.mean()
        author_mix = config.author_quality_mix
        pre_venue = (1 - author_mix) * own + author_mix * team_ability
        # Match to venues: noisy quality rank -> venue prestige rank.
        noisy_rank = np.argsort(np.argsort(-(pre_venue + rng.normal(
            scale=pre_venue.std() + 1e-9, size=cohort))))
        venue_ids = venue_order[
            (noisy_rank * config.num_venues) // cohort]
        venue_of[ids] = venue_ids
        mix = config.venue_quality_mix
        qualities[ids] = (1 - mix) * pre_venue \
            + mix * venue_prestige[venue_ids] * pre_venue.mean() * 2.0

        # References: attach to existing articles by preferential
        # attachment x aging x quality. The time factor exp(-a(t - t_i))
        # separates as exp(a * t_i) under normalization, so the weight
        # vector is update-free within a cohort.
        if first > 0 and config.mean_references > 0:
            old = slice(0, first)
            weights = (np.power(in_degree[old] + 1.0,
                                config.pref_exponent)
                       * np.exp(config.aging
                                * (years[old] - year).astype(np.float64))
                       * np.exp(config.quality_boost
                                * np.minimum(qualities[old], 3.5)))
            total = weights.sum()
            probabilities = weights / total
            ref_counts = rng.poisson(config.mean_references, size=cohort)
            ref_counts = np.minimum(ref_counts, first)
            draw_total = int(ref_counts.sum())
            drawn = rng.choice(first, size=draw_total, replace=True,
                               p=probabilities)
            cursor = 0
            for position, article_id in enumerate(ids):
                count = int(ref_counts[position])
                chosen = np.unique(drawn[cursor:cursor + count])
                cursor += count
                references[article_id] = chosen.tolist()
                in_degree[chosen] += 1.0

        # Same-year citations (in-press cross-references). Drawn
        # uniformly within the cohort; mutual pairs create the small
        # cycles real corpora exhibit.
        if config.within_year_mean > 0 and cohort > 1:
            peer_counts = rng.poisson(config.within_year_mean,
                                      size=cohort)
            for position, article_id in enumerate(ids):
                count = int(min(peer_counts[position], cohort - 1))
                if count == 0:
                    continue
                peers = rng.choice(cohort, size=count, replace=False)
                extra = [int(ids[p]) for p in peers
                         if int(ids[p]) != article_id]
                if extra:
                    merged = sorted(set(references[article_id])
                                    | set(extra))
                    references[article_id] = merged
                    in_degree[extra] += 1.0

    for article_id in range(n):
        dataset.add_article(Article(
            id=article_id,
            title=f"Article-{article_id:06d}",
            year=int(years[article_id]),
            venue_id=int(venue_of[article_id]),
            author_ids=tuple(int(a) for a in author_lists[article_id]),
            references=tuple(int(r) for r in references[article_id]),
            quality=float(qualities[article_id]),
        ))
    return dataset


def aminer_like_config(scale: int = 25_000, seed: int = 7
                       ) -> GeneratorConfig:
    """Config resembling the AMiner DBLP-citation corpus (CS-venue skew)."""
    return GeneratorConfig(
        num_articles=scale,
        num_venues=max(40, scale // 500),
        num_authors=max(200, scale // 3),
        start_year=1980,
        end_year=2016,
        growth=1.09,
        mean_references=9.0,
        seed=seed,
    )


def mag_like_config(scale: int = 60_000, seed: int = 11
                    ) -> GeneratorConfig:
    """Config resembling a MAG slice (broader, denser, faster-growing)."""
    return GeneratorConfig(
        num_articles=scale,
        num_venues=max(120, scale // 400),
        num_authors=max(500, scale // 2),
        start_year=1970,
        end_year=2016,
        growth=1.07,
        mean_references=14.0,
        seed=seed,
    )
