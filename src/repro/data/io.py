"""JSONL serialization of datasets.

One entity per line with a ``kind`` tag, so files stream and diff well and
large datasets never need to be held as one JSON document. ``.gz`` paths
are compressed transparently.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO, Union

from repro.errors import ParseError
from repro.data.schema import Article, Author, ScholarlyDataset, Venue

PathLike = Union[str, Path]


def _open(path: Path, mode: str) -> IO:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_dataset_jsonl(dataset: ScholarlyDataset, path: PathLike) -> None:
    """Write ``dataset`` to ``path`` as JSON lines (gzip if ``.gz``)."""
    path = Path(path)
    with _open(path, "w") as handle:
        header = {"kind": "dataset", "name": dataset.name,
                  "articles": dataset.num_articles,
                  "venues": dataset.num_venues,
                  "authors": dataset.num_authors}
        handle.write(json.dumps(header) + "\n")
        for venue in dataset.venues.values():
            handle.write(json.dumps({
                "kind": "venue", "id": venue.id, "name": venue.name,
                "prestige": venue.prestige}) + "\n")
        for author in dataset.authors.values():
            handle.write(json.dumps({
                "kind": "author", "id": author.id,
                "name": author.name}) + "\n")
        for article in dataset.articles.values():
            handle.write(json.dumps({
                "kind": "article", "id": article.id,
                "title": article.title, "year": article.year,
                "venue_id": article.venue_id,
                "author_ids": list(article.author_ids),
                "references": list(article.references),
                "quality": article.quality}) + "\n")


def load_dataset_jsonl(path: PathLike) -> ScholarlyDataset:
    """Read a dataset written by :func:`save_dataset_jsonl`."""
    path = Path(path)
    dataset = ScholarlyDataset()
    with _open(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ParseError(f"invalid JSON: {exc}", str(path),
                                 line_number) from None
            kind = record.get("kind")
            try:
                if kind == "dataset":
                    dataset.name = record["name"]
                elif kind == "venue":
                    dataset.add_venue(Venue(
                        id=record["id"], name=record["name"],
                        prestige=record.get("prestige")))
                elif kind == "author":
                    dataset.add_author(Author(id=record["id"],
                                              name=record["name"]))
                elif kind == "article":
                    dataset.add_article(Article(
                        id=record["id"], title=record["title"],
                        year=record["year"],
                        venue_id=record.get("venue_id"),
                        author_ids=tuple(record.get("author_ids", ())),
                        references=tuple(record.get("references", ())),
                        quality=record.get("quality")))
                else:
                    raise ParseError(f"unknown record kind {kind!r}",
                                     str(path), line_number)
            except KeyError as exc:
                raise ParseError(f"missing field {exc}", str(path),
                                 line_number) from None
    return dataset
