"""Top-k retrieval over a precomputed article ranking.

:class:`RankIndex` materializes one ranking (article id -> score) into
sorted arrays plus venue/author/year posting lists, supporting the read
operations a scholarly search backend issues against a query-independent
score: global top-k, filtered top-k (venue, author, year range),
pagination, and per-article rank/percentile lookups.

All reads are O(k + log n) against immutable numpy arrays; rebuilding
after a re-rank is one constructor call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, NodeNotFoundError
from repro.data.schema import ScholarlyDataset


@dataclass(frozen=True)
class RankEntry:
    """One row of a ranking result list."""

    rank: int
    article_id: int
    score: float
    year: int
    title: str


class RankIndex:
    """Immutable serving index over one ranking of one dataset."""

    def __init__(self, dataset: ScholarlyDataset,
                 scores: Mapping[int, float]) -> None:
        """Build the index.

        ``scores`` must cover every article of ``dataset`` (extra ids are
        rejected too — a mismatched ranking is a bug worth failing on).
        """
        score_ids = np.fromiter(scores.keys(), dtype=np.int64,
                                count=len(scores))
        article_ids = np.fromiter(dataset.articles.keys(),
                                  dtype=np.int64,
                                  count=len(dataset.articles))
        if score_ids.shape != article_ids.shape or \
                np.setxor1d(score_ids, article_ids).size:
            raise ConfigError(
                "scores must cover exactly the dataset's articles")
        self._dataset = dataset
        score_order = np.argsort(score_ids, kind="stable")
        ids = score_ids[score_order]
        values = np.fromiter(scores.values(), dtype=np.float64,
                             count=len(scores))[score_order]
        order = np.lexsort((ids, -values))
        self._ids = ids[order]
        self._scores = values[order]
        years = np.fromiter(
            (article.year for article in dataset.articles.values()),
            dtype=np.int64, count=len(dataset.articles))
        article_order = np.argsort(article_ids, kind="stable")
        # years aligned to sorted ids, then reordered by score like ids.
        self._years = years[article_order][order]
        self._rank_of: Dict[int, int] = {
            int(article_id): position
            for position, article_id in enumerate(self._ids)}
        # Sort keys for binary search in global order (-score, id):
        # used by the sharded gateway to turn a shard-local hit into a
        # global rank without shipping whole rankings.
        self._neg_scores = -self._scores

        venue_lists: Dict[int, List[int]] = {}
        author_lists: Dict[int, List[int]] = {}
        for position, article_id in enumerate(self._ids):
            article = dataset.articles[int(article_id)]
            if article.venue_id is not None:
                venue_lists.setdefault(article.venue_id,
                                       []).append(position)
            for author_id in article.author_ids:
                author_lists.setdefault(author_id,
                                        []).append(position)
        # Positions are appended in score order, i.e. already sorted
        # ascending — which both keeps filtered iteration best-first and
        # lets filter intersection use assume_unique sorted-set numpy.
        self._by_venue: Dict[int, np.ndarray] = {
            venue: np.asarray(positions, dtype=np.int64)
            for venue, positions in venue_lists.items()}
        self._by_author: Dict[int, np.ndarray] = {
            author: np.asarray(positions, dtype=np.int64)
            for author, positions in author_lists.items()}

    # ------------------------------------------------------------------
    # lookups

    def __len__(self) -> int:
        return len(self._ids)

    def rank_of(self, article_id: int) -> int:
        """1-based rank of an article (1 = best)."""
        try:
            return self._rank_of[int(article_id)] + 1
        except KeyError:
            raise NodeNotFoundError(int(article_id)) from None

    def score_of(self, article_id: int) -> float:
        return float(self._scores[self.rank_of(article_id) - 1])

    def percentile(self, article_id: int) -> float:
        """Fraction of the corpus this article outranks (0..1]."""
        rank = self.rank_of(article_id)
        return 1.0 - (rank - 1) / len(self._ids)

    def count_ranked_above(self, score: float, article_id: int) -> int:
        """Articles strictly ahead of ``(score, article_id)`` globally.

        "Ahead" uses the index's total order: higher score first, ties
        broken by ascending article id. The probe article need not be
        in this index — shards use this to compute an article's global
        rank as ``1 + sum(count_ranked_above(...) per shard)``.
        O(log n) via binary search on the sorted arrays.
        """
        lo = int(np.searchsorted(self._neg_scores, -score, side="left"))
        hi = int(np.searchsorted(self._neg_scores, -score, side="right"))
        # Everything before `lo` has a strictly higher score; within the
        # tie run [lo, hi) ids ascend, so ids below the probe's are
        # ahead of it.
        return lo + int(np.searchsorted(self._ids[lo:hi], article_id,
                                        side="left"))

    # ------------------------------------------------------------------
    # retrieval

    def _entry(self, position: int, rank: int) -> RankEntry:
        article_id = int(self._ids[position])
        article = self._dataset.articles[article_id]
        return RankEntry(rank=rank, article_id=article_id,
                         score=float(self._scores[position]),
                         year=article.year, title=article.title)

    def top(self, k: int = 10, venue_id: Optional[int] = None,
            author_id: Optional[int] = None,
            year_range: Optional[Tuple[int, int]] = None
            ) -> List[RankEntry]:
        """Best ``k`` articles matching every given filter.

        Returned ``rank`` values are positions *within the filtered
        list* (1-based). Filters compose (AND semantics).
        """
        if k <= 0:
            raise ConfigError("k must be positive")
        results: List[RankEntry] = []
        for rank, position in enumerate(
                self._filtered_positions(venue_id, author_id, year_range),
                start=1):
            results.append(self._entry(position, rank))
            if len(results) >= k:
                break
        return results

    def page(self, offset: int, limit: int) -> List[RankEntry]:
        """Global ranking slice ``[offset, offset+limit)`` (0-based)."""
        if offset < 0 or limit <= 0:
            raise ConfigError("offset must be >= 0 and limit positive")
        stop = min(offset + limit, len(self._ids))
        return [self._entry(position, position + 1)
                for position in range(offset, stop)]

    def _filtered_positions(self, venue_id: Optional[int],
                            author_id: Optional[int],
                            year_range: Optional[Tuple[int, int]]
                            ) -> Iterator[int]:
        """Positions in score order matching the filters."""
        if year_range is not None and year_range[0] > year_range[1]:
            raise ConfigError("year_range must be (low, high)")

        empty = np.zeros(0, dtype=np.int64)
        candidates: Optional[np.ndarray] = None
        if venue_id is not None:
            candidates = self._by_venue.get(venue_id, empty)
        if author_id is not None:
            author_positions = self._by_author.get(author_id, empty)
            if candidates is None:
                candidates = author_positions
            else:
                # Both posting lists are sorted and duplicate-free;
                # intersect1d keeps the ascending (= best-score-first)
                # order.
                candidates = np.intersect1d(candidates, author_positions,
                                            assume_unique=True)

        positions = candidates if candidates is not None \
            else range(len(self._ids))
        for position in positions:
            if year_range is not None:
                year = int(self._years[position])
                if not year_range[0] <= year <= year_range[1]:
                    continue
            yield int(position)
