"""Query layer over precomputed rankings.

"Query independent" means scores are computed offline; serving them
still needs fast top-k with filters. :class:`~repro.query.index.RankIndex`
is that read path.
"""

from repro.query.index import RankEntry, RankIndex

__all__ = ["RankEntry", "RankIndex"]
