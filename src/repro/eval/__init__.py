"""Effectiveness metrics and evaluation protocols."""

from repro.eval.metrics import (
    average_precision,
    kendall_tau,
    ndcg_at_k,
    pairwise_accuracy,
    precision_at_k,
    rank_disagreement,
    recall_at_k,
    spearman_rho,
    top_k_overlap,
)
from repro.eval.protocol import EvalReport, evaluate_ranking, young_pairs

__all__ = [
    "average_precision",
    "kendall_tau",
    "ndcg_at_k",
    "pairwise_accuracy",
    "precision_at_k",
    "rank_disagreement",
    "recall_at_k",
    "spearman_rho",
    "top_k_overlap",
    "EvalReport",
    "evaluate_ranking",
    "young_pairs",
]
