"""Ranking-quality metrics.

All metrics take plain mappings/sequences so they work with any ranker's
output. ``scores`` maps article id -> score; higher is better. Metrics
follow the standard IR definitions; ties are handled explicitly where
they matter (pairwise accuracy gives half credit, nDCG uses the graded
relevance of whatever order ``sorted`` produces on equal scores — callers
who care break ties by id first).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Set, Tuple

import numpy as np
from scipy import stats

from repro.errors import ConfigError


def _ranked_ids(scores: Mapping[int, float]) -> list:
    """Ids sorted by descending score, ties broken by ascending id."""
    return sorted(scores, key=lambda i: (-scores[i], i))


def pairwise_accuracy(scores: Mapping[int, float],
                      pairs: Iterable[Tuple[int, int]]) -> float:
    """Fraction of ``(better, worse)`` pairs the scores order correctly.

    Ties earn half credit (the judge flips a coin). Pairs whose ids are
    missing from ``scores`` raise — silently skipping them would inflate
    results.
    """
    total = 0
    credit = 0.0
    for better, worse in pairs:
        if better not in scores or worse not in scores:
            raise ConfigError(
                f"pair ({better}, {worse}) not fully covered by scores")
        total += 1
        if scores[better] > scores[worse]:
            credit += 1.0
        elif scores[better] == scores[worse]:
            credit += 0.5
    if total == 0:
        raise ConfigError("no pairs to evaluate")
    return credit / total


def precision_at_k(scores: Mapping[int, float], relevant: Set[int],
                   k: int) -> float:
    """Fraction of the top ``k`` that is relevant."""
    if k <= 0:
        raise ConfigError("k must be positive")
    top = _ranked_ids(scores)[:k]
    return sum(1 for i in top if i in relevant) / k


def recall_at_k(scores: Mapping[int, float], relevant: Set[int],
                k: int) -> float:
    """Fraction of the relevant set found in the top ``k``."""
    if k <= 0:
        raise ConfigError("k must be positive")
    if not relevant:
        raise ConfigError("relevant set is empty")
    top = _ranked_ids(scores)[:k]
    return sum(1 for i in top if i in relevant) / len(relevant)


def average_precision(scores: Mapping[int, float],
                      relevant: Set[int]) -> float:
    """Mean of precision@rank over the ranks of relevant items."""
    if not relevant:
        raise ConfigError("relevant set is empty")
    hits = 0
    precision_sum = 0.0
    for rank, article_id in enumerate(_ranked_ids(scores), start=1):
        if article_id in relevant:
            hits += 1
            precision_sum += hits / rank
    if hits == 0:
        return 0.0
    return precision_sum / len(relevant)


def ndcg_at_k(scores: Mapping[int, float],
              relevance: Mapping[int, float], k: int) -> float:
    """Normalized discounted cumulative gain at ``k`` (graded relevance).

    Items missing from ``relevance`` count as gain 0. The ideal ranking
    is computed over all of ``relevance``.
    """
    if k <= 0:
        raise ConfigError("k must be positive")
    ranked = _ranked_ids(scores)[:k]
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    dcg = sum(relevance.get(article_id, 0.0) * discounts[position]
              for position, article_id in enumerate(ranked))
    ideal_gains = sorted(relevance.values(), reverse=True)[:k]
    idcg = sum(gain * discounts[position]
               for position, gain in enumerate(ideal_gains))
    if idcg == 0:
        return 0.0
    return float(dcg / idcg)


def spearman_rho(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation of two aligned score vectors.

    A constant vector carries no ordering information; the correlation
    is defined as 0 in that case (scipy would return nan with a
    warning).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ConfigError("vectors must align")
    if len(x) < 2:
        raise ConfigError("need at least two observations")
    if np.all(x == x[0]) or np.all(y == y[0]):
        return 0.0
    return float(stats.spearmanr(x, y).statistic)


def kendall_tau(x: Sequence[float], y: Sequence[float]) -> float:
    """Kendall tau-b rank correlation of two aligned score vectors."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ConfigError("vectors must align")
    if len(x) < 2:
        raise ConfigError("need at least two observations")
    return float(stats.kendalltau(x, y).statistic)


def rank_disagreement(first: Mapping[int, float],
                      second: Mapping[int, float],
                      num_samples: int = 100_000,
                      seed: int = 0) -> float:
    """KDist-style probability that two rankings disagree on a random pair.

    Exact for small id sets (all pairs enumerated when cheaper than
    sampling); otherwise Monte-Carlo over ``num_samples`` id pairs. Tied
    pairs in either ranking count half.
    """
    if set(first) != set(second):
        raise ConfigError("rankings must cover the same ids")
    ids = sorted(first)
    n = len(ids)
    if n < 2:
        raise ConfigError("need at least two items")

    def disagreement(a: int, b: int) -> float:
        d1 = first[a] - first[b]
        d2 = second[a] - second[b]
        if d1 == 0 or d2 == 0:
            return 0.0 if d1 == d2 else 0.5
        return 0.0 if (d1 > 0) == (d2 > 0) else 1.0

    total_pairs = n * (n - 1) // 2
    if total_pairs <= num_samples:
        agg = sum(disagreement(ids[i], ids[j])
                  for i in range(n) for j in range(i + 1, n))
        return agg / total_pairs
    rng = np.random.default_rng(seed)
    left = rng.integers(0, n, size=num_samples)
    right = rng.integers(0, n, size=num_samples)
    keep = left != right
    agg = sum(disagreement(ids[int(a)], ids[int(b)])
              for a, b in zip(left[keep], right[keep]))
    return agg / int(keep.sum())


def top_k_overlap(first: Mapping[int, float], second: Mapping[int, float],
                  k: int) -> float:
    """Jaccard overlap of the two rankings' top-``k`` sets."""
    if k <= 0:
        raise ConfigError("k must be positive")
    top_first = set(_ranked_ids(first)[:k])
    top_second = set(_ranked_ids(second)[:k])
    union = top_first | top_second
    if not union:
        raise ConfigError("both rankings are empty")
    return len(top_first & top_second) / len(union)
