"""Evaluation protocols: one call from ranking scores to a metric bundle.

:func:`evaluate_ranking` is what every effectiveness benchmark row calls;
:func:`young_pairs` restricts pairwise judgments to recently published
articles — the slice where static rankers are known to fail and the
paper's time-aware model is supposed to shine (experiment E8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import ConfigError
from repro.data.ground_truth import GroundTruth
from repro.data.schema import ScholarlyDataset
from repro.eval.metrics import (
    ndcg_at_k,
    pairwise_accuracy,
    recall_at_k,
    spearman_rho,
)


@dataclass(frozen=True)
class EvalReport:
    """Metric bundle of one ranking against one ground truth."""

    pairwise: float
    ndcg: Dict[int, float]
    recall: Dict[int, float]
    quality_spearman: float

    def as_row(self) -> Dict[str, str]:
        """Flatten for table rendering (stable key order)."""
        row = {"pairwise": f"{self.pairwise:.4f}"}
        for k in sorted(self.ndcg):
            row[f"ndcg@{k}"] = f"{self.ndcg[k]:.4f}"
        for k in sorted(self.recall):
            row[f"recall@{k}"] = f"{self.recall[k]:.4f}"
        row["spearman"] = f"{self.quality_spearman:.4f}"
        return row


def evaluate_ranking(scores: Mapping[int, float], truth: GroundTruth,
                     ndcg_ks: Sequence[int] = (50,),
                     recall_ks: Sequence[int] = (100,)) -> EvalReport:
    """Evaluate one ranking against a :class:`GroundTruth` bundle."""
    if not scores:
        raise ConfigError("scores are empty")
    missing = [i for i in truth.quality_by_id if i not in scores]
    if missing:
        raise ConfigError(
            f"{len(missing)} ground-truth articles missing from scores "
            f"(first: {missing[:3]})")
    pairwise = pairwise_accuracy(scores, truth.pairs)
    ndcg = {k: ndcg_at_k(scores, truth.quality_by_id, k) for k in ndcg_ks}
    recall = {k: recall_at_k(scores, set(truth.awards), k)
              for k in recall_ks}
    ids = sorted(truth.quality_by_id)
    quality_spearman = spearman_rho(
        [truth.quality_by_id[i] for i in ids],
        [scores[i] for i in ids])
    return EvalReport(pairwise=pairwise, ndcg=ndcg, recall=recall,
                      quality_spearman=quality_spearman)


def young_pairs(dataset: ScholarlyDataset, truth: GroundTruth,
                window: int = 3) -> Tuple[Tuple[int, int], ...]:
    """The subset of judgment pairs where *both* articles are young.

    Young = published within ``window`` years of the dataset's newest
    article. Raises when no pair qualifies (widen the window).
    """
    if window < 0:
        raise ConfigError("window must be non-negative")
    _, max_year = dataset.year_range()
    cutoff = max_year - window
    young = {article.id for article in dataset.articles.values()
             if article.year >= cutoff}
    pairs = tuple((a, b) for a, b in truth.pairs
                  if a in young and b in young)
    if not pairs:
        raise ConfigError(
            f"no judgment pairs with both articles published >= {cutoff}")
    return pairs
