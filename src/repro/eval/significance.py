"""Statistical significance of effectiveness differences.

Effectiveness tables claim "method A beats method B"; these tests say
whether the margin survives sampling noise, following standard IR
methodology:

* :func:`paired_bootstrap_test` — bootstrap over judgment pairs for
  pairwise accuracy: resample the pair set, count how often the
  advantage of A over B disappears.
* :func:`permutation_test` — sign-flipping permutation test on the
  per-pair outcome differences (exact in expectation, no distributional
  assumption).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class SignificanceResult:
    """Outcome of one significance test."""

    advantage: float
    p_value: float
    iterations: int

    @property
    def significant(self) -> bool:
        """Conventional alpha = 0.05."""
        return self.p_value < 0.05


def _pair_outcomes(scores: Mapping[int, float],
                   pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
    """Per-pair credit (1 correct / 0.5 tie / 0 wrong) of one method."""
    if not pairs:
        raise ConfigError("no pairs to evaluate")
    outcomes = np.empty(len(pairs), dtype=np.float64)
    for position, (better, worse) in enumerate(pairs):
        try:
            better_score = scores[better]
            worse_score = scores[worse]
        except KeyError as exc:
            raise ConfigError(
                f"pair article {exc.args[0]} missing from scores"
            ) from None
        if better_score > worse_score:
            outcomes[position] = 1.0
        elif better_score == worse_score:
            outcomes[position] = 0.5
        else:
            outcomes[position] = 0.0
    return outcomes


def paired_bootstrap_test(scores_a: Mapping[int, float],
                          scores_b: Mapping[int, float],
                          pairs: Sequence[Tuple[int, int]],
                          iterations: int = 2000,
                          seed: int = 0) -> SignificanceResult:
    """Bootstrap p-value for "A's pairwise accuracy exceeds B's".

    ``p_value`` is the bootstrap probability that the advantage is <= 0
    (one-sided). ``advantage`` is the observed accuracy difference.
    """
    if iterations <= 0:
        raise ConfigError("iterations must be positive")
    outcomes_a = _pair_outcomes(scores_a, pairs)
    outcomes_b = _pair_outcomes(scores_b, pairs)
    difference = outcomes_a - outcomes_b
    advantage = float(difference.mean())

    rng = np.random.default_rng(seed)
    n = len(difference)
    losses = 0
    for _ in range(iterations):
        sample = difference[rng.integers(0, n, size=n)]
        if sample.mean() <= 0:
            losses += 1
    return SignificanceResult(advantage=advantage,
                              p_value=losses / iterations,
                              iterations=iterations)


def permutation_test(scores_a: Mapping[int, float],
                     scores_b: Mapping[int, float],
                     pairs: Sequence[Tuple[int, int]],
                     iterations: int = 2000,
                     seed: int = 0) -> SignificanceResult:
    """Sign-flipping permutation test on per-pair outcome differences.

    Under the null (methods interchangeable) each pair's difference is
    symmetric around zero; ``p_value`` is the fraction of sign-flipped
    replicates whose mean difference reaches the observed one.
    """
    if iterations <= 0:
        raise ConfigError("iterations must be positive")
    difference = _pair_outcomes(scores_a, pairs) \
        - _pair_outcomes(scores_b, pairs)
    observed = float(difference.mean())

    rng = np.random.default_rng(seed)
    n = len(difference)
    at_least = 0
    for _ in range(iterations):
        signs = rng.integers(0, 2, size=n) * 2 - 1
        if (difference * signs).mean() >= observed:
            at_least += 1
    return SignificanceResult(advantage=observed,
                              p_value=at_least / iterations,
                              iterations=iterations)
