"""Time-Weighted PageRank (TWPR) — the paper's prestige measure.

Classic PageRank treats each reference of an article as an equal
endorsement. TWPR weights the reference ``u -> v`` by a decay on the
publication gap ``t(u) - t(v)``: the random reader prefers following
references to work that was recent *when the citing article was written*,
because those citations reflect active intellectual influence rather than
ritual acknowledgment. Prestige is the stationary distribution of that
time-biased walk.

Three solvers share one fixed point:

* ``power`` — damped power iteration on the weighted transition matrix
  (the naive baseline of experiment E4).
* ``gauss_seidel`` — per-node sweeps in influence order
  (:mod:`repro.ranking.gauss_seidel`).
* ``levels`` — the **batch optimization**: nodes are grouped into
  topological levels of the (condensed) citation DAG and each level is
  updated as one vectorized operation. Because citations point backward
  in time, one level sweep is an almost-exact forward substitution, so a
  handful of sweeps converge (only the dangling-mass feedback iterates).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np
from scipy.sparse import csr_matrix

from repro.errors import ConfigError, ConvergenceError
from repro.graph.csr import CSRGraph
from repro.graph.toposort import topological_levels
from repro.core.time_weight import TimeDecay, exponential_decay
from repro.ranking.gauss_seidel import gauss_seidel_pagerank
from repro.ranking.pagerank import pagerank, validate_initial, validate_jump

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.handle import Observability
    from repro.obs.telemetry import SolverTelemetry


@dataclass(frozen=True)
class TWPRResult:
    """Outcome of a Time-Weighted PageRank solve."""

    scores: np.ndarray
    iterations: int
    residual: float
    converged: bool
    method: str


def time_weight_edges(graph: CSRGraph, years: np.ndarray,
                      decay: TimeDecay) -> np.ndarray:
    """Per-edge time weights ``decay(max(t(src) - t(dst), 0))``.

    Forward-in-time edges (data noise: the cited article is "newer") get
    gap 0, i.e. full weight — they are simultaneous in practice.
    """
    years = np.asarray(years, dtype=np.float64)
    if years.shape != (graph.num_nodes,):
        raise ConfigError("years must align with graph nodes")
    src_idx, dst_idx, _ = graph.edge_array()
    gap = np.maximum(years[src_idx] - years[dst_idx], 0.0)
    weights = np.asarray(decay(gap), dtype=np.float64)
    if weights.shape != gap.shape:
        raise ConfigError("decay must return one weight per edge")
    if np.any(weights < 0) or np.any(weights > 1.0 + 1e-12):
        raise ConfigError("decay weights must lie in [0, 1]")
    return weights


def _node_levels(graph: CSRGraph) -> np.ndarray:
    """Topological level of every node (0 = no in-edges).

    Thin wrapper kept for backward compatibility: the level
    decomposition now lives in
    :func:`repro.graph.toposort.topological_levels`, shared with the
    vectorized Gauss–Seidel kernels.
    """
    return topological_levels(graph).levels


def _level_operators(graph: CSRGraph, weights: np.ndarray
                     ) -> List[Tuple[np.ndarray, csr_matrix]]:
    """Per-level pull operators.

    Returns a list (ascending level) of ``(nodes, matrix)`` where
    ``matrix @ scores`` yields, for each node in ``nodes``, the
    transition-probability-weighted sum over its in-edges.
    """
    n = graph.num_nodes
    src_idx, dst_idx, _ = graph.edge_array()
    strengths = np.bincount(src_idx, weights=weights, minlength=n)
    dangling = strengths == 0.0
    probability = weights / np.where(dangling, 1.0, strengths)[src_idx]

    levels = _node_levels(graph)
    operators: List[Tuple[np.ndarray, csr_matrix]] = []
    num_levels = int(levels.max()) + 1 if n else 0
    # Permute nodes so level blocks are contiguous; one stable sort of
    # the edges by permuted destination yields every level's CSR block
    # as a pair of array slices — no per-level construction cost.
    node_order = np.argsort(levels, kind="stable")
    node_bounds = np.searchsorted(levels[node_order],
                                  np.arange(num_levels + 1))
    rank_of_node = np.empty(n, dtype=np.int64)
    rank_of_node[node_order] = np.arange(n)
    rows = rank_of_node[dst_idx]
    edge_order = np.argsort(rows, kind="stable")
    sorted_src = src_idx[edge_order]
    sorted_probability = probability[edge_order]
    global_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n), out=global_indptr[1:])
    for level in range(num_levels):
        row_lo = int(node_bounds[level])
        row_hi = int(node_bounds[level + 1])
        edge_lo = int(global_indptr[row_lo])
        edge_hi = int(global_indptr[row_hi])
        block_indptr = global_indptr[row_lo:row_hi + 1] - edge_lo
        matrix = csr_matrix(
            (sorted_probability[edge_lo:edge_hi],
             sorted_src[edge_lo:edge_hi], block_indptr),
            shape=(row_hi - row_lo, n))
        operators.append((node_order[row_lo:row_hi], matrix))
    return operators


def _levels_solve(graph: CSRGraph, weights: np.ndarray, damping: float,
                  tol: float, max_sweeps: int, jump: np.ndarray,
                  initial: Optional[np.ndarray],
                  telemetry: Optional["SolverTelemetry"] = None,
                  obs: Optional["Observability"] = None
                  ) -> TWPRResult:
    """Vectorized level-sweep Gauss–Seidel (the batch optimization).

    ``initial``, when given, must already be validated/normalized (the
    public entry point :func:`time_weighted_pagerank` runs
    :func:`repro.ranking.pagerank.validate_initial` once for all three
    solvers).
    """
    n = graph.num_nodes
    src_idx = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    strengths = np.bincount(src_idx, weights=weights, minlength=n)
    dangling = strengths == 0.0
    operators = _level_operators(graph, weights)
    if telemetry is not None:
        telemetry.set_counter("levels", len(operators))
        telemetry.set_counter("dangling_nodes",
                              int(np.count_nonzero(dangling)))

    scores = jump.copy() if initial is None \
        else np.asarray(initial, dtype=np.float64).copy()
    span = obs.span("twpr.levels_solve", nodes=n,
                    levels=len(operators)) \
        if obs is not None else nullcontext()
    stream = telemetry.open_stream("twpr.levels") \
        if telemetry is not None else None
    with span:
        residual = float("inf")
        sweeps = 0
        for sweeps in range(1, max_sweeps + 1):
            sweep_start = time.perf_counter()
            previous = scores.copy()
            dangling_mass = float(scores[dangling].sum())
            for nodes, matrix in operators:
                pulled = matrix @ scores
                scores[nodes] = damping * (pulled
                                           + dangling_mass * jump[nodes]) \
                    + (1.0 - damping) * jump[nodes]
            scores /= scores.sum()
            change = np.abs(scores - previous)
            residual = float(change.sum())
            if telemetry is not None:
                telemetry.record_iteration(residual, dangling_mass)
                stream.record(
                    residual, delta=float(change.max()),
                    active=int(np.count_nonzero(change > tol)),
                    seconds=time.perf_counter() - sweep_start)
            if residual <= tol:
                return TWPRResult(scores, sweeps, residual, True, "levels")
    return TWPRResult(scores, sweeps, residual, False, "levels")


def time_weighted_pagerank(graph: CSRGraph, years: np.ndarray,
                           decay: Optional[TimeDecay] = None,
                           damping: float = 0.85, tol: float = 1e-10,
                           max_iter: int = 200,
                           jump: Optional[np.ndarray] = None,
                           method: str = "auto",
                           initial: Optional[np.ndarray] = None,
                           raise_on_divergence: bool = False,
                           telemetry: Optional["SolverTelemetry"] = None,
                           obs: Optional["Observability"] = None
                           ) -> TWPRResult:
    """Compute TWPR prestige scores.

    Args:
        graph: citation graph (citing -> cited).
        years: publication year per node index.
        decay: time-decay kernel (default ``exponential_decay(0.1)``).
        method: ``"power"``, ``"gauss_seidel"``, ``"levels"`` or
            ``"auto"`` (levels — the optimized batch solver).
        telemetry: optional :class:`repro.obs.SolverTelemetry` recording
            the residual trajectory (all three solvers), dangling-mass
            trajectory, a per-iteration convergence stream and the level
            count. Observational only — scores are bit-identical with
            telemetry on or off.
        obs: optional :class:`repro.obs.Observability` handle wrapping
            the solve in a ``twpr.solve`` span (nested solver spans
            appear underneath) and supplying telemetry when
            ``telemetry`` itself is not given.
        Other args as in :func:`repro.ranking.pagerank.pagerank`.

    ``initial`` is validated once here for all three solvers (shape,
    finiteness, non-negativity, positive mass — mirroring
    :func:`repro.ranking.pagerank.validate_jump`), so a zero-sum or
    wrong-shaped warm start fails loudly instead of yielding NaNs.
    """
    if method not in ("auto", "power", "gauss_seidel", "levels"):
        raise ConfigError(f"unknown method {method!r}")
    if not 0.0 <= damping < 1.0:
        raise ConfigError(f"damping must be in [0, 1), got {damping}")
    if tol <= 0 or max_iter <= 0:
        raise ConfigError("tol and max_iter must be positive")

    if obs is not None and telemetry is None:
        telemetry = obs.telemetry

    if decay is None:
        decay = exponential_decay(0.1)
    weights = time_weight_edges(graph, years, decay)
    n = graph.num_nodes
    if n == 0:
        return TWPRResult(np.zeros(0), 0, 0.0, True, method)
    jump_vector = validate_jump(jump, n)
    initial_vector = validate_initial(initial, n)
    if telemetry is not None:
        telemetry.solver = "levels" if method == "auto" else method

    span = obs.span("twpr.solve", method=method, nodes=n,
                    edges=graph.num_edges) \
        if obs is not None else nullcontext()
    with span:
        if method in ("auto", "levels"):
            result = _levels_solve(graph, weights, damping, tol, max_iter,
                                   jump_vector, initial_vector,
                                   telemetry=telemetry, obs=obs)
        elif method == "power":
            base = pagerank(graph, damping=damping, tol=tol,
                            max_iter=max_iter, jump=jump_vector,
                            edge_weights=weights, initial=initial_vector,
                            telemetry=telemetry, obs=obs)
            result = TWPRResult(base.scores, base.iterations, base.residual,
                                base.converged, "power")
        else:
            base = gauss_seidel_pagerank(graph, damping=damping, tol=tol,
                                         max_sweeps=max_iter,
                                         jump=jump_vector,
                                         edge_weights=weights,
                                         initial=initial_vector,
                                         telemetry=telemetry, obs=obs)
            result = TWPRResult(base.scores, base.iterations, base.residual,
                                base.converged, "gauss_seidel")
    if raise_on_divergence and not result.converged:
        raise ConvergenceError(
            f"TWPR ({result.method}) did not reach tol={tol} in "
            f"{max_iter} iterations (residual={result.residual:.3e})",
            result.iterations, result.residual)
    return result
