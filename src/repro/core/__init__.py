"""The paper's primary contribution: query-independent article ranking.

Pipeline (see DESIGN.md "Core model"):

1. **Prestige** of articles and venues via
   :func:`~repro.core.twpr.time_weighted_pagerank` — PageRank whose edge
   weights decay with the citation's time gap.
2. **Popularity** via :func:`~repro.core.popularity.popularity_scores` —
   time-decayed citation counts (recent citations count more).
3. **Importance** per entity kind via
   :func:`~repro.core.importance.combine_importance` — a normalized convex
   combination of prestige and popularity.
4. **Assembly** into a final article score by
   :class:`~repro.core.model.ArticleRanker` — article importance blended
   with the importance of its venue and authors.
"""

from repro.core.author_score import author_importance
from repro.core.entity_rank import EntityRanker, EntityRanking
from repro.core.importance import combine_importance, normalize_scores
from repro.core.model import ArticleRanker, RankerConfig, RankingResult
from repro.core.popularity import popularity_scores
from repro.core.time_weight import (
    TimeDecay,
    exponential_decay,
    linear_decay,
    no_decay,
)
from repro.core.twpr import TWPRResult, time_weight_edges, time_weighted_pagerank
from repro.core.venue_graph import build_venue_graph

__all__ = [
    "ArticleRanker",
    "EntityRanker",
    "EntityRanking",
    "RankerConfig",
    "RankingResult",
    "TWPRResult",
    "TimeDecay",
    "author_importance",
    "build_venue_graph",
    "combine_importance",
    "exponential_decay",
    "linear_decay",
    "no_decay",
    "normalize_scores",
    "popularity_scores",
    "time_weight_edges",
    "time_weighted_pagerank",
]
