"""The assembled article-ranking model (the paper's headline system).

:class:`ArticleRanker` wires the pieces together:

1. article prestige — TWPR on the article citation graph;
2. article popularity — decayed citation counts;
3. article importance — convex combination of 1 and 2;
4. venue importance — the same prestige/popularity combination computed
   on the aggregated venue citation graph;
5. author importance — aggregated article importance per author;
6. final score — weighted blend of article, venue and author importance.

Every knob sits in :class:`RankerConfig`; experiments E2/E3 sweep them.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, DatasetError
from repro.data.schema import ScholarlyDataset
from repro.core.author_score import article_author_feature, author_importance
from repro.core.importance import combine_importance, normalize_scores
from repro.core.popularity import popularity_scores
from repro.core.time_weight import exponential_decay
from repro.core.twpr import time_weighted_pagerank
from repro.core.venue_graph import build_venue_graph, venue_popularity
from repro.ranking.pagerank import pagerank

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.handle import Observability
    from repro.obs.telemetry import SolverTelemetry


def _stage_observed(obs: Optional["Observability"], timings: Dict[str, float],
                    stage: str, seconds: float) -> None:
    """Record one finished stage in the timings dict and, when an
    :class:`Observability` handle is present, in the
    ``repro_stage_seconds`` histogram."""
    timings[stage] = seconds
    if obs is not None:
        obs.metrics.histogram(
            "repro_stage_seconds",
            "Wall-clock seconds per ranking pipeline stage.",
            labels=("stage",)).observe(seconds, stage=stage)


@dataclass(frozen=True)
class RankerConfig:
    """All knobs of the assembled model.

    Attributes:
        damping: PageRank damping for both TWPR solves.
        prestige_decay: lambda — per-year decay of citation-edge weight in
            TWPR (0 reduces prestige to classic PageRank).
        popularity_decay: sigma — per-year decay of a citation's
            popularity contribution (popularity fades faster than
            prestige: sigma > lambda).
        theta: prestige weight inside entity importance
            (1 = prestige only, 0 = popularity only).
        weight_article / weight_venue / weight_author: blend weights of
            the final score; must be non-negative and sum to a positive
            value (normalized internally).
        author_mode: article-importance aggregation per author
            (``mean`` / ``sum`` / ``max``).
        normalization: score normalization used at every combination
            point (``rank`` is robust to the heavy-tailed scales the
            components live on).
        solver: TWPR solver (``auto`` = optimized level sweeps).
        tol / max_iter: convergence control for the iterative solves.
        observation_year: "today" for all decays (default: dataset max).
        popularity_self_boost: see
            :func:`repro.core.popularity.popularity_scores`.
    """

    damping: float = 0.85
    prestige_decay: float = 0.1
    popularity_decay: float = 0.4
    theta: float = 0.5
    weight_article: float = 0.6
    weight_venue: float = 0.25
    weight_author: float = 0.15
    author_mode: str = "mean"
    normalization: str = "rank"
    solver: str = "auto"
    tol: float = 1e-10
    max_iter: int = 200
    observation_year: Optional[int] = None
    popularity_self_boost: float = 0.0

    def __post_init__(self) -> None:
        if self.prestige_decay < 0 or self.popularity_decay < 0:
            raise ConfigError("decay rates must be non-negative")
        if not 0.0 <= self.theta <= 1.0:
            raise ConfigError(f"theta must be in [0, 1], got {self.theta}")
        weights = (self.weight_article, self.weight_venue,
                   self.weight_author)
        if any(w < 0 for w in weights):
            raise ConfigError("blend weights must be non-negative")
        if sum(weights) <= 0:
            raise ConfigError("blend weights must not all be zero")

    def blend_weights(self) -> Tuple[float, float, float]:
        """Article/venue/author weights normalized to sum to 1."""
        total = self.weight_article + self.weight_venue + self.weight_author
        return (self.weight_article / total, self.weight_venue / total,
                self.weight_author / total)


@dataclass(frozen=True)
class RankingResult:
    """Scores plus every intermediate component and solver diagnostics.

    ``scores`` aligns with ``node_ids`` (ascending article id). The
    ``components`` map holds the intermediate vectors (same alignment):
    ``article_prestige``, ``article_popularity``, ``article_importance``,
    ``venue_feature``, ``author_feature``.
    """

    node_ids: np.ndarray
    scores: np.ndarray
    components: Dict[str, np.ndarray]
    diagnostics: Dict[str, object] = field(default_factory=dict)

    def by_id(self) -> Dict[int, float]:
        """Scores keyed by article id."""
        return {int(node): float(score)
                for node, score in zip(self.node_ids, self.scores)}

    def top(self, k: int = 10) -> List[Tuple[int, float]]:
        """Highest-scored ``(article_id, score)`` pairs, ties by id."""
        if k <= 0:
            raise ConfigError("k must be positive")
        order = np.lexsort((self.node_ids, -self.scores))
        return [(int(self.node_ids[i]), float(self.scores[i]))
                for i in order[:k]]


class ArticleRanker:
    """Ranks every article of a dataset, query-independently."""

    def __init__(self, config: Optional[RankerConfig] = None) -> None:
        self.config = config or RankerConfig()

    def with_config(self, **overrides) -> "ArticleRanker":
        """A new ranker with ``overrides`` applied to the config."""
        return ArticleRanker(replace(self.config, **overrides))

    def rank(self, dataset: ScholarlyDataset,
             telemetry: Optional["SolverTelemetry"] = None,
             obs: Optional["Observability"] = None
             ) -> RankingResult:
        """Run the full pipeline on ``dataset``.

        Per-stage wall-clock timings land in
        ``result.diagnostics["timings"]`` (seconds), keyed by stage name —
        the batch-efficiency experiments read them. ``telemetry``
        (optional) is handed to the TWPR solve and records its residual
        trajectory; scores are identical with it on or off. ``obs``
        (optional) wraps the pipeline in a ``rank`` span with per-stage
        child spans and mirrors stage timings into the
        ``repro_stage_seconds`` histogram.
        """
        if dataset.num_articles == 0:
            raise DatasetError("cannot rank an empty dataset")
        if obs is not None and telemetry is None:
            telemetry = obs.telemetry
        config = self.config
        timings: Dict[str, float] = {}
        clock = time.perf_counter
        outer = obs.span("rank", articles=dataset.num_articles) \
            if obs is not None else nullcontext()
        with outer:
            stage_start = clock()
            with (obs.span("rank.build_graph") if obs is not None
                  else nullcontext()):
                graph = dataset.citation_csr()
                years = dataset.article_years(graph)
            _stage_observed(obs, timings, "build_graph",
                            clock() - stage_start)
            _, max_year = dataset.year_range()
            observation = config.observation_year \
                if config.observation_year is not None else max_year
            if observation < max_year:
                raise ConfigError(
                    f"observation_year {observation} precedes newest "
                    f"article ({max_year}); slice the dataset instead")

            diagnostics: Dict[str, object] = {"timings": timings}

            stage_start = clock()
            prestige_kernel = exponential_decay(config.prestige_decay)
            twpr = time_weighted_pagerank(
                graph, years, decay=prestige_kernel,
                damping=config.damping, tol=config.tol,
                max_iter=config.max_iter, method=config.solver,
                telemetry=telemetry, obs=obs)
            _stage_observed(obs, timings, "article_prestige",
                            clock() - stage_start)
            diagnostics["twpr_iterations"] = twpr.iterations
            diagnostics["twpr_method"] = twpr.method
            diagnostics["twpr_converged"] = twpr.converged

            return self._assemble(dataset, graph, years, observation,
                                  twpr.scores, diagnostics, timings,
                                  obs=obs)

    def rank_with_prestige(self, dataset: ScholarlyDataset,
                           prestige,
                           graph=None,
                           obs: Optional["Observability"] = None
                           ) -> RankingResult:
        """Assemble the full model around *externally supplied* prestige.

        ``prestige`` is either a mapping (article id -> score) or a
        numpy array already aligned with the graph's node order.

        This is the hook for dynamic ranking: the expensive TWPR solve is
        maintained incrementally elsewhere (e.g.
        :class:`repro.engine.incremental.IncrementalEngine`), and this
        method performs only the linear-time stages — popularity, venue
        and author importance, and the final blend. ``graph`` may supply
        a pre-built citation CSR (canonical ascending-id node order) to
        skip the rebuild — the live pipeline already maintains one.
        """
        if dataset.num_articles == 0:
            raise DatasetError("cannot rank an empty dataset")
        config = self.config
        timings: Dict[str, float] = {}
        clock = time.perf_counter
        stage_start = clock()
        if graph is None:
            graph = dataset.citation_csr()
        years = dataset.article_years(graph)
        timings["build_graph"] = clock() - stage_start
        _, max_year = dataset.year_range()
        observation = config.observation_year \
            if config.observation_year is not None else max_year
        if observation < max_year:
            raise ConfigError(
                f"observation_year {observation} precedes newest article "
                f"({max_year}); slice the dataset instead")
        if isinstance(prestige, np.ndarray):
            if prestige.shape != (graph.num_nodes,):
                raise ConfigError(
                    f"prestige array must align with the graph "
                    f"({graph.num_nodes} nodes), got {prestige.shape}")
            prestige_scores = np.asarray(prestige, dtype=np.float64)
        else:
            try:
                prestige_scores = np.asarray(
                    [prestige[int(node)] for node in graph.node_ids],
                    dtype=np.float64)
            except KeyError as exc:
                raise ConfigError(
                    f"prestige map missing article {exc.args[0]}"
                ) from None
        diagnostics: Dict[str, object] = {"timings": timings,
                                          "prestige_source": "external"}
        return self._assemble(dataset, graph, years, observation,
                              prestige_scores, diagnostics, timings,
                              obs=obs)

    def _assemble(self, dataset: ScholarlyDataset, graph, years,
                  observation: int, prestige_scores: np.ndarray,
                  diagnostics: Dict[str, object],
                  timings: Dict[str, float],
                  obs: Optional["Observability"] = None) -> RankingResult:
        """Linear-time stages shared by batch and dynamic ranking."""
        config = self.config
        clock = time.perf_counter

        def _span(name: str):
            return obs.span(name) if obs is not None else nullcontext()

        stage_start = clock()
        with _span("rank.article_popularity"):
            popularity_kernel = exponential_decay(config.popularity_decay)
            article_popularity = popularity_scores(
                graph, years, observation, decay=popularity_kernel,
                self_boost=config.popularity_self_boost)

            article_importance = combine_importance(
                prestige_scores, article_popularity, theta=config.theta,
                normalization=config.normalization)
        _stage_observed(obs, timings, "article_popularity",
                        clock() - stage_start)

        stage_start = clock()
        with _span("rank.venue"):
            venue_feature = self._venue_feature(
                dataset, graph, observation, diagnostics)
        _stage_observed(obs, timings, "venue", clock() - stage_start)
        stage_start = clock()
        with _span("rank.author"):
            author_feature = self._author_feature(
                dataset, graph, article_importance)
        _stage_observed(obs, timings, "author", clock() - stage_start)

        stage_start = clock()
        with _span("rank.assembly"):
            w_article, w_venue, w_author = config.blend_weights()
            scores = (
                w_article * normalize_scores(article_importance,
                                             config.normalization)
                + w_venue * normalize_scores(venue_feature,
                                             config.normalization)
                + w_author * normalize_scores(author_feature,
                                              config.normalization))
        _stage_observed(obs, timings, "assembly", clock() - stage_start)

        return RankingResult(
            node_ids=graph.node_ids.copy(),
            scores=scores,
            components={
                "article_prestige": prestige_scores,
                "article_popularity": article_popularity,
                "article_importance": article_importance,
                "venue_feature": venue_feature,
                "author_feature": author_feature,
            },
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------
    # components

    def _venue_feature(self, dataset: ScholarlyDataset, graph,
                       observation: int,
                       diagnostics: Dict[str, object]) -> np.ndarray:
        """Per-article venue importance (dataset mean for venue-less)."""
        config = self.config
        if dataset.num_venues == 0 or config.weight_venue == 0:
            diagnostics["venue_iterations"] = 0
            return np.zeros(graph.num_nodes)

        kernel = exponential_decay(config.prestige_decay)
        venue_graph = build_venue_graph(dataset, decay=kernel,
                                        graph=graph)
        venue_prestige_result = pagerank(
            venue_graph.graph, damping=config.damping, tol=config.tol,
            max_iter=config.max_iter)
        diagnostics["venue_iterations"] = venue_prestige_result.iterations
        diagnostics["venue_converged"] = venue_prestige_result.converged
        popularity_kernel = exponential_decay(config.popularity_decay)
        venue_pop = venue_popularity(dataset, observation,
                                     popularity_kernel, venue_graph,
                                     graph=graph)
        venue_importance = combine_importance(
            venue_prestige_result.scores, venue_pop, theta=config.theta,
            normalization=config.normalization)

        feature = np.zeros(graph.num_nodes)
        missing = []
        for position, article_id in enumerate(graph.node_ids):
            venue_id = dataset.articles[int(article_id)].venue_id
            if venue_id is None:
                missing.append(position)
            else:
                feature[position] = venue_importance[
                    venue_graph.venue_index(venue_id)]
        if missing:
            present = np.delete(feature, missing)
            feature[missing] = float(present.mean()) if len(present) else 0.0
        return feature

    def _author_feature(self, dataset: ScholarlyDataset, graph,
                        article_importance: np.ndarray) -> np.ndarray:
        """Per-article mean author importance."""
        if dataset.num_authors == 0 or self.config.weight_author == 0:
            return np.zeros(graph.num_nodes)
        importance_by_id = {
            int(node): float(value)
            for node, value in zip(graph.node_ids, article_importance)}
        author_scores = author_importance(
            dataset, importance_by_id, mode=self.config.author_mode)
        return article_author_feature(dataset, author_scores,
                                      graph.node_ids)
