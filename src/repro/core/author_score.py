"""Author importance derived from article importance.

The paper treats authors as first-class entities whose importance feeds
back into article scores. Author importance here is an aggregate of the
importance of the articles they wrote; the aggregation mode is a knob
(``mean`` resists inflation by prolific-but-average authors, ``sum``
rewards productivity, ``max`` rewards one-hit wonders).
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.errors import ConfigError, DatasetError
from repro.data.schema import ScholarlyDataset

_MODES = ("mean", "sum", "max")


def author_importance(dataset: ScholarlyDataset,
                      article_importance: Mapping[int, float],
                      mode: str = "mean") -> Dict[int, float]:
    """Aggregate article importance per author.

    Args:
        dataset: provides the authorship relation.
        article_importance: article id -> importance (every article in the
            dataset must be present).
        mode: ``mean`` (default), ``sum`` or ``max``.

    Returns:
        author id -> importance; authors with no articles score 0.
    """
    if mode not in _MODES:
        raise ConfigError(f"unknown mode {mode!r}; choose from {_MODES}")
    author_ids = sorted(dataset.authors)
    position_of = {author_id: i for i, author_id in enumerate(author_ids)}
    num_authors = len(author_ids)

    # Flatten the authorship relation once, then aggregate vectorized.
    author_positions = []
    values = []
    for article in dataset.articles.values():
        try:
            value = float(article_importance[article.id])
        except KeyError:
            raise DatasetError(
                f"article {article.id} missing from importance map"
            ) from None
        for author_id in article.author_ids:
            position = position_of.get(author_id)
            if position is None:
                raise DatasetError(
                    f"article {article.id} references unknown author "
                    f"{author_id}")
            author_positions.append(position)
            values.append(value)

    positions = np.asarray(author_positions, dtype=np.int64)
    weights = np.asarray(values, dtype=np.float64)
    if mode == "max":
        totals = np.zeros(num_authors, dtype=np.float64)
        np.maximum.at(totals, positions, weights)
    else:
        totals = np.bincount(positions, weights=weights,
                             minlength=num_authors)
        if mode == "mean":
            counts = np.bincount(positions, minlength=num_authors)
            totals = np.where(counts > 0,
                              totals / np.maximum(counts, 1), 0.0)
    return {author_id: float(totals[i])
            for i, author_id in enumerate(author_ids)}


def article_author_feature(dataset: ScholarlyDataset,
                           author_scores: Mapping[int, float],
                           node_ids: np.ndarray) -> np.ndarray:
    """Mean author importance per article, aligned with ``node_ids``.

    Articles without authors get the dataset-wide mean feature so the
    blend stays unbiased for them.
    """
    n = len(node_ids)
    node_positions = []
    team_scores = []
    for position, article_id in enumerate(node_ids):
        for author_id in dataset.articles[int(article_id)].author_ids:
            node_positions.append(position)
            team_scores.append(float(author_scores[author_id]))
    positions = np.asarray(node_positions, dtype=np.int64)
    sums = np.bincount(positions,
                       weights=np.asarray(team_scores, dtype=np.float64),
                       minlength=n)
    counts = np.bincount(positions, minlength=n)
    values = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    missing = counts == 0
    if np.any(missing) and np.any(~missing):
        values[missing] = float(values[~missing].mean())
    return values
