"""Combining prestige and popularity into entity importance.

Prestige and popularity live on incompatible scales (a stationary
distribution vs. decayed counts), so each is normalized before the convex
combination

    I = theta * norm(prestige) + (1 - theta) * norm(popularity)

``theta`` is the paper's balance knob, swept in experiment E3.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

_NORMALIZATIONS = ("sum", "max", "zscore", "rank")


def normalize_scores(scores: np.ndarray, method: str = "sum") -> np.ndarray:
    """Normalize a non-negative score vector.

    Methods:
        ``sum`` — scale to a probability distribution (all-zero stays 0);
        ``max`` — scale the maximum to 1;
        ``zscore`` — standardize (mean 0, stddev 1);
        ``rank`` — replace scores by average ranks scaled to [0, 1]
        (robust to heavy tails; ties share their average rank). Values
        are quantized to 1e-9 *relative* precision first, so numbers
        that differ only by iterative-solver noise become honest ties
        instead of arbitrarily ordered ranks — without this, sub-
        tolerance jitter among the near-tied tail of a PageRank vector
        would reshuffle thousands of ranks between runs/solvers.
    """
    if method not in _NORMALIZATIONS:
        raise ConfigError(f"unknown normalization {method!r}; "
                          f"choose from {_NORMALIZATIONS}")
    values = np.asarray(scores, dtype=np.float64)
    if values.ndim != 1:
        raise ConfigError("scores must be one-dimensional")
    if len(values) == 0:
        return values.copy()
    if not np.all(np.isfinite(values)):
        raise ConfigError("scores must be finite")

    if method == "sum":
        total = values.sum()
        return values / total if total > 0 else values.copy()
    if method == "max":
        peak = values.max()
        return values / peak if peak > 0 else values.copy()
    if method == "zscore":
        spread = values.std()
        if spread == 0:
            return np.zeros_like(values)
        return (values - values.mean()) / spread
    # rank: average rank for ties, scaled into [0, 1].
    peak = np.abs(values).max()
    if peak > 0:
        values = np.round(values / peak, 9)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(len(values), dtype=np.float64)
    # Average tied groups.
    sorted_values = values[order]
    start = 0
    for stop in range(1, len(values) + 1):
        if stop == len(values) or sorted_values[stop] != sorted_values[start]:
            mean_rank = 0.5 * (start + stop - 1)
            ranks[order[start:stop]] = mean_rank
            start = stop
    if len(values) == 1:
        return np.ones(1)
    return ranks / (len(values) - 1)


def combine_importance(prestige: np.ndarray, popularity: np.ndarray,
                       theta: float = 0.5,
                       normalization: str = "sum") -> np.ndarray:
    """``theta * norm(prestige) + (1 - theta) * norm(popularity)``."""
    if not 0.0 <= theta <= 1.0:
        raise ConfigError(f"theta must be in [0, 1], got {theta}")
    prestige = np.asarray(prestige, dtype=np.float64)
    popularity = np.asarray(popularity, dtype=np.float64)
    if prestige.shape != popularity.shape:
        raise ConfigError("prestige and popularity must align")
    return (theta * normalize_scores(prestige, normalization)
            + (1.0 - theta) * normalize_scores(popularity, normalization))
