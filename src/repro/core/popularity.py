"""Time-decayed popularity — the "current attention" half of importance.

The popularity of an article is the decayed count of its citations, each
citation weighted by how recently the *citing* article appeared:

    Pop(v) = sum over citers u of  decay(T - t(u))

A classic that stopped being cited keeps prestige but loses popularity;
a rising-star article, too young to accumulate prestige through the
citation network, shows up here first. This asymmetry is why the paper
combines both (see :mod:`repro.core.importance`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.core.time_weight import TimeDecay, exponential_decay


def popularity_scores(graph: CSRGraph, years: np.ndarray,
                      observation_year: int,
                      decay: Optional[TimeDecay] = None,
                      self_boost: float = 0.0) -> np.ndarray:
    """``float64[n]`` decayed-citation popularity per node index.

    Args:
        graph: citation graph (citing -> cited).
        years: publication year per node index.
        observation_year: "today" (must not precede any publication).
        decay: decay kernel on citation age (default
            ``exponential_decay(0.4)`` — popularity fades faster than
            prestige, matching the paper's prestige/popularity split).
        self_boost: optional additive term ``decay(T - t(v))`` giving every
            article one phantom self-citation at publication time, so
            brand-new uncited articles rank by recency instead of all
            tying at zero. Disabled by default.
    """
    if decay is None:
        decay = exponential_decay(0.4)
    years = np.asarray(years, dtype=np.float64)
    if years.shape != (graph.num_nodes,):
        raise ConfigError("years must align with graph nodes")
    age = observation_year - years
    if np.any(age < 0):
        raise ConfigError("observation_year precedes some publications")
    if self_boost < 0:
        raise ConfigError("self_boost must be non-negative")

    src_idx, dst_idx, _ = graph.edge_array()
    contributions = np.asarray(decay(age[src_idx]), dtype=np.float64)
    scores = np.bincount(dst_idx, weights=contributions,
                         minlength=graph.num_nodes)
    if self_boost > 0:
        scores += self_boost * np.asarray(decay(age), dtype=np.float64)
    return scores
