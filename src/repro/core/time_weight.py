"""Time-decay functions for citation weighting.

A citation from ``u`` (published ``t_u``) to ``v`` (published ``t_v``)
carries less endorsement the larger the gap ``t_u - t_v``: an article
still cited long after publication is typically cited *ritually*, while
citations shortly after publication indicate the work is shaping its
field right now. The decay family is pluggable so ablations can switch
the kernel (the paper's choice is exponential).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigError

# A TimeDecay maps a non-negative gap (years, float array) to weights in
# (0, 1]. Gap 0 must map to 1.
TimeDecay = Callable[[np.ndarray], np.ndarray]


def exponential_decay(rate: float = 0.1) -> TimeDecay:
    """``w(gap) = exp(-rate * gap)`` — the paper's kernel."""
    if rate < 0:
        raise ConfigError(f"decay rate must be non-negative, got {rate}")

    def decay(gap: np.ndarray) -> np.ndarray:
        return np.exp(-rate * np.maximum(np.asarray(gap, dtype=np.float64),
                                         0.0))

    # Recorded so engine checkpoints can serialize the kernel.
    decay._repro_rate = rate
    return decay


def linear_decay(horizon: float = 30.0, floor: float = 0.05) -> TimeDecay:
    """Linear fade to ``floor`` at ``horizon`` years (ablation kernel)."""
    if horizon <= 0:
        raise ConfigError(f"horizon must be positive, got {horizon}")
    if not 0.0 <= floor <= 1.0:
        raise ConfigError(f"floor must be in [0, 1], got {floor}")

    def decay(gap: np.ndarray) -> np.ndarray:
        gap = np.maximum(np.asarray(gap, dtype=np.float64), 0.0)
        return np.maximum(1.0 - (1.0 - floor) * gap / horizon, floor)

    return decay


def no_decay() -> TimeDecay:
    """Constant 1 — reduces TWPR to classic (weighted) PageRank."""

    def decay(gap: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(gap, dtype=np.float64))

    return decay
