"""Venue citation graph: aggregating article citations to venue level.

A venue's prestige is computed with the same TWPR machinery as articles',
on the graph whose nodes are venues and whose edge ``A -> B`` aggregates
every citation from an article in ``A`` to an article in ``B``. Edges are
time-weighted at the *article* level before aggregation — a venue whose
articles keep citing another venue's fresh output transfers more prestige
than one citing its decades-old archive.

Aggregation is vectorized over the article CSR (it runs on every batch of
the live ranking pipeline, so it must stay linear-time numpy work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.graph.csr import CSRGraph
from repro.data.schema import ScholarlyDataset
from repro.core.time_weight import TimeDecay


@dataclass(frozen=True)
class VenueGraph:
    """Aggregated venue-level citation graph.

    Attributes:
        graph: CSR over venue ids; edge weights are (optionally decayed)
            citation aggregates.
        citation_counts: raw (undecayed) aggregate per edge, aligned with
            ``graph`` edges — kept for diagnostics and ablations.
    """

    graph: CSRGraph
    citation_counts: np.ndarray

    def venue_index(self, venue_id: int) -> int:
        return self.graph.index_of(venue_id)


def _article_arrays(dataset: ScholarlyDataset,
                    graph: Optional[CSRGraph]
                    ) -> Tuple[CSRGraph, np.ndarray, np.ndarray,
                               np.ndarray]:
    """Citation CSR plus per-node years and venue *indices* (-1 = none)."""
    if graph is None:
        graph = dataset.citation_csr()
    years = dataset.article_years(graph)
    venue_ids = sorted(dataset.venues)
    index_of_venue = {venue: i for i, venue in enumerate(venue_ids)}
    venue_of = np.asarray(
        [index_of_venue.get(dataset.articles[int(node)].venue_id, -1)
         for node in graph.node_ids], dtype=np.int64)
    return graph, years, venue_of, np.asarray(venue_ids, dtype=np.int64)


def build_venue_graph(dataset: ScholarlyDataset,
                      decay: Optional[TimeDecay] = None,
                      include_self_loops: bool = False,
                      graph: Optional[CSRGraph] = None) -> VenueGraph:
    """Aggregate the dataset's citations into a venue graph.

    Args:
        dataset: source dataset; articles without a venue are skipped.
        decay: optional article-level time decay applied to each citation
            before aggregation (gap = ``t(citing) - t(cited)``, clamped
            at 0).
        include_self_loops: keep within-venue citations (default: drop —
            internal citations say nothing about cross-venue prestige).
        graph: optional pre-built citation CSR of ``dataset`` (skips the
            rebuild; node order must be the canonical ascending-id one).
    """
    if dataset.num_venues == 0:
        raise DatasetError("dataset has no venues")

    graph, years, venue_of, venue_ids = _article_arrays(dataset, graph)
    num_venues = len(venue_ids)
    src_idx, dst_idx, _ = graph.edge_array()
    src_venue = venue_of[src_idx]
    dst_venue = venue_of[dst_idx]
    keep = (src_venue >= 0) & (dst_venue >= 0)
    if not include_self_loops:
        keep &= src_venue != dst_venue

    src_venue = src_venue[keep]
    dst_venue = dst_venue[keep]
    if decay is not None:
        gap = np.maximum(
            (years[src_idx[keep]] - years[dst_idx[keep]]).astype(
                np.float64), 0.0)
        edge_weight = np.asarray(decay(gap), dtype=np.float64)
    else:
        edge_weight = np.ones(len(src_venue), dtype=np.float64)

    key = src_venue * num_venues + dst_venue
    unique_keys, inverse = np.unique(key, return_inverse=True)
    weights = np.bincount(inverse, weights=edge_weight,
                          minlength=len(unique_keys))
    counts = np.bincount(inverse, minlength=len(unique_keys)).astype(
        np.float64)

    pair_src = (unique_keys // num_venues).astype(np.int64)
    pair_dst = (unique_keys % num_venues).astype(np.int64)
    venue_graph = CSRGraph.from_edges(
        [(int(venue_ids[u]), int(venue_ids[v]))
         for u, v in zip(pair_src, pair_dst)],
        nodes=venue_ids.tolist(),
        weights=weights.tolist())

    # CSRGraph.from_edges sorts edges by source (stable), preserving the
    # order of `unique_keys` (already sorted by (src, dst)), so the raw
    # counts align with the assembled edge order directly.
    return VenueGraph(graph=venue_graph, citation_counts=counts)


def venue_popularity(dataset: ScholarlyDataset, observation_year: int,
                     decay: TimeDecay,
                     venue_graph: VenueGraph,
                     graph: Optional[CSRGraph] = None) -> np.ndarray:
    """Decayed count of citations received by each venue's articles.

    Aligned with ``venue_graph.graph`` node indices. Each citation into
    the venue contributes ``decay(T - t(citing))`` — same semantics as
    article popularity, aggregated per cited venue.
    """
    graph, years, venue_of, venue_ids = _article_arrays(dataset, graph)
    if np.any(years > observation_year):
        raise DatasetError("observation_year precedes a publication")
    src_idx, dst_idx, _ = graph.edge_array()
    dst_venue = venue_of[dst_idx]
    keep = dst_venue >= 0
    contributions = np.asarray(
        decay((observation_year - years[src_idx[keep]]).astype(
            np.float64)), dtype=np.float64)
    scores = np.bincount(dst_venue[keep], weights=contributions,
                         minlength=len(venue_ids))
    # venue_graph may index venues identically (both use ascending venue
    # id); realign defensively through the id mapping anyway.
    aligned = np.zeros(venue_graph.graph.num_nodes, dtype=np.float64)
    for position, venue_id in enumerate(venue_ids):
        aligned[venue_graph.venue_index(int(venue_id))] = scores[position]
    return aligned
