"""First-class venue and author rankings.

The paper's model computes venue and author importance on the way to
article scores; downstream users want those rankings directly ("which
venues matter in this corpus", "who are its influential authors").
:class:`EntityRanker` exposes them with the same prestige+popularity
semantics the article ranking uses, as proper result objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, DatasetError
from repro.data.schema import ScholarlyDataset
from repro.core.author_score import author_importance
from repro.core.importance import combine_importance
from repro.core.model import ArticleRanker, RankerConfig
from repro.core.time_weight import exponential_decay
from repro.core.venue_graph import build_venue_graph, venue_popularity
from repro.ranking.pagerank import pagerank


@dataclass(frozen=True)
class EntityRanking:
    """Importance scores of one entity kind (venues or authors).

    ``components`` carries the intermediate vectors the final score was
    blended from, aligned with ``entity_ids`` (venue rankings expose
    ``prestige`` and ``popularity``; author rankings expose
    ``productivity``).
    """

    kind: str
    entity_ids: np.ndarray
    scores: np.ndarray
    components: Dict[str, np.ndarray]

    def by_id(self) -> Dict[int, float]:
        return {int(entity): float(score)
                for entity, score in zip(self.entity_ids, self.scores)}

    def top(self, k: int = 10) -> List[Tuple[int, float]]:
        """Best ``k`` entities, ties broken by ascending id."""
        if k <= 0:
            raise ConfigError("k must be positive")
        order = np.lexsort((self.entity_ids, -self.scores))
        return [(int(self.entity_ids[i]), float(self.scores[i]))
                for i in order[:k]]


class EntityRanker:
    """Ranks venues and authors of a dataset."""

    def __init__(self, config: Optional[RankerConfig] = None) -> None:
        self.config = config or RankerConfig()

    def rank_venues(self, dataset: ScholarlyDataset) -> EntityRanking:
        """Venue importance: TWPR prestige on the aggregated venue graph
        combined with decayed incoming-citation popularity."""
        if dataset.num_venues == 0:
            raise DatasetError("dataset has no venues")
        config = self.config
        _, max_year = dataset.year_range()
        observation = config.observation_year \
            if config.observation_year is not None else max_year

        prestige_kernel = exponential_decay(config.prestige_decay)
        venue_graph = build_venue_graph(dataset, decay=prestige_kernel)
        prestige = pagerank(venue_graph.graph, damping=config.damping,
                            tol=config.tol,
                            max_iter=config.max_iter).scores
        popularity = venue_popularity(
            dataset, observation,
            exponential_decay(config.popularity_decay), venue_graph)
        scores = combine_importance(prestige, popularity,
                                    theta=config.theta,
                                    normalization=config.normalization)
        return EntityRanking(
            kind="venue",
            entity_ids=venue_graph.graph.node_ids.copy(),
            scores=scores,
            components={"prestige": prestige, "popularity": popularity})

    def rank_authors(self, dataset: ScholarlyDataset,
                     article_scores: Optional[Dict[int, float]] = None
                     ) -> EntityRanking:
        """Author importance aggregated from article importance.

        ``article_scores`` may be supplied to reuse an existing article
        ranking; otherwise the full article model runs first.
        """
        if dataset.num_authors == 0:
            raise DatasetError("dataset has no authors")
        if article_scores is None:
            article_scores = ArticleRanker(self.config).rank(
                dataset).by_id()
        author_scores = author_importance(dataset, article_scores,
                                          mode=self.config.author_mode)
        entity_ids = np.asarray(sorted(author_scores), dtype=np.int64)
        scores = np.asarray([author_scores[int(a)] for a in entity_ids])
        productivity = np.zeros(len(entity_ids), dtype=np.float64)
        position_of = {int(a): i for i, a in enumerate(entity_ids)}
        for article in dataset.articles.values():
            for author_id in article.author_ids:
                productivity[position_of[author_id]] += 1.0
        return EntityRanking(
            kind="author", entity_ids=entity_ids, scores=scores,
            components={"productivity": productivity})
