"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Commands:
    generate  — synthesize a scholarly dataset and write it as JSONL.
    rank      — rank a dataset (JSONL/AMiner/MAG) and print the top-k.
    top       — filtered top-k (venue / author / year range).
    venues    — rank the dataset's venues.
    authors   — rank the dataset's authors.
    sample    — carve a sub-corpus (random / snowball / forest-fire).
    stats     — print citation-graph statistics of a dataset.
    evaluate  — rank a *synthetic* dataset and score it against its
                planted ground truth.
    store     — persist a dataset into a SQLite store / list stored ones.
    profile   — rank a dataset with solver telemetry on and print the
                stage/iteration breakdown (optionally save JSON).
    trace     — run a ranking under span tracing and pretty-print the
                span tree with critical-path annotation.
    metrics   — run a ranking with the metrics registry attached and
                export it (Prometheus text exposition or JSON).
    resume    — inspect a live-ranker checkpoint directory (rotation
                health, manifest) and continue the session from the
                newest intact rotation.
    serve-sim — run a simulated serving workload (reader threads vs a
                live update feed, optionally with injected crash/NaN
                faults) and print the health timeline.
    serve-load — drive concurrent readers against the sharded
                scatter-gather gateway under publish churn (optionally
                crash/poisoning one shard) and report sustained QPS,
                p50/p99 latency, and merge parity.
    ingest-sim — run the streaming-ingest chaos harness (journal,
                dedup, backpressure, crash-resume) against a synthetic
                feed and report the delivery-contract verdict;
                ``--partitions K`` runs the partitioned multi-worker
                pipeline with per-partition crash/stall/tear faults.
    ingest-compact — archive (or delete) the sealed, cursor-covered
                segments of an ingest journal directory and report the
                bytes reclaimed.
    watch     — live health/SLO/freshness table from a small inline
                gateway sim, or offline triage of an incident bundle
                (``--bundle``).

``profile`` and ``trace`` also accept ``--bundle PATH`` to render the
metrics / span tree frozen inside an incident bundle instead of running
anything; ``metrics --serve PORT`` exposes the registry over HTTP in
Prometheus text format.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.core.model import ArticleRanker, RankerConfig
from repro.data.aminer import parse_aminer
from repro.data.generator import GeneratorConfig, generate_dataset
from repro.data.ground_truth import build_ground_truth
from repro.data.io import load_dataset_jsonl, save_dataset_jsonl
from repro.data.mag import parse_mag_directory
from repro.data.schema import ScholarlyDataset
from repro.eval.protocol import evaluate_ranking
from repro.graph.stats import compute_stats
from repro.storage.store import DatasetStore


def _load_any(path: str) -> ScholarlyDataset:
    """Load a dataset by sniffing the path type."""
    target = Path(path)
    if target.is_dir():
        return parse_mag_directory(target)
    if target.suffix in (".jsonl", ".gz") or target.name.endswith(
            ".jsonl.gz"):
        return load_dataset_jsonl(target)
    return parse_aminer(target)


def _add_ranker_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--damping", type=float, default=0.85)
    parser.add_argument("--prestige-decay", type=float, default=0.1,
                        help="lambda: TWPR edge time decay per year")
    parser.add_argument("--popularity-decay", type=float, default=0.4,
                        help="sigma: popularity decay per year")
    parser.add_argument("--theta", type=float, default=0.5,
                        help="prestige weight inside importance")
    parser.add_argument("--weights", type=str, default="0.6,0.25,0.15",
                        help="article,venue,author blend weights")


def _ranker_from_args(args: argparse.Namespace) -> ArticleRanker:
    try:
        w_article, w_venue, w_author = (float(part) for part
                                        in args.weights.split(","))
    except ValueError:
        raise ReproError(
            f"--weights must be three comma-separated floats, "
            f"got {args.weights!r}") from None
    config = RankerConfig(
        damping=args.damping, prestige_decay=args.prestige_decay,
        popularity_decay=args.popularity_decay, theta=args.theta,
        weight_article=w_article, weight_venue=w_venue,
        weight_author=w_author)
    return ArticleRanker(config)


def _command_generate(args: argparse.Namespace) -> int:
    config = GeneratorConfig(
        num_articles=args.articles, num_venues=args.venues,
        num_authors=args.authors, start_year=args.start_year,
        end_year=args.end_year, seed=args.seed)
    dataset = generate_dataset(config)
    save_dataset_jsonl(dataset, args.output)
    print(f"wrote {dataset.num_articles} articles, "
          f"{dataset.num_citations} citations to {args.output}")
    return 0


def _command_rank(args: argparse.Namespace) -> int:
    dataset = _load_any(args.dataset)
    result = _ranker_from_args(args).rank(dataset)
    print(f"# top {args.top} of {dataset.num_articles} articles "
          f"({dataset.name})")
    for rank, (article_id, score) in enumerate(result.top(args.top),
                                               start=1):
        title = dataset.articles[article_id].title[:60]
        year = dataset.articles[article_id].year
        print(f"{rank:4d}  {score:.6f}  [{year}] {title}")
    return 0


def _command_top(args: argparse.Namespace) -> int:
    from repro.query import RankIndex

    dataset = _load_any(args.dataset)
    result = _ranker_from_args(args).rank(dataset)
    index = RankIndex(dataset, result.by_id())
    year_range = None
    if args.years:
        try:
            low, high = (int(part) for part in args.years.split("-"))
        except ValueError:
            raise ReproError(
                f"--years must look like 2005-2010, got {args.years!r}"
            ) from None
        year_range = (low, high)
    entries = index.top(args.top, venue_id=args.venue,
                        author_id=args.author, year_range=year_range)
    if not entries:
        print("(no articles match the filters)")
        return 0
    for entry in entries:
        print(f"{entry.rank:4d}  {entry.score:.6f}  [{entry.year}] "
              f"{entry.title[:60]}")
    return 0


def _command_venues(args: argparse.Namespace) -> int:
    from repro.core.entity_rank import EntityRanker

    dataset = _load_any(args.dataset)
    ranking = EntityRanker(_ranker_from_args(args).config).rank_venues(
        dataset)
    for position, (venue_id, score) in enumerate(
            ranking.top(args.top), start=1):
        print(f"{position:4d}  {score:.6f}  "
              f"{dataset.venues[venue_id].name}")
    return 0


def _command_authors(args: argparse.Namespace) -> int:
    from repro.core.entity_rank import EntityRanker

    dataset = _load_any(args.dataset)
    ranking = EntityRanker(_ranker_from_args(args).config).rank_authors(
        dataset)
    for position, (author_id, score) in enumerate(
            ranking.top(args.top), start=1):
        print(f"{position:4d}  {score:.6f}  "
              f"{dataset.authors[author_id].name}")
    return 0


def _command_sample(args: argparse.Namespace) -> int:
    from repro.data.sampling import (
        forest_fire_sample,
        random_article_sample,
        snowball_sample,
    )

    samplers = {"random": random_article_sample,
                "snowball": snowball_sample,
                "forest-fire": forest_fire_sample}
    dataset = _load_any(args.dataset)
    sample = samplers[args.method](dataset, args.size, seed=args.seed)
    save_dataset_jsonl(sample, args.output)
    print(f"wrote {sample.num_articles} articles "
          f"({sample.num_citations} citations) to {args.output}")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    dataset = _load_any(args.dataset)
    graph = dataset.citation_csr()
    stats = compute_stats(graph, dataset.article_years(graph))
    print(f"# {dataset.name}")
    for key, value in stats.as_row().items():
        print(f"{key:>12}: {value}")
    print(f"{'venues':>12}: {dataset.num_venues}")
    print(f"{'authors':>12}: {dataset.num_authors}")
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    dataset = _load_any(args.dataset)
    truth = build_ground_truth(dataset, num_pairs=args.pairs,
                               seed=args.seed)
    result = _ranker_from_args(args).rank(dataset)
    report = evaluate_ranking(result.by_id(), truth)
    for key, value in report.as_row().items():
        print(f"{key:>12}: {value}")
    return 0


def _shm_mode(value: str):
    """CLI spelling -> engine flag (`on`/`off`/`auto`)."""
    return {"on": True, "off": False, "auto": "auto"}[value]


def _parallel_engine_from_args(args: argparse.Namespace, dataset,
                               fault_plan=None):
    from repro.engine.parallel import ParallelBlockEngine
    from repro.graph.partition import range_partition
    from repro.resilience import RetryPolicy

    graph = dataset.citation_csr()
    return ParallelBlockEngine(
        graph, range_partition(graph, args.blocks),
        num_workers=args.workers, fault_plan=fault_plan,
        retry_policy=RetryPolicy(max_retries=2, base_delay=0.0),
        shared_memory=_shm_mode(args.shared_memory))


def _profile_parallel(args: argparse.Namespace, dataset) -> int:
    from repro.obs import RunReport, SolverTelemetry

    telemetry = SolverTelemetry()
    engine = _parallel_engine_from_args(args, dataset)
    start = time.perf_counter()
    result = engine.run(telemetry=telemetry)
    seconds = time.perf_counter() - start
    plane = "shared-memory" if engine.last_used_shared_memory \
        else "pickle"
    print(f"# profile: {dataset.name} ({dataset.num_articles} articles, "
          f"{dataset.num_citations} citations), engine=parallel "
          f"({plane}, {args.workers} workers, {args.blocks} blocks)")
    print(f"supersteps: {result.supersteps}, "
          f"converged={result.converged}, {seconds:.3f}s")
    print(f"bytes shipped over IPC: {telemetry.bytes_shipped}")
    for counter, value in sorted(telemetry.counters.items()):
        print(f"{counter}: {value:g}")

    if args.json:
        report = RunReport(f"profile-{dataset.name}",
                           telemetry=telemetry)
        report.record_metric("engine", "parallel")
        report.record_metric("shared_memory",
                             engine.last_used_shared_memory)
        report.record_metric("workers", args.workers)
        report.record_metric("blocks", args.blocks)
        report.record_metric("supersteps", result.supersteps)
        report.record_metric("bytes_shipped", telemetry.bytes_shipped)
        report.record_metric("run_seconds", seconds)
        print(f"wrote {report.save(args.json)}")
    return 0


def _load_bundle(path: str):
    from repro.obs import IncidentBundle

    try:
        return IncidentBundle.load(path)
    except (OSError, ValueError) as exc:
        raise ReproError(
            f"cannot load incident bundle {path}: {exc}") from exc


def _statuses_from_dicts(payloads):
    """Rebuild ``SLOStatus`` objects from their bundle ``as_dict`` form."""
    from repro.obs import SLOStatus

    statuses = []
    for payload in payloads:
        statuses.append(SLOStatus(
            name=str(payload.get("name", "?")),
            kind=str(payload.get("kind", "?")),
            objective=float(payload.get("objective", 0.0)),
            breaching=bool(payload.get("breaching", False)),
            burn_rates={float(window): float(rate) for window, rate
                        in (payload.get("burn_rates") or {}).items()},
            events=int(payload.get("events", 0)),
            value=float(payload.get("value", 0.0)),
            detail=str(payload.get("detail", ""))))
    return statuses


def _freshness_line(snapshot) -> str:
    """One-line arrival→served summary from a registry snapshot."""
    from repro.obs.metrics import FRESHNESS_METRIC

    instrument = snapshot.get(FRESHNESS_METRIC)
    if not instrument:
        return ""
    parts = []
    for entry in instrument.get("values", []):
        stage = entry.get("labels", {}).get("stage", "?")
        count = entry.get("count", 0)
        mean = entry.get("sum", 0.0) / count if count else 0.0
        parts.append(f"{stage}: n={count} mean={mean * 1e3:.2f}ms")
    return "freshness: " + "  ".join(sorted(parts)) if parts else ""


def _render_bundle_profile(path: str) -> int:
    from repro.obs import render_slo_table

    bundle = _load_bundle(path)
    print(bundle.render())
    if bundle.slo:
        print()
        print(render_slo_table(_statuses_from_dicts(bundle.slo)))
    if bundle.metrics:
        print(f"\n# metrics ({len(bundle.metrics)} instruments)")
        for name in sorted(bundle.metrics):
            snap = bundle.metrics[name]
            kind = snap.get("kind")
            if kind == "histogram":
                total = sum(v.get("count", 0)
                            for v in snap.get("values", []))
                total_sum = sum(v.get("sum", 0.0)
                                for v in snap.get("values", []))
                mean = total_sum / total if total else 0.0
                print(f"{name}: histogram count={total} "
                      f"mean={mean:.6g}")
            else:
                total = sum(v.get("value", 0.0)
                            for v in snap.get("values", []))
                print(f"{name}: {kind} {total:g}")
        line = _freshness_line(bundle.metrics)
        if line:
            print(line)
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    from repro.obs import RunReport, SolverTelemetry, StageTimings

    if args.bundle:
        return _render_bundle_profile(args.bundle)
    if not args.dataset:
        raise ReproError("profile needs a dataset (or --bundle PATH)")
    dataset = _load_any(args.dataset)
    if args.engine == "parallel":
        return _profile_parallel(args, dataset)
    ranker = _ranker_from_args(args).with_config(solver=args.method)
    telemetry = SolverTelemetry()
    try:
        result = ranker.rank(dataset, telemetry=telemetry)
    except Exception as exc:
        # The report is the profiling artifact: a failed run still
        # leaves one behind (status "failed") so automation can see
        # what was measured before the failure.
        if args.json:
            report = RunReport(f"profile-{dataset.name}",
                               telemetry=telemetry)
            report.record_metric("status", "failed")
            report.record_metric("error",
                                 f"{type(exc).__name__}: {exc}")
            print(f"wrote {report.save(args.json)} (run failed)",
                  file=sys.stderr)
        raise

    timings = StageTimings()
    for stage, seconds in result.diagnostics.get("timings", {}).items():
        timings.add(stage, seconds)
    method = result.diagnostics.get("twpr_method", args.method)
    print(f"# profile: {dataset.name} ({dataset.num_articles} articles, "
          f"{dataset.num_citations} citations), solver={method}")
    print(timings.render("stage breakdown"))

    iterations = telemetry.iterations
    converged = result.diagnostics.get("twpr_converged")
    print(f"\ntwpr: {iterations} iteration(s), converged={converged}")
    residuals = telemetry.residuals
    if residuals:
        shown = residuals if len(residuals) <= 8 \
            else residuals[:4] + residuals[-3:]
        trajectory = "  ".join(f"{r:.3e}" for r in shown)
        if len(residuals) > 8:
            trajectory = trajectory.replace(
                f"{residuals[3]:.3e}  ", f"{residuals[3]:.3e}  ...  ", 1)
        print(f"residual trajectory: {trajectory}")
    for counter, value in sorted(telemetry.counters.items()):
        print(f"{counter}: {value:g}")

    if args.json:
        report = RunReport(f"profile-{dataset.name}", timings=timings,
                           telemetry=telemetry)
        report.record_metric("num_articles", dataset.num_articles)
        report.record_metric("num_citations", dataset.num_citations)
        report.record_metric("solver", method)
        report.record_metric("twpr_iterations", iterations)
        print(f"wrote {report.save(args.json)}")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    from repro.obs import Observability, render_trace

    if args.bundle:
        bundle = _load_bundle(args.bundle)
        print(render_trace(
            bundle.spans, title=f"incident: {bundle.trigger}"))
        return 0
    if not args.dataset:
        raise ReproError("trace needs a dataset (or --bundle PATH)")
    dataset = _load_any(args.dataset)
    with Observability(f"trace-{dataset.name}") as obs:
        if args.engine == "model":
            _ranker_from_args(args).rank(dataset, obs=obs)
        else:
            from repro.resilience import FaultPlan

            fault_plan = None
            if args.crash:
                try:
                    worker, superstep = (int(part) for part
                                         in args.crash.split(":"))
                except ValueError:
                    raise ReproError(
                        f"--crash must look like WORKER:SUPERSTEP, "
                        f"got {args.crash!r}") from None
                fault_plan = FaultPlan().crash_worker(worker, superstep)
            engine = _parallel_engine_from_args(args, dataset,
                                                fault_plan=fault_plan)
            engine.run(obs=obs)
        print(render_trace(obs.tracer.export(),
                           title=f"trace: {dataset.name}"))
        if args.json:
            report = obs.report(f"trace-{dataset.name}")
            print(f"wrote {report.save(args.json)}")
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    from repro.obs import Observability

    dataset = _load_any(args.dataset)
    with Observability(f"metrics-{dataset.name}") as obs:
        _ranker_from_args(args).rank(dataset, obs=obs)
        text = obs.metrics.to_prometheus() if args.format == "prom" \
            else obs.metrics.to_json() + "\n"
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    if args.serve is not None:
        from repro.obs import MetricsServer

        server = MetricsServer(obs.metrics, port=args.serve)
        print(f"serving {server.url} (Ctrl-C to stop)",
              file=sys.stderr)
        server.serve_forever()
    return 0


def _synthetic_batch(dataset: ScholarlyDataset, size: int,
                     rng) -> "UpdateBatch":
    """A plausible arrival batch: fresh ids citing existing articles."""
    from repro.data.schema import Article
    from repro.engine.updates import UpdateBatch

    existing = sorted(dataset.articles)
    next_id = existing[-1] + 1
    _, max_year = dataset.year_range()
    articles = tuple(
        Article(id=next_id + offset,
                title=f"synthetic-arrival-{next_id + offset}",
                year=max_year, venue_id=None, author_ids=(),
                references=tuple(rng.sample(existing,
                                            min(3, len(existing)))))
        for offset in range(size))
    return UpdateBatch(articles=articles)


def _command_resume(args: argparse.Namespace) -> int:
    import json as json_module
    import random

    from repro.engine.live import LiveRanker, checkpoint_rotations
    from repro.engine.state import verify_checkpoint

    root = Path(args.checkpoint)
    rotations = checkpoint_rotations(root)
    if not rotations:
        raise ReproError(f"no checkpoint rotations under {root}")
    print(f"# checkpoint health: {root}")
    for rotation in rotations:
        problems = verify_checkpoint(rotation)
        print(f"{rotation.name}: "
              + ("ok" if not problems else f"CORRUPT — {problems[0]}"))

    live = LiveRanker.resume(root)
    used = root / f"ckpt-{live.batches_applied:08d}"
    manifest_path = used / "MANIFEST.json"
    if manifest_path.exists():
        manifest = json_module.loads(
            manifest_path.read_text(encoding="utf-8"))
        for name, entry in sorted(manifest.get("files", {}).items()):
            print(f"  {used.name}/{name}: {entry['bytes']} bytes, "
                  f"sha256 {entry['sha256'][:12]}…")
    dataset = live.dataset
    print(f"resumed from {used.name}: {dataset.num_articles} articles, "
          f"{dataset.num_citations} citations, "
          f"batch count {live.batches_applied}")

    if args.batches:
        rng = random.Random(args.seed)
        for _ in range(args.batches):
            _, report = live.apply(
                _synthetic_batch(live.dataset, args.batch_size, rng))
            print(f"applied batch {live.batches_applied}: affected "
                  f"{report.affected.fraction:.1%} of "
                  f"{report.num_nodes} nodes in "
                  f"{report.iterations} iteration(s)")

    dataset = live.dataset
    print(f"# top {args.top} of {dataset.num_articles} articles")
    for rank, (article_id, score) in enumerate(live.result.top(args.top),
                                               start=1):
        article = dataset.articles[article_id]
        print(f"{rank:4d}  {score:.6f}  [{article.year}] "
              f"{article.title[:60]}")
    return 0


def _command_serve_sim(args: argparse.Namespace) -> int:
    from repro.serve import run_simulation

    dataset = _load_any(args.dataset)
    sim = run_simulation(
        dataset, batches=args.batches, batch_size=args.batch_size,
        readers=args.readers, top=args.top,
        crash_batch=args.crash_batch, poison_batch=args.poison_batch,
        seed=args.seed)
    print(f"# serve-sim: {dataset.name} ({dataset.num_articles} "
          f"articles), {args.batches} batch(es) x {args.batch_size}, "
          f"{args.readers} reader(s)")
    print(sim.render())
    # The artifact is written even for degraded/failed runs — a missing
    # timeline in CI must mean the command never ran, not that the
    # simulated pipeline tripped.
    if args.json:
        Path(args.json).write_text(sim.to_json() + "\n",
                                   encoding="utf-8")
        print(f"wrote {args.json}")
    if sim.status == "failed":
        print(f"error: serve-sim run failed: {sim.error}",
              file=sys.stderr)
        return 1
    return 0


def _command_serve_load(args: argparse.Namespace) -> int:
    from repro.serve import run_load

    dataset = _load_any(args.dataset)
    report = run_load(
        dataset, num_shards=args.shards, mode=args.mode,
        batches=args.batches, batch_size=args.batch_size,
        readers=args.readers, queries=args.queries, top=args.top,
        crash_shard=args.crash_shard, poison_shard=args.poison_shard,
        fault_epoch=args.fault_epoch, seed=args.seed,
        bundle_dir=Path(args.bundle_dir) if args.bundle_dir else None)
    print(report.render())
    if args.json:
        Path(args.json).write_text(report.to_json() + "\n",
                                   encoding="utf-8")
        print(f"wrote {args.json}")
    if args.report:
        report.to_report().save(args.report)
        print(f"wrote {args.report}")
    if report.status == "failed":
        print(f"error: serve-load run failed: {report.error}",
              file=sys.stderr)
        return 1
    return 0


def _command_ingest_sim(args: argparse.Namespace) -> int:
    from repro.ingest import run_ingest_sim

    dataset = _load_any(args.dataset) if args.dataset else None
    sim = run_ingest_sim(
        dataset, records=args.records, seed=args.seed,
        duplicate_every=args.duplicate_every,
        mangle_every=args.mangle_every, cite_every=args.cite_every,
        stall_record=args.stall_record, fail_record=args.fail_record,
        flaky_record=args.flaky_record,
        poison_record=args.poison_record, crash_batch=args.crash_batch,
        truncate_journal=args.truncate_journal,
        min_batch=args.min_batch, max_batch=args.max_batch,
        max_queue=args.max_queue,
        checkpoint_batches=args.checkpoint_batches,
        partitions=args.partitions,
        crash_partitions=args.crash_partition,
        tear_partitions=args.tear_partition,
        stall_partitions=args.stall_partition,
        segment_records=args.segment_records,
        compaction=None if args.compaction == "off"
        else args.compaction,
        bundle_dir=Path(args.bundle_dir) if args.bundle_dir else None)
    print(sim.render())
    # Written even for failed/violated runs: a missing artifact in CI
    # must mean the command never ran, not that the contract broke.
    if args.json:
        Path(args.json).write_text(sim.to_json() + "\n",
                                   encoding="utf-8")
        print(f"wrote {args.json}")
    if args.report:
        sim.to_report().save(args.report)
        print(f"wrote {args.report}")
    if sim.status == "failed":
        print(f"error: ingest-sim run failed: {sim.error}",
              file=sys.stderr)
        return 1
    if not sim.contract_held:
        print("error: ingest delivery contract violated "
              "(loss, duplicate application, or ranking divergence)",
              file=sys.stderr)
        return 1
    return 0


def _partition_seq(value: str) -> tuple:
    """Parse a ``PARTITION:SEQ`` CLI operand into an int pair."""
    try:
        partition, _, seq = value.partition(":")
        return (int(partition), int(seq))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected PARTITION:SEQ (two integers), got {value!r}")


def _command_ingest_compact(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.ingest import IngestJournal

    journal_dir = Path(args.journal)
    if not journal_dir.is_dir():
        # Opening would create an empty journal in place — an operator
        # pointing compaction at the wrong path must hear about it.
        print(f"error: no journal at {journal_dir}", file=sys.stderr)
        return 1
    with IngestJournal(journal_dir) as journal:
        report = journal.compact(retention=args.retention)
    print(report.render())
    if args.json:
        Path(args.json).write_text(
            json_module.dumps(report.as_metrics(), indent=2) + "\n",
            encoding="utf-8")
        print(f"wrote {args.json}")
    return 0


def _command_watch(args: argparse.Namespace) -> int:
    from repro.obs import (FlightRecorder, Observability, SLOMonitor,
                           render_slo_table)

    if args.bundle:
        # Offline triage: everything comes from the frozen bundle.
        bundle = _load_bundle(args.bundle)
        print(bundle.render())
        if bundle.slo:
            print()
            print(render_slo_table(_statuses_from_dicts(bundle.slo)))
        line = _freshness_line(bundle.metrics)
        if line:
            print(line)
        return 0

    if not args.dataset:
        raise ReproError("watch needs a dataset (or --bundle PATH)")

    import random
    from dataclasses import replace as dc_replace

    from repro.engine.live import LiveRanker
    from repro.engine.updates import BatchProvenance
    from repro.serve import ShardedGateway

    dataset = _load_any(args.dataset)
    recorder = FlightRecorder(bundle_dir=args.bundle_dir)
    obs = Observability(f"watch-{dataset.name}", recorder=recorder)
    live = LiveRanker(dataset, obs=obs)
    rng = random.Random(args.seed)
    iterations = 1 if args.once else args.iterations
    with ShardedGateway(live, args.shards, mode="inline",
                        obs=obs) as gateway:
        monitor = SLOMonitor(obs.metrics, recorder=recorder)
        for tick in range(iterations):
            batch = _synthetic_batch(live.dataset, args.batch_size, rng)
            now = time.time()
            batch = dc_replace(batch, provenance=BatchProvenance(
                arrivals=(now,) * batch.num_articles))
            gateway.ingest(batch)
            for _ in range(args.queries):
                gateway.top_sync(args.top)
            health = gateway.health()
            recorder.record_health(health)
            statuses = monitor.tick()
            print(f"# watch tick {tick + 1}/{iterations}: "
                  f"status={health['status']} "
                  f"board_epoch={health['board_epoch']} "
                  f"degraded={list(health['degraded_shards'])}")
            print(render_slo_table(statuses))
            line = _freshness_line(obs.metrics.snapshot())
            if line:
                print(line)
            if tick + 1 < iterations and args.interval > 0:
                time.sleep(args.interval)
    for path in recorder.saved_paths:
        print(f"wrote {path}")
    return 0


def _command_store(args: argparse.Namespace) -> int:
    with DatasetStore(args.db) as store:
        if args.dataset is None:
            names = store.list_datasets()
            if not names:
                print("(store is empty)")
            for name in names:
                print(name)
            return 0
        dataset = _load_any(args.dataset)
        store.save_dataset(dataset, overwrite=args.overwrite)
        print(f"stored {dataset.name!r} "
              f"({dataset.num_articles} articles) in {args.db}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query-independent scholarly article ranking")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="synthesize a dataset to JSONL")
    generate.add_argument("output")
    generate.add_argument("--articles", type=int, default=10_000)
    generate.add_argument("--venues", type=int, default=50)
    generate.add_argument("--authors", type=int, default=3_000)
    generate.add_argument("--start-year", type=int, default=1990)
    generate.add_argument("--end-year", type=int, default=2015)
    generate.add_argument("--seed", type=int, default=7)
    generate.set_defaults(handler=_command_generate)

    rank = commands.add_parser(
        "rank", help="rank a dataset (JSONL / AMiner / MAG dir)")
    rank.add_argument("dataset")
    rank.add_argument("--top", type=int, default=20)
    _add_ranker_arguments(rank)
    rank.set_defaults(handler=_command_rank)

    top = commands.add_parser(
        "top", help="filtered top-k over the ranking")
    top.add_argument("dataset")
    top.add_argument("--top", type=int, default=10)
    top.add_argument("--venue", type=int, default=None,
                     help="restrict to one venue id")
    top.add_argument("--author", type=int, default=None,
                     help="restrict to one author id")
    top.add_argument("--years", type=str, default=None,
                     help="publication-year range, e.g. 2005-2010")
    _add_ranker_arguments(top)
    top.set_defaults(handler=_command_top)

    venues = commands.add_parser("venues", help="rank venues")
    venues.add_argument("dataset")
    venues.add_argument("--top", type=int, default=15)
    _add_ranker_arguments(venues)
    venues.set_defaults(handler=_command_venues)

    authors = commands.add_parser("authors", help="rank authors")
    authors.add_argument("dataset")
    authors.add_argument("--top", type=int, default=15)
    _add_ranker_arguments(authors)
    authors.set_defaults(handler=_command_authors)

    sample = commands.add_parser(
        "sample", help="carve a sub-corpus out of a dataset")
    sample.add_argument("dataset")
    sample.add_argument("output")
    sample.add_argument("--method", default="forest-fire",
                        choices=["random", "snowball", "forest-fire"])
    sample.add_argument("--size", type=int, required=True)
    sample.add_argument("--seed", type=int, default=0)
    sample.set_defaults(handler=_command_sample)

    stats = commands.add_parser("stats", help="citation-graph statistics")
    stats.add_argument("dataset")
    stats.set_defaults(handler=_command_stats)

    evaluate = commands.add_parser(
        "evaluate", help="score a synthetic dataset against ground truth")
    evaluate.add_argument("dataset")
    evaluate.add_argument("--pairs", type=int, default=2_000)
    evaluate.add_argument("--seed", type=int, default=0)
    _add_ranker_arguments(evaluate)
    evaluate.set_defaults(handler=_command_evaluate)

    profile = commands.add_parser(
        "profile", help="rank with telemetry on; print the stage and "
                        "iteration breakdown")
    profile.add_argument("dataset", nargs="?", default=None)
    profile.add_argument("--bundle", type=str, default=None,
                         help="render the metrics frozen in an incident "
                              "bundle instead of running a ranking")
    profile.add_argument("--method", default="auto",
                         choices=["auto", "power", "gauss_seidel",
                                  "levels"],
                         help="TWPR solver to profile")
    profile.add_argument("--engine", default="model",
                         choices=["model", "parallel"],
                         help="what to profile: the full ranking model "
                              "or the parallel block engine")
    profile.add_argument("--workers", type=int, default=2,
                         help="parallel engine worker count")
    profile.add_argument("--blocks", type=int, default=4,
                         help="parallel engine partition block count")
    profile.add_argument("--shared-memory", default="auto",
                         choices=["auto", "on", "off"],
                         help="parallel engine IPC data plane: "
                              "zero-copy shared memory, pickle, or "
                              "auto-detect")
    profile.add_argument("--json", type=str, default=None,
                         help="also save the report as JSON to this path")
    _add_ranker_arguments(profile)
    profile.set_defaults(handler=_command_profile)

    trace = commands.add_parser(
        "trace", help="run a ranking under span tracing and print the "
                      "span tree (critical path starred)")
    trace.add_argument("dataset", nargs="?", default=None)
    trace.add_argument("--bundle", type=str, default=None,
                       help="render the span tree frozen in an incident "
                            "bundle instead of running a ranking")
    trace.add_argument("--engine", default="model",
                       choices=["model", "parallel"],
                       help="what to trace: the full ranking model or "
                            "the parallel block engine")
    trace.add_argument("--workers", type=int, default=2,
                       help="parallel engine worker count")
    trace.add_argument("--blocks", type=int, default=4,
                       help="parallel engine partition block count")
    trace.add_argument("--shared-memory", default="auto",
                       choices=["auto", "on", "off"],
                       help="parallel engine IPC data plane: zero-copy "
                            "shared memory, pickle, or auto-detect")
    trace.add_argument("--crash", type=str, default=None,
                       help="inject one worker crash, WORKER:SUPERSTEP "
                            "(parallel engine only)")
    trace.add_argument("--json", type=str, default=None,
                       help="also save the RunReport (spans + metrics) "
                            "to this path")
    _add_ranker_arguments(trace)
    trace.set_defaults(handler=_command_trace)

    metrics = commands.add_parser(
        "metrics", help="run a ranking with the metrics registry on "
                        "and export it")
    metrics.add_argument("dataset")
    metrics.add_argument("--format", default="prom",
                         choices=["prom", "json"],
                         help="Prometheus text exposition or JSON")
    metrics.add_argument("--output", type=str, default=None,
                         help="write to this path instead of stdout")
    metrics.add_argument("--serve", type=int, default=None,
                         metavar="PORT",
                         help="after the run, serve the registry over "
                              "HTTP in Prometheus text format "
                              "(0 = ephemeral port)")
    _add_ranker_arguments(metrics)
    metrics.set_defaults(handler=_command_metrics)

    watch = commands.add_parser(
        "watch", help="live health/SLO/freshness table from a small "
                      "inline gateway sim, or offline triage of an "
                      "incident bundle")
    watch.add_argument("dataset", nargs="?", default=None,
                       help="base corpus for the live sim")
    watch.add_argument("--bundle", type=str, default=None,
                       help="render a saved incident bundle instead of "
                            "running anything")
    watch.add_argument("--once", action="store_true",
                       help="exactly one tick (CI smoke)")
    watch.add_argument("--iterations", type=int, default=5,
                       help="ticks to run (ignored with --once)")
    watch.add_argument("--interval", type=float, default=0.0,
                       help="seconds to sleep between ticks")
    watch.add_argument("--shards", type=int, default=2)
    watch.add_argument("--batch-size", type=int, default=12,
                       help="synthetic arrival batch size per tick")
    watch.add_argument("--queries", type=int, default=10,
                       help="reads issued per tick")
    watch.add_argument("--top", type=int, default=10)
    watch.add_argument("--seed", type=int, default=0)
    watch.add_argument("--bundle-dir", type=str, default=None,
                       help="auto-save incident bundles here")
    watch.set_defaults(handler=_command_watch)

    store = commands.add_parser(
        "store", help="persist datasets in a SQLite store")
    store.add_argument("db")
    store.add_argument("dataset", nargs="?")
    store.add_argument("--overwrite", action="store_true")
    store.set_defaults(handler=_command_store)

    resume = commands.add_parser(
        "resume", help="report a live checkpoint's health and continue "
                       "ranking from its newest intact rotation")
    resume.add_argument("checkpoint",
                        help="LiveRanker checkpoint rotation directory")
    resume.add_argument("--top", type=int, default=10)
    resume.add_argument("--batches", type=int, default=0,
                        help="apply N synthetic arrival batches after "
                             "resuming (continues auto-checkpointing)")
    resume.add_argument("--batch-size", type=int, default=20)
    resume.add_argument("--seed", type=int, default=0)
    resume.set_defaults(handler=_command_resume)

    serve_sim = commands.add_parser(
        "serve-sim", help="simulated serving workload with optional "
                          "injected update-path faults; prints the "
                          "health timeline")
    serve_sim.add_argument("dataset")
    serve_sim.add_argument("--batches", type=int, default=6,
                           help="synthetic arrival batches to feed")
    serve_sim.add_argument("--batch-size", type=int, default=20)
    serve_sim.add_argument("--readers", type=int, default=2,
                           help="concurrent reader threads")
    serve_sim.add_argument("--top", type=int, default=10,
                           help="k each reader requests")
    serve_sim.add_argument("--crash-batch", type=int, default=None,
                           help="inject one update-path crash at this "
                                "0-based batch index")
    serve_sim.add_argument("--poison-batch", type=int, default=None,
                           help="poison this 0-based batch's candidate "
                                "ranking with NaNs (guardrail veto)")
    serve_sim.add_argument("--seed", type=int, default=0)
    serve_sim.add_argument("--json", type=str, default=None,
                           help="also save the timeline as JSON to "
                                "this path")
    serve_sim.set_defaults(handler=_command_serve_sim)

    serve_load = commands.add_parser(
        "serve-load", help="sustained-QPS load harness against the "
                           "sharded scatter-gather gateway, with "
                           "optional one-shard crash/poison faults")
    serve_load.add_argument("dataset")
    serve_load.add_argument("--shards", type=int, default=2,
                            help="partitions of the article id space")
    serve_load.add_argument("--mode", choices=("inline", "process"),
                            default="inline",
                            help="shard deployment: same-process or "
                                 "one worker process per shard")
    serve_load.add_argument("--batches", type=int, default=4,
                            help="synthetic arrival batches to feed "
                                 "(each one is a full publish + shard "
                                 "refresh)")
    serve_load.add_argument("--batch-size", type=int, default=16)
    serve_load.add_argument("--readers", type=int, default=4,
                            help="concurrent reader threads")
    serve_load.add_argument("--queries", type=int, default=50,
                            help="queries each reader issues")
    serve_load.add_argument("--top", type=int, default=10,
                            help="k each reader requests")
    serve_load.add_argument("--crash-shard", type=int, default=None,
                            help="crash this shard while it refreshes "
                                 "at --fault-epoch")
    serve_load.add_argument("--poison-shard", type=int, default=None,
                            help="NaN-poison this shard's score slice "
                                 "at --fault-epoch (guardrail veto)")
    serve_load.add_argument("--fault-epoch", type=int, default=1,
                            help="board epoch the shard fault fires at")
    serve_load.add_argument("--seed", type=int, default=0)
    serve_load.add_argument("--bundle-dir", type=str, default=None,
                            help="write incident bundles (SLO breach "
                                 "during an injected fault) here")
    serve_load.add_argument("--json", type=str, default=None,
                            help="also save the full report as JSON")
    serve_load.add_argument("--report", type=str, default=None,
                            help="write a RunReport for "
                                 "benchmarks/compare.py gating")
    serve_load.set_defaults(handler=_command_serve_load)

    ingest_sim = commands.add_parser(
        "ingest-sim", help="streaming-ingest chaos harness: journal, "
                           "dedup, backpressure, crash-resume; "
                           "verifies the delivery contract")
    ingest_sim.add_argument("dataset", nargs="?", default=None,
                            help="base corpus (default: a small "
                                 "generated one)")
    ingest_sim.add_argument("--records", type=int, default=80,
                            help="feed records to stream")
    ingest_sim.add_argument("--seed", type=int, default=0)
    ingest_sim.add_argument("--duplicate-every", type=int, default=0,
                            help="every n-th record re-delivers an "
                                 "earlier one (duplicate storm)")
    ingest_sim.add_argument("--mangle-every", type=int, default=0,
                            help="every n-th record is structurally "
                                 "broken (quarantine path)")
    ingest_sim.add_argument("--cite-every", type=int, default=0,
                            help="every n-th record is a late "
                                 "citation between existing articles")
    ingest_sim.add_argument("--stall-record", type=int, default=None,
                            help="stall the source before this record")
    ingest_sim.add_argument("--fail-record", type=int, default=None,
                            help="one transient source error at this "
                                 "record (retry must absorb it)")
    ingest_sim.add_argument("--flaky-record", type=int, default=None,
                            help="parser crashes once on this record "
                                 "(retry must absorb it)")
    ingest_sim.add_argument("--poison-record", type=int, default=None,
                            help="parser crashes on every attempt at "
                                 "this record (must be quarantined)")
    ingest_sim.add_argument("--crash-batch", type=int, default=None,
                            help="hard-kill the worker applying this "
                                 "batch ordinal, then resume from the "
                                 "journal")
    ingest_sim.add_argument("--truncate-journal", action="store_true",
                            help="tear the journal's active tail "
                                 "before the resume")
    ingest_sim.add_argument("--min-batch", type=int, default=8)
    ingest_sim.add_argument("--max-batch", type=int, default=32)
    ingest_sim.add_argument("--max-queue", type=int, default=48,
                            help="coalescer queue bound (backpressure "
                                 "kicks in at 75%% of this)")
    ingest_sim.add_argument("--checkpoint-batches", type=int,
                            default=1,
                            help="checkpoint + cursor commit cadence, "
                                 "in applied batches")
    ingest_sim.add_argument("--partitions", type=int, default=1,
                            help="run K partitioned ingest workers "
                                 "with crash-isolated journals "
                                 "(default: the single-worker "
                                 "pipeline)")
    ingest_sim.add_argument("--crash-partition", metavar="P:SEQ",
                            type=_partition_seq, action="append",
                            default=None,
                            help="kill partition P's worker after it "
                                 "journals arrival SEQ (repeatable; "
                                 "same SEQ twice = simultaneous "
                                 "deaths)")
    ingest_sim.add_argument("--tear-partition", metavar="P",
                            type=int, action="append", default=None,
                            help="tear partition P's active segment "
                                 "tail at its next crash "
                                 "(repeatable)")
    ingest_sim.add_argument("--stall-partition", metavar="P:SEQ",
                            type=_partition_seq, action="append",
                            default=None,
                            help="stall partition P's worker before "
                                 "it journals arrival SEQ "
                                 "(repeatable)")
    ingest_sim.add_argument("--segment-records", type=int,
                            default=1024,
                            help="journal segment size in records "
                                 "(small values make archival "
                                 "observable in short runs)")
    ingest_sim.add_argument("--compaction",
                            choices=("off", "archive", "delete"),
                            default="off",
                            help="reclaim sealed cursor-covered "
                                 "journal segments after each commit")
    ingest_sim.add_argument("--bundle-dir", type=str, default=None,
                            help="write incident bundles (worker "
                                 "crash capture) here")
    ingest_sim.add_argument("--json", type=str, default=None,
                            help="also save the verdict as JSON")
    ingest_sim.add_argument("--report", type=str, default=None,
                            help="write a RunReport for "
                                 "benchmarks/compare.py gating")
    ingest_sim.set_defaults(handler=_command_ingest_sim)

    ingest_compact = commands.add_parser(
        "ingest-compact", help="archive or delete the sealed, cursor-"
                               "covered segments of an ingest journal")
    ingest_compact.add_argument("journal",
                                help="journal directory (for a "
                                     "partitioned root, run once per "
                                     "partition-NNNN directory)")
    ingest_compact.add_argument("--retention",
                                choices=("archive", "delete"),
                                default="archive",
                                help="move covered segments to "
                                     "archive/ (default) or delete "
                                     "them outright")
    ingest_compact.add_argument("--json", type=str, default=None,
                                help="also save the compaction report "
                                     "as JSON")
    ingest_compact.set_defaults(handler=_command_ingest_compact)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point (returns a process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
