"""Resilience: policies, fault injection, and crash-safe execution.

The paper's headline workloads are long-running — batch TWPR over
MAG-scale graphs, parallel block-centric supersteps, a live incremental
ranking service — and long-running systems fail partway. This package
holds the pieces that let the engines survive that:

* :mod:`repro.resilience.policy` — :class:`RetryPolicy` (bounded
  retries, exponential backoff, seeded jitter) and :class:`Deadline`
  (per-task timeout), consumed by
  :class:`repro.engine.parallel.ParallelBlockEngine`.
* :mod:`repro.resilience.faults` — :class:`FaultPlan`, a deterministic
  picklable script of worker crashes, stalls, and checkpoint-file
  corruption, used by the fault-injection test suite to *prove* the
  recovery paths (bit-identical fixed points under injected failures).

Crash-safe checkpointing itself lives with the engines
(:mod:`repro.engine.state`, :class:`repro.engine.live.LiveRanker`);
see ``docs/OPERATIONS.md`` for the operational picture.
"""

from repro.resilience.faults import (
    WORKER_CRASH_EXIT_CODE,
    BatchFault,
    FaultPlan,
    IngestFault,
    InjectedCrash,
    PartitionFault,
    ShardFault,
    WorkerFault,
)
from repro.resilience.policy import Deadline, RetryDelays, RetryPolicy

__all__ = [
    "BatchFault",
    "Deadline",
    "FaultPlan",
    "IngestFault",
    "InjectedCrash",
    "PartitionFault",
    "RetryDelays",
    "RetryPolicy",
    "ShardFault",
    "WORKER_CRASH_EXIT_CODE",
    "WorkerFault",
]
