"""Deterministic fault injection for the resilience test harness.

A :class:`FaultPlan` is a picklable script of failures: crash worker 1
on superstep 2, stall worker 0 past its deadline on superstep 3,
truncate ``state.npz`` after a checkpoint is written, crash the saver
between two of its file writes. Engines and the checkpoint writer accept
a plan as an optional keyword (default ``None``: zero overhead, no
behaviour change) and consult it at the exact points where real
hardware and processes fail.

Determinism is the whole point: a seeded plan injects the *same*
failures on every run, so the fault-injection suite can assert strong
properties — above all that a faulted parallel run converges to scores
**bit-identical** to the fault-free run — instead of merely "it did not
crash".

Worker-side faults are stateless queries keyed by ``(worker, superstep,
attempt)``: a fault with ``times=t`` fires on attempts ``0..t-1`` and
lets attempt ``t`` through. The coordinator passes the attempt number
with each (re-)dispatch, so a respawned worker process — which holds a
fresh copy of the plan — still knows the failure already happened.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class InjectedCrash(RuntimeError):
    """Raised by fault hooks that simulate a hard process death.

    Deliberately *not* a :class:`repro.errors.ReproError`: production
    code must never catch it as part of normal error handling, exactly
    as it cannot catch a real ``SIGKILL``.
    """


#: Exit code used when a worker process is crashed by a plan; chosen to
#: be recognizable in CI logs.
WORKER_CRASH_EXIT_CODE = 86


@dataclass(frozen=True)
class WorkerFault:
    """One scripted worker failure."""

    kind: str  # "crash" | "delay"
    worker: int
    superstep: int
    times: int = 1
    seconds: float = 0.0


@dataclass(frozen=True)
class BatchFault:
    """One scripted update-batch failure (the serving layer's faults).

    ``kind``:

    * ``"crash"`` — the update path raises while applying the batch
      (a poisoned parser record, an assertion deep in the solve);
    * ``"nan"`` — the batch applies but the resulting ranking carries
      non-finite scores (numeric poisoning the publish guardrails must
      catch before the snapshot swap).

    Keyed by ``(batch index, attempt)`` exactly like worker faults: a
    fault with ``times=t`` fires on attempts ``0..t-1`` and lets
    attempt ``t`` through, so retry/quarantine paths are testable.
    """

    kind: str  # "crash" | "nan"
    batch: int
    times: int = 1


@dataclass(frozen=True)
class ShardFault:
    """One scripted serving-shard failure (the sharded tier's faults).

    ``kind``:

    * ``"crash"`` — the shard worker dies while refreshing at the given
      epoch (hard process exit in process mode, so the gateway observes
      a dead pipe exactly like a real OOM kill);
    * ``"poison"`` — the shard's slice of the published scores arrives
      NaN-poisoned, which the per-shard refresh guardrails must veto
      while the last good shard snapshot keeps serving.

    Keyed by ``(shard, epoch, attempt)``: a fault with ``times=t``
    fires on refresh attempts ``0..t-1`` for that epoch and lets
    attempt ``t`` through — the gateway passes the attempt number with
    each (re-)dispatch, so a respawned shard process (fresh plan copy)
    still knows the failure already happened.
    """

    kind: str  # "crash" | "poison"
    shard: int
    epoch: int
    times: int = 1


@dataclass(frozen=True)
class IngestFault:
    """One scripted streaming-ingestion failure.

    ``kind``:

    * ``"stall"`` — the record source sleeps ``seconds`` before
      delivering record ``key`` (a slow upstream, a network hiccup);
    * ``"error"`` — the source raises a transient
      :class:`repro.errors.SourceError` delivering record ``key``
      (the pipeline's retry policy must absorb it);
    * ``"parse"`` — the parser crashes on record ``key`` (an
      :class:`InjectedCrash`, not a :class:`~repro.errors.ParseError`:
      a flaky native parser, not bad data — the pipeline retries up
      to its attempt budget, then routes the record to quarantine as
      poison);
    * ``"crash"`` — the ingest worker hard-dies while applying batch
      ``key`` (the exception escapes the pipeline, exactly like a
      process death mid-batch; resume must replay from the journal).

    Keyed by ``(key, attempt)`` like every other fault family: a fault
    with ``times=t`` fires on attempts ``0..t-1`` and lets attempt
    ``t`` through. For ``"crash"`` the attempt number is the pipeline
    *incarnation* (how many times it has resumed), so a resumed
    pipeline — holding the same plan — knows the crash already
    happened.
    """

    kind: str  # "stall" | "error" | "parse" | "crash"
    key: int
    times: int = 1
    seconds: float = 0.0


@dataclass(frozen=True)
class PartitionFault:
    """One scripted partitioned-ingest-worker failure.

    ``kind``:

    * ``"crash"`` — partition ``partition``'s worker hard-dies when the
      router reaches global arrival sequence ``key`` (after the record
      was journaled and flushed, the nastiest window). Keyed by
      ``(partition, key, incarnation)``: the fault fires on worker
      incarnations ``0..times-1``, so the recovered worker (incarnation
      + 1) lets the record through. Scheduling the same ``key`` for
      several partitions kills them *simultaneously* — bystander
      partitions die too, even though the record was not routed to
      them.
    * ``"stall"`` — the worker sleeps ``seconds`` before journaling the
      record at sequence ``key`` (one slow partition; the others must
      keep draining).
    * ``"tear"`` — when partition ``partition`` is recovered after a
      crash, chop ``tear_bytes`` off its active journal segment first,
      simulating the unsynced tail a real power loss takes with it.
      Keyed by ``(partition, incarnation)``: ``times`` consecutive
      recoveries each tear, then the tail survives.
    """

    kind: str  # "crash" | "stall" | "tear"
    partition: int
    key: int = 0
    times: int = 1
    seconds: float = 0.0
    tear_bytes: int = 8


@dataclass
class FaultPlan:
    """A deterministic, picklable script of injected failures."""

    seed: int = 0
    worker_faults: List[WorkerFault] = field(default_factory=list)
    file_truncations: Dict[str, int] = field(default_factory=dict)
    crash_after: Optional[int] = None
    batch_faults: List[BatchFault] = field(default_factory=list)
    shard_faults: List[ShardFault] = field(default_factory=list)
    ingest_faults: List[IngestFault] = field(default_factory=list)
    partition_faults: List[PartitionFault] = field(default_factory=list)
    _files_written: int = field(default=0, repr=False)

    # ------------------------------------------------------------------
    # scripting

    def crash_worker(self, worker: int, superstep: int,
                     times: int = 1) -> "FaultPlan":
        """Kill ``worker``'s process on ``superstep`` (first ``times``
        attempts)."""
        self.worker_faults.append(WorkerFault(
            "crash", int(worker), int(superstep), int(times)))
        return self

    def delay_task(self, worker: int, superstep: int, seconds: float,
                   times: int = 1) -> "FaultPlan":
        """Stall ``worker``'s task on ``superstep`` for ``seconds``."""
        self.worker_faults.append(WorkerFault(
            "delay", int(worker), int(superstep), int(times),
            float(seconds)))
        return self

    def crash_random_worker(self, num_workers: int, max_superstep: int,
                            times: int = 1) -> Tuple[int, int]:
        """Script one seeded-random crash; returns its (worker, step)."""
        rng = random.Random(self.seed)
        worker = rng.randrange(num_workers)
        superstep = rng.randrange(1, max_superstep + 1)
        self.crash_worker(worker, superstep, times)
        return worker, superstep

    def truncate_file(self, name: str, keep_bytes: int = 64) -> "FaultPlan":
        """Tear the named checkpoint file down to ``keep_bytes`` after
        the save finishes its manifest (simulates post-write corruption
        or a torn page)."""
        self.file_truncations[name] = int(keep_bytes)
        return self

    def crash_after_files(self, count: int) -> "FaultPlan":
        """Crash the checkpoint writer after ``count`` files are
        written (simulates a process dying mid-save)."""
        self.crash_after = int(count)
        return self

    def crash_batch(self, batch: int, times: int = 1) -> "FaultPlan":
        """Make the update path raise while applying batch ``batch``
        (first ``times`` attempts)."""
        self.batch_faults.append(BatchFault("crash", int(batch),
                                            int(times)))
        return self

    def poison_batch(self, batch: int, times: int = 1) -> "FaultPlan":
        """Make batch ``batch`` yield a ranking with NaN scores (first
        ``times`` attempts) — the guardrails, not the apply, must stop
        it."""
        self.batch_faults.append(BatchFault("nan", int(batch),
                                            int(times)))
        return self

    def crash_shard(self, shard: int, epoch: int,
                    times: int = 1) -> "FaultPlan":
        """Kill serving shard ``shard`` while it refreshes to ``epoch``
        (first ``times`` attempts)."""
        self.shard_faults.append(ShardFault("crash", int(shard),
                                            int(epoch), int(times)))
        return self

    def poison_shard(self, shard: int, epoch: int,
                     times: int = 1) -> "FaultPlan":
        """NaN-poison shard ``shard``'s score slice at ``epoch`` (first
        ``times`` refresh attempts) — the per-shard guardrails, not the
        read, must stop it."""
        self.shard_faults.append(ShardFault("poison", int(shard),
                                            int(epoch), int(times)))
        return self

    def stall_source(self, record: int, seconds: float,
                     times: int = 1) -> "FaultPlan":
        """Stall the record source for ``seconds`` before delivering
        record ``record`` (first ``times`` attempts)."""
        self.ingest_faults.append(IngestFault(
            "stall", int(record), int(times), float(seconds)))
        return self

    def fail_source(self, record: int, times: int = 1) -> "FaultPlan":
        """Make the source raise a transient ``SourceError`` delivering
        record ``record`` (first ``times`` attempts)."""
        self.ingest_faults.append(IngestFault("error", int(record),
                                              int(times)))
        return self

    def crash_parser(self, record: int, times: int = 1) -> "FaultPlan":
        """Crash the parser on record ``record`` (first ``times``
        attempts). With ``times`` at or beyond the pipeline's parse
        attempt budget the record becomes poison and is quarantined."""
        self.ingest_faults.append(IngestFault("parse", int(record),
                                              int(times)))
        return self

    def crash_ingest(self, batch: int, times: int = 1) -> "FaultPlan":
        """Hard-kill the ingest worker while it applies batch ``batch``
        (first ``times`` incarnations)."""
        self.ingest_faults.append(IngestFault("crash", int(batch),
                                              int(times)))
        return self

    def crash_partition_worker(self, partition: int, seq: int,
                               times: int = 1) -> "FaultPlan":
        """Hard-kill ingest partition ``partition``'s worker when the
        router reaches global arrival sequence ``seq`` (first ``times``
        worker incarnations). Script the same ``seq`` for several
        partitions to kill them at the same instant."""
        self.partition_faults.append(PartitionFault(
            "crash", int(partition), int(seq), int(times)))
        return self

    def stall_partition_worker(self, partition: int, seq: int,
                               seconds: float,
                               times: int = 1) -> "FaultPlan":
        """Stall partition ``partition``'s worker for ``seconds``
        before it journals the record at sequence ``seq``."""
        self.partition_faults.append(PartitionFault(
            "stall", int(partition), int(seq), int(times),
            float(seconds)))
        return self

    def tear_partition_tail(self, partition: int, tear_bytes: int = 8,
                            times: int = 1) -> "FaultPlan":
        """Chop ``tear_bytes`` off partition ``partition``'s active
        journal segment each time the worker is recovered (first
        ``times`` recoveries) — the crash loses its unsynced tail."""
        self.partition_faults.append(PartitionFault(
            "tear", int(partition), 0, int(times),
            tear_bytes=int(tear_bytes)))
        return self

    # ------------------------------------------------------------------
    # query / fire side (called from engines and the checkpoint writer)

    def worker_fault(self, worker: int, superstep: int,
                     attempt: int = 0) -> Optional[WorkerFault]:
        """The scripted fault for this dispatch, if it should still fire."""
        for fault in self.worker_faults:
            if (fault.worker == worker and fault.superstep == superstep
                    and attempt < fault.times):
                return fault
        return None

    def fire_worker_fault(self, worker: int, superstep: int,
                          attempt: int = 0) -> None:
        """Execute the scripted fault inside a worker process."""
        fault = self.worker_fault(worker, superstep, attempt)
        if fault is None:
            return
        if fault.kind == "delay":
            time.sleep(fault.seconds)
        elif fault.kind == "crash":
            # A hard exit, not an exception: the pool must observe a
            # dead process, exactly like an OOM kill or segfault.
            os._exit(WORKER_CRASH_EXIT_CODE)

    def batch_fault(self, batch: int,
                    attempt: int = 0) -> Optional[BatchFault]:
        """The scripted fault for this batch attempt, if it should
        still fire."""
        for fault in self.batch_faults:
            if fault.batch == batch and attempt < fault.times:
                return fault
        return None

    def fire_batch_crash(self, batch: int, attempt: int = 0) -> None:
        """Raise :class:`InjectedCrash` if a ``"crash"`` batch fault is
        scripted for this attempt (called from inside the update path)."""
        fault = self.batch_fault(batch, attempt)
        if fault is not None and fault.kind == "crash":
            raise InjectedCrash(
                f"injected update-path crash applying batch {batch} "
                f"(attempt {attempt})")

    def shard_fault(self, shard: int, epoch: int,
                    attempt: int = 0) -> Optional[ShardFault]:
        """The scripted fault for this shard refresh attempt, if it
        should still fire."""
        for fault in self.shard_faults:
            if (fault.shard == shard and fault.epoch == epoch
                    and attempt < fault.times):
                return fault
        return None

    def fire_shard_crash(self, shard: int, epoch: int,
                         attempt: int = 0) -> None:
        """Raise :class:`InjectedCrash` if a ``"crash"`` shard fault is
        scripted for this refresh attempt. Shard worker processes turn
        the exception into a hard ``os._exit`` so the gateway sees a
        dead pipe, exactly like a real worker death."""
        fault = self.shard_fault(shard, epoch, attempt)
        if fault is not None and fault.kind == "crash":
            raise InjectedCrash(
                f"injected shard crash: shard {shard} refreshing to "
                f"epoch {epoch} (attempt {attempt})")

    def ingest_fault(self, kind: str, key: int,
                     attempt: int = 0) -> Optional[IngestFault]:
        """The scripted ingest fault of ``kind`` for this attempt, if
        it should still fire."""
        for fault in self.ingest_faults:
            if (fault.kind == kind and fault.key == key
                    and attempt < fault.times):
                return fault
        return None

    def fire_source_fault(self, record: int, attempt: int = 0) -> None:
        """Execute the scripted source fault delivering ``record``:
        sleep through a ``"stall"``, raise a transient
        :class:`repro.errors.SourceError` on an ``"error"``."""
        stall = self.ingest_fault("stall", record, attempt)
        if stall is not None:
            time.sleep(stall.seconds)
        if self.ingest_fault("error", record, attempt) is not None:
            from repro.errors import SourceError

            raise SourceError(
                f"injected transient source failure delivering record "
                f"{record} (attempt {attempt})", position=record)

    def fire_parse_crash(self, record: int, attempt: int = 0) -> None:
        """Raise :class:`InjectedCrash` if a ``"parse"`` fault is
        scripted for this record attempt (a flaky parser, retryable)."""
        if self.ingest_fault("parse", record, attempt) is not None:
            raise InjectedCrash(
                f"injected parser crash on record {record} "
                f"(attempt {attempt})")

    def fire_ingest_crash(self, batch: int, incarnation: int = 0) -> None:
        """Raise :class:`InjectedCrash` if a ``"crash"`` fault is
        scripted for this batch and pipeline incarnation. The pipeline
        does *not* catch it — the exception escapes like a real process
        death, and the resumed pipeline (incarnation + 1) lets the
        batch through."""
        if self.ingest_fault("crash", batch, incarnation) is not None:
            raise InjectedCrash(
                f"injected ingest-worker crash applying batch {batch} "
                f"(incarnation {incarnation})")

    def partition_fault(self, kind: str, partition: int, key: int,
                        attempt: int = 0) -> Optional[PartitionFault]:
        """The scripted partition fault of ``kind`` for this attempt,
        if it should still fire. For ``"crash"``/``"stall"`` the
        attempt is the worker incarnation; for ``"tear"`` it is the
        recovery count (``key`` is ignored — pass 0)."""
        for fault in self.partition_faults:
            if (fault.kind == kind and fault.partition == partition
                    and (kind == "tear" or fault.key == key)
                    and attempt < fault.times):
                return fault
        return None

    def fire_partition_stall(self, partition: int, seq: int,
                             incarnation: int = 0) -> None:
        """Sleep through a scripted ``"stall"`` for this partition at
        this arrival sequence."""
        fault = self.partition_fault("stall", partition, seq,
                                     incarnation)
        if fault is not None:
            time.sleep(fault.seconds)

    def fire_partition_crash(self, partition: int, seq: int,
                             incarnation: int = 0) -> None:
        """Raise :class:`InjectedCrash` if a ``"crash"`` partition
        fault is scripted for this sequence and worker incarnation."""
        if self.partition_fault("crash", partition, seq,
                                incarnation) is not None:
            raise InjectedCrash(
                f"injected partition-worker crash: partition "
                f"{partition} at arrival seq {seq} "
                f"(incarnation {incarnation})")

    def partition_tear_for(self, partition: int,
                           recovery: int = 0) -> Optional[int]:
        """Bytes to chop off ``partition``'s active segment during its
        ``recovery``-th crash recovery, or ``None``."""
        fault = self.partition_fault("tear", partition, 0, recovery)
        return fault.tear_bytes if fault is not None else None

    def on_file_written(self, name: str) -> None:
        """Checkpoint-writer hook, called after each file write."""
        self._files_written += 1
        if self.crash_after is not None \
                and self._files_written >= self.crash_after:
            raise InjectedCrash(
                f"injected crash after writing {self._files_written} "
                f"checkpoint file(s) (last: {name})")

    def truncation_for(self, name: str) -> Optional[int]:
        """Bytes to keep of ``name`` post-save, or None."""
        return self.file_truncations.get(name)
