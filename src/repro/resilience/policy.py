"""Execution policies: bounded retries with backoff, and task deadlines.

A long-running engine should never let one transient failure erase hours
of converged work, and it should never wait forever on a worker that
will not answer. These two policies encode the standard answers:

* :class:`RetryPolicy` — how many times to re-dispatch a failed unit of
  work, and how long to wait between attempts (exponential backoff with
  deterministic, seeded jitter so runs stay reproducible).
* :class:`Deadline` — how long a single dispatched task may take before
  the coordinator declares the worker hung and moves on.

Both are plain picklable values; engines take them as optional keywords
and never mutate them, so one policy object can drive a whole fleet.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class Deadline:
    """Per-task wall-clock budget, in seconds.

    A coordinator waiting on a worker task treats exceeding the deadline
    exactly like a worker crash: the worker is presumed hung (deadlock,
    livelock, swap death) and its work is re-dispatched elsewhere.
    """

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ConfigError(
                f"deadline must be positive, got {self.seconds}")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    Attempt ``k`` (1-based) sleeps ``min(max_delay, base_delay *
    2**(k-1))`` scaled by a jitter factor drawn uniformly from
    ``[1, 1 + jitter)``. The jitter stream is seeded, so a retried run
    replays the same sleep schedule — determinism is part of the
    resilience contract (bit-identical fixed points, reproducible
    telemetry).

    ``max_retries=0`` disables retries (first failure degrades
    immediately); the engine still never crashes the whole run.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError("delays must be non-negative")
        if self.max_delay < self.base_delay:
            raise ConfigError("max_delay must be >= base_delay")
        if self.jitter < 0:
            raise ConfigError(f"jitter must be >= 0, got {self.jitter}")

    def delays(self) -> "RetryDelays":
        """A fresh, deterministic sequence of backoff sleeps."""
        return RetryDelays(self)


@dataclass
class RetryDelays:
    """Stateful view of one retry sequence (one failing task)."""

    policy: RetryPolicy
    attempt: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.policy.seed)

    def next_delay(self) -> float:
        """Backoff before the next attempt (call once per retry)."""
        self.attempt += 1
        backoff = min(self.policy.max_delay,
                      self.policy.base_delay * 2 ** (self.attempt - 1))
        return backoff * (1.0 + self.policy.jitter * self._rng.random())

    @property
    def exhausted(self) -> bool:
        return self.attempt >= self.policy.max_retries
