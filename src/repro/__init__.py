"""repro — Query Independent Scholarly Article Ranking (ICDE 2018).

A from-scratch reproduction of the paper's full system:

* :mod:`repro.core` — the ranking model: Time-Weighted PageRank prestige,
  time-decayed popularity, and the article/venue/author ensemble.
* :mod:`repro.engine` — batch, block-centric parallel, and incremental
  execution.
* :mod:`repro.ranking` — the PageRank engine and all comparison baselines.
* :mod:`repro.data` — schema, synthetic scholarly-graph generator, and
  AMiner/MAG format parsers.
* :mod:`repro.graph` — the directed-graph kernel.
* :mod:`repro.eval` — effectiveness metrics and protocols.
* :mod:`repro.storage` — SQLite persistence.

Quickstart::

    from repro import ArticleRanker, GeneratorConfig, generate_dataset

    dataset = generate_dataset(GeneratorConfig(num_articles=10_000))
    result = ArticleRanker().rank(dataset)
    for article_id, score in result.top(10):
        print(article_id, score)
"""

from repro.core.entity_rank import EntityRanker
from repro.core.model import ArticleRanker, RankerConfig, RankingResult
from repro.core.twpr import time_weighted_pagerank
from repro.data.generator import GeneratorConfig, generate_dataset
from repro.data.ground_truth import build_ground_truth
from repro.data.schema import Article, Author, ScholarlyDataset, Venue
from repro.engine.incremental import IncrementalEngine
from repro.engine.live import LiveRanker
from repro.errors import ReproError
from repro.query.index import RankIndex

__version__ = "1.0.0"

__all__ = [
    "Article",
    "ArticleRanker",
    "Author",
    "EntityRanker",
    "GeneratorConfig",
    "IncrementalEngine",
    "LiveRanker",
    "RankIndex",
    "RankerConfig",
    "RankingResult",
    "ReproError",
    "ScholarlyDataset",
    "Venue",
    "build_ground_truth",
    "generate_dataset",
    "time_weighted_pagerank",
    "__version__",
]
