"""Damped power-iteration PageRank over CSR graphs.

This is the single matrix-form engine shared by plain PageRank, CiteRank
(personalized jump) and Time-Weighted PageRank (time-decayed edge weights):
they differ only in the jump vector and edge weights they pass in.

Semantics: scores form a probability distribution (L1 norm 1). A step is

    s' = damping * (P^T s + dangling_mass * jump) + (1 - damping) * jump

where ``P`` is the row-normalized (out-edge) transition matrix over the
effective edge weights and ``dangling_mass`` is the score sitting on nodes
without out-edges, re-injected through the jump vector (the standard
stochastic completion).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np
from scipy.sparse import csr_matrix

from repro.errors import ConfigError, ConvergenceError
from repro.graph.csr import CSRGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.handle import Observability
    from repro.obs.telemetry import SolverTelemetry


@dataclass(frozen=True)
class PageRankResult:
    """Outcome of a PageRank-style solve.

    Attributes:
        scores: ``float64[n]`` stationary distribution (sums to 1).
        iterations: number of power-iteration steps performed.
        residual: final L1 step difference.
        converged: whether ``residual <= tol`` within the budget.
    """

    scores: np.ndarray
    iterations: int
    residual: float
    converged: bool


def validate_jump(jump: Optional[np.ndarray], n: int) -> np.ndarray:
    """Normalize/validate a jump (personalization) vector of length ``n``."""
    if jump is None:
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        return np.full(n, 1.0 / n, dtype=np.float64)
    vector = np.asarray(jump, dtype=np.float64)
    if vector.shape != (n,):
        raise ConfigError(f"jump vector must have shape ({n},), "
                          f"got {vector.shape}")
    if np.any(vector < 0) or not np.all(np.isfinite(vector)):
        raise ConfigError("jump vector must be finite and non-negative")
    total = vector.sum()
    if total <= 0:
        raise ConfigError("jump vector must have positive mass")
    return vector / total


def validate_initial(initial: Optional[np.ndarray],
                     n: int) -> Optional[np.ndarray]:
    """Normalize/validate a warm-start distribution of length ``n``.

    Mirrors :func:`validate_jump`: the vector must have shape ``(n,)``,
    be finite and non-negative, and carry positive total mass — a
    zero-sum or NaN-bearing warm start would otherwise seed every solver
    with silent NaNs. ``None`` passes through (solvers then start from
    the jump vector).
    """
    if initial is None:
        return None
    vector = np.asarray(initial, dtype=np.float64)
    if vector.shape != (n,):
        raise ConfigError(f"initial distribution must have shape ({n},), "
                          f"got {vector.shape}")
    if np.any(vector < 0) or not np.all(np.isfinite(vector)):
        raise ConfigError(
            "initial distribution must be finite and non-negative")
    total = vector.sum()
    if total <= 0:
        raise ConfigError("initial distribution must have positive mass")
    return vector / total


def validate_edge_weights(graph: CSRGraph,
                          edge_weights: Optional[np.ndarray] = None
                          ) -> np.ndarray:
    """Resolve and validate a per-edge weight override.

    Returns the graph's stored weights when ``edge_weights`` is ``None``;
    otherwise checks shape against the edge array and rejects negative or
    non-finite entries. Every solver entry point — ``pagerank``,
    ``gauss_seidel_pagerank`` and the block engines — funnels through
    this one guard so a NaN/negative override cannot silently corrupt
    one engine's fixed point while the others reject it.
    """
    weights = graph.weights if edge_weights is None \
        else np.asarray(edge_weights, dtype=np.float64)
    if weights.shape != graph.weights.shape:
        raise ConfigError(
            f"edge_weights must have shape {graph.weights.shape}, "
            f"got {weights.shape}")
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ConfigError("edge weights must be finite and non-negative")
    return weights


def build_transition(graph: CSRGraph,
                     edge_weights: Optional[np.ndarray] = None
                     ) -> Tuple[csr_matrix, np.ndarray]:
    """Build ``(P_transposed, dangling_mask)`` for ``graph``.

    ``P`` is the out-edge row-normalized transition matrix over
    ``edge_weights`` (default: the graph's stored weights). Nodes whose
    outgoing weight sums to zero are *dangling* — including nodes that have
    edges but all of weight zero.
    """
    n = graph.num_nodes
    weights = validate_edge_weights(graph, edge_weights)

    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    strengths = np.bincount(src, weights=weights, minlength=n)
    dangling = strengths == 0.0

    safe = np.where(dangling, 1.0, strengths)
    normalized = weights / safe[src]
    transition = csr_matrix((normalized, graph.indices, graph.indptr),
                            shape=(n, n))
    return transition.T.tocsr(), dangling


def pagerank(graph: CSRGraph, damping: float = 0.85,
             tol: float = 1e-10, max_iter: int = 200,
             jump: Optional[np.ndarray] = None,
             edge_weights: Optional[np.ndarray] = None,
             initial: Optional[np.ndarray] = None,
             raise_on_divergence: bool = False,
             telemetry: Optional["SolverTelemetry"] = None,
             obs: Optional["Observability"] = None
             ) -> PageRankResult:
    """Compute (weighted, personalized) PageRank of ``graph``.

    Args:
        graph: CSR snapshot; an edge ``u -> v`` passes score from ``u``
            to ``v`` (for citation graphs: citing endorses cited).
        damping: probability of following an edge rather than jumping.
        tol: L1 convergence tolerance on successive iterates.
        max_iter: iteration budget.
        jump: optional personalization vector (normalized internally).
        edge_weights: optional per-edge weight override aligned with
            ``graph.weights`` — how Time-Weighted PageRank plugs in.
        initial: optional warm-start distribution (normalized internally);
            warm starts are what make incremental re-solves cheap.
        raise_on_divergence: raise :class:`ConvergenceError` instead of
            returning a non-converged result.
        telemetry: optional :class:`repro.obs.SolverTelemetry` recording
            the per-iteration residual and dangling-mass trajectory plus
            a ``"pagerank"`` convergence stream (residual / max per-node
            delta / active-node count per iteration). Purely
            observational — scores are identical with it on or off.
        obs: optional :class:`repro.obs.Observability` handle; wraps the
            solve in a ``pagerank.solve`` span and supplies telemetry
            when ``telemetry`` itself is not given.

    Returns:
        :class:`PageRankResult` with the stationary distribution.
    """
    if not 0.0 <= damping < 1.0:
        raise ConfigError(f"damping must be in [0, 1), got {damping}")
    if tol <= 0:
        raise ConfigError("tol must be positive")
    if max_iter <= 0:
        raise ConfigError("max_iter must be positive")

    if obs is not None and telemetry is None:
        telemetry = obs.telemetry

    n = graph.num_nodes
    if n == 0:
        return PageRankResult(np.zeros(0), 0, 0.0, True)

    jump_vector = validate_jump(jump, n)
    transition_t, dangling = build_transition(graph, edge_weights)

    validated = validate_initial(initial, n)
    scores = validated.copy() if validated is not None \
        else jump_vector.copy()

    span = obs.span("pagerank.solve", nodes=n, edges=graph.num_edges) \
        if obs is not None else nullcontext()
    stream = telemetry.open_stream("pagerank") \
        if telemetry is not None else None
    with span:
        residual = float("inf")
        iterations = 0
        for iterations in range(1, max_iter + 1):
            step_start = time.perf_counter()
            dangling_mass = float(scores[dangling].sum())
            new_scores = damping * (transition_t @ scores
                                    + dangling_mass * jump_vector) \
                + (1.0 - damping) * jump_vector
            # Guard against numeric drift: keep it a distribution.
            new_scores /= new_scores.sum()
            change = np.abs(new_scores - scores)
            residual = float(change.sum())
            scores = new_scores
            if telemetry is not None:
                telemetry.record_iteration(residual, dangling_mass)
                stream.record(
                    residual, delta=float(change.max()),
                    active=int(np.count_nonzero(change > tol)),
                    seconds=time.perf_counter() - step_start)
            if residual <= tol:
                return PageRankResult(scores, iterations, residual, True)
    if raise_on_divergence:
        raise ConvergenceError(
            f"PageRank did not reach tol={tol} in {max_iter} iterations "
            f"(residual={residual:.3e})", iterations, residual)
    return PageRankResult(scores, iterations, residual, False)
