"""Sanity baselines: citation rate, recency, venue mean.

These anchor the effectiveness tables: any model worth publishing must
clear them, and they expose the young-article bias that motivates
time-aware ranking (raw counts starve recent work; recency alone ignores
merit).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph


def citation_rate(graph: CSRGraph, years: np.ndarray,
                  observation_year: int) -> np.ndarray:
    """Citations per year of age: ``in_degree / (age + 1)``.

    The ``+ 1`` keeps current-year articles finite and matches the common
    age-normalized impact definition.
    """
    years = np.asarray(years)
    if years.shape != (graph.num_nodes,):
        raise ConfigError("years must align with graph nodes")
    age = observation_year - years
    if np.any(age < 0):
        raise ConfigError("observation_year precedes some publications")
    return graph.in_degrees().astype(np.float64) / (age + 1.0)


def recency_score(years: np.ndarray, observation_year: int,
                  half_life: float = 5.0) -> np.ndarray:
    """Pure recency: ``2 ** (-(observation_year - year) / half_life)``."""
    if half_life <= 0:
        raise ConfigError("half_life must be positive")
    years = np.asarray(years, dtype=np.float64)
    age = observation_year - years
    if np.any(age < 0):
        raise ConfigError("observation_year precedes some publications")
    return np.power(2.0, -age / half_life)


def venue_mean(venue_of: np.ndarray, base_scores: np.ndarray) -> np.ndarray:
    """Score each article by the mean ``base_scores`` of its venue.

    ``venue_of[i]`` is the venue index of article ``i`` (``-1`` = none;
    such articles keep their own base score). Used as the "venue prior"
    baseline.
    """
    venue_of = np.asarray(venue_of, dtype=np.int64)
    base_scores = np.asarray(base_scores, dtype=np.float64)
    if venue_of.shape != base_scores.shape:
        raise ConfigError("venue_of and base_scores must align")
    scores = base_scores.copy()
    valid = venue_of >= 0
    if not np.any(valid):
        return scores
    num_venues = int(venue_of[valid].max()) + 1
    sums = np.zeros(num_venues)
    counts = np.zeros(num_venues)
    np.add.at(sums, venue_of[valid], base_scores[valid])
    np.add.at(counts, venue_of[valid], 1.0)
    means = sums / np.maximum(counts, 1.0)
    scores[valid] = means[venue_of[valid]]
    return scores
