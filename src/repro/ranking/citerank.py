"""CiteRank (Walker, Xie, Yan, Maslov 2007).

A random reader starts at a paper chosen with probability proportional to
``exp(-age / tau)`` — readers discover literature through *recent* papers —
and follows references backward with probability ``alpha`` per step. The
stationary visit distribution is exactly personalized PageRank with an
exponential-recency jump vector, so it reuses the shared engine.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.ranking.pagerank import PageRankResult, pagerank


def citerank(graph: CSRGraph, years: np.ndarray, observation_year: int,
             tau: float = 2.6, alpha: float = 0.5, tol: float = 1e-10,
             max_iter: int = 200) -> PageRankResult:
    """Compute CiteRank scores.

    Args:
        graph: citation graph (citing -> cited).
        years: publication year per node index.
        observation_year: "today"; papers older than it decay in the
            jump vector.
        tau: characteristic discovery age in years (the paper's fitted
            value is about 2.6).
        alpha: probability of following a reference (plays the role of
            the damping factor).
    """
    if tau <= 0:
        raise ConfigError("tau must be positive")
    years = np.asarray(years, dtype=np.float64)
    if years.shape != (graph.num_nodes,):
        raise ConfigError("years must align with graph nodes")
    age = observation_year - years
    if np.any(age < 0):
        raise ConfigError("observation_year precedes some publications")
    jump = np.exp(-age / tau)
    if jump.sum() <= 0:  # pragma: no cover - exp never underflows to all-0
        raise ConfigError("recency jump vector has no mass")
    return pagerank(graph, damping=alpha, tol=tol, max_iter=max_iter,
                    jump=jump)
