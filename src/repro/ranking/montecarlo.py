"""Monte-Carlo PageRank approximation (Avrachenkov et al., 2007).

Instead of iterating to the stationary distribution, simulate the random
reader directly: start ``walks_per_node`` walks at every node, follow an
out-edge with probability ``damping`` (terminating otherwise or at a
dangling node), and estimate PageRank from end-point frequencies
("Monte Carlo complete path stopping at dangling nodes" variant — we use
the *end-point* estimator, whose estimates are unbiased for the
jump-vector-completed chain).

This is the approximation baseline for the batch-efficiency discussion:
cheap, parallel, and tunable through the walk budget, but its error
decays only as ``1/sqrt(walks)`` — the experiment shows where iterative
solvers dominate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class MonteCarloResult:
    """Estimated scores plus the simulation budget actually spent."""

    scores: np.ndarray
    walks: int
    steps: int


def monte_carlo_pagerank(graph: CSRGraph, walks_per_node: int = 10,
                         damping: float = 0.85, max_length: int = 100,
                         seed: int = 0) -> MonteCarloResult:
    """Estimate PageRank by simulating terminating random walks.

    All active walks advance together each step (vectorized frontier),
    so the cost is ``O(total steps)`` numpy work, not per-walk Python.

    Args:
        graph: citation graph (unweighted transition per out-edge).
        walks_per_node: walks started at each node; the estimate error
            decays as the inverse square root of this budget.
        damping: continuation probability per step.
        max_length: hard cap on walk length (a safety net; geometric
            termination makes longer walks vanishingly rare).
        seed: RNG seed.
    """
    if walks_per_node <= 0:
        raise ConfigError("walks_per_node must be positive")
    if not 0.0 <= damping < 1.0:
        raise ConfigError(f"damping must be in [0, 1), got {damping}")
    if max_length <= 0:
        raise ConfigError("max_length must be positive")

    n = graph.num_nodes
    if n == 0:
        return MonteCarloResult(np.zeros(0), 0, 0)

    rng = np.random.default_rng(seed)
    out_degree = graph.out_degrees()
    visits = np.zeros(n, dtype=np.float64)

    position = np.repeat(np.arange(n, dtype=np.int64), walks_per_node)
    total_walks = len(position)
    steps = 0
    for _ in range(max_length):
        np.add.at(visits, position, 1.0)
        # Continue with probability `damping`, and only from nodes that
        # have somewhere to go (dangling nodes absorb, i.e. the walk
        # restarts — end-point counting handles the jump implicitly).
        alive = (rng.random(len(position)) < damping) \
            & (out_degree[position] > 0)
        position = position[alive]
        if len(position) == 0:
            break
        steps += len(position)
        # Uniform out-edge choice per surviving walk.
        offsets = (rng.random(len(position))
                   * out_degree[position]).astype(np.int64)
        position = graph.indices[graph.indptr[position] + offsets]

    scores = visits / visits.sum()
    return MonteCarloResult(scores=scores, walks=total_walks, steps=steps)
