"""P-Rank (Yan, Ding & Sugimoto, 2011) — heterogeneous co-ranking.

Prestige propagates through three coupled networks: papers endorse the
papers they cite (citation network), papers and their authors reinforce
each other (authorship network), and papers and their venues reinforce
each other (publication network):

    P  = alpha * C^T P + beta * A^T U + gamma * V^T J + base/n
    U  = normalize(A P)        (author score = mean of their papers)
    J  = normalize(V P)        (venue score = mean of their papers)

with ``C`` the out-normalized citation matrix, ``A`` the author->paper
incidence (rows normalized), ``V`` the venue->paper incidence (rows
normalized). A baseline the paper's ensemble is naturally compared to:
the same entity kinds, but no time-awareness at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix

from repro.errors import ConfigError, ConvergenceError
from repro.graph.csr import CSRGraph
from repro.ranking.pagerank import build_transition


@dataclass(frozen=True)
class PRankConfig:
    """Signal weights of P-Rank (must satisfy alpha+beta+gamma <= 1)."""

    alpha: float = 0.5
    beta: float = 0.2
    gamma: float = 0.2
    tol: float = 1e-10
    max_iter: int = 200

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.alpha + self.beta + self.gamma > 1.0 + 1e-12:
            raise ConfigError("alpha + beta + gamma must be <= 1")
        if self.tol <= 0 or self.max_iter <= 0:
            raise ConfigError("tol and max_iter must be positive")


def _incidence(memberships: Sequence[Sequence[int]], num_groups: int,
               n: int, what: str) -> csr_matrix:
    """Group-by-paper incidence with rows normalized per group."""
    rows = []
    cols = []
    for paper, groups in enumerate(memberships):
        for group in groups:
            if not 0 <= group < num_groups:
                raise ConfigError(
                    f"{what} index {group} out of range [0, {num_groups})")
            rows.append(group)
            cols.append(paper)
    matrix = csr_matrix((np.ones(len(rows)), (rows, cols)),
                        shape=(num_groups, n))
    per_group = np.asarray(matrix.sum(axis=1)).ravel()
    scale = np.where(per_group > 0, 1.0 / np.maximum(per_group, 1.0), 0.0)
    matrix.data *= np.repeat(scale, np.diff(matrix.indptr))
    return matrix


def prank(graph: CSRGraph, author_lists: Sequence[Sequence[int]],
          num_authors: int, venue_of: Sequence[int], num_venues: int,
          config: PRankConfig = PRankConfig(),
          raise_on_divergence: bool = False
          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run P-Rank; return ``(paper, author, venue)`` score vectors.

    ``venue_of[i]`` is the venue index of paper ``i`` (-1 = none).
    """
    n = graph.num_nodes
    weights = graph.weights
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ConfigError("edge weights must be finite and non-negative")
    if len(author_lists) != n:
        raise ConfigError("author_lists must align with graph nodes")
    venue_of = np.asarray(venue_of, dtype=np.int64)
    if venue_of.shape != (n,):
        raise ConfigError("venue_of must align with graph nodes")
    if n == 0:
        return (np.zeros(0), np.zeros(num_authors), np.zeros(num_venues))

    transition_t, dangling = build_transition(graph)
    author_incidence = _incidence(author_lists, num_authors, n, "author")
    venue_lists = [[int(v)] if v >= 0 else [] for v in venue_of]
    venue_incidence = _incidence(venue_lists, num_venues, n, "venue")
    author_t = author_incidence.T.tocsr()
    venue_t = venue_incidence.T.tocsr()

    uniform = np.full(n, 1.0 / n)
    papers = uniform.copy()
    authors = np.full(num_authors, 1.0 / max(num_authors, 1))
    venues = np.full(num_venues, 1.0 / max(num_venues, 1))
    base = max(0.0, 1.0 - config.alpha - config.beta - config.gamma)

    def renormalize(vector: np.ndarray) -> np.ndarray:
        total = vector.sum()
        return vector / total if total > 0 else vector

    residual = float("inf")
    iterations = 0
    for iterations in range(1, config.max_iter + 1):
        dangling_mass = float(papers[dangling].sum())
        citation_part = transition_t @ papers + dangling_mass * uniform
        new_papers = (config.alpha * citation_part
                      + config.beta * renormalize(author_t @ authors)
                      + config.gamma * renormalize(venue_t @ venues)
                      + base * uniform)
        new_papers = renormalize(new_papers)
        new_authors = renormalize(author_incidence @ new_papers)
        new_venues = renormalize(venue_incidence @ new_papers)
        residual = float(np.abs(new_papers - papers).sum()
                         + np.abs(new_authors - authors).sum()
                         + np.abs(new_venues - venues).sum())
        papers, authors, venues = new_papers, new_authors, new_venues
        if residual <= config.tol:
            return papers, authors, venues
    if raise_on_divergence:
        raise ConvergenceError(
            f"P-Rank did not reach tol={config.tol} in "
            f"{config.max_iter} iterations", iterations, residual)
    return papers, authors, venues
