"""FutureRank (Sayyadi & Getoor, SDM 2009).

Predicts an article's *future* PageRank from three mutually reinforcing
signals, iterated to a joint fixed point:

* citation propagation (PageRank-style over the citation graph),
* authorship propagation (good authors lift their papers and vice versa,
  HITS-style over the bipartite author-paper graph),
* a personalized time vector favouring recent publications.

Update (paper notation, rho weights):

    s_paper  = alpha * C^T s_paper + beta * A^T s_author
               + gamma * R_time + (1 - alpha - beta - gamma) * 1/n
    s_author = normalize(A s_paper)

where ``C`` is the out-normalized citation matrix and ``A`` the
author->paper incidence normalized per author.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix

from repro.errors import ConfigError, ConvergenceError
from repro.graph.csr import CSRGraph
from repro.ranking.pagerank import build_transition


@dataclass(frozen=True)
class FutureRankConfig:
    """Weights of the three FutureRank signals.

    Defaults follow the original paper (alpha=0.4, beta=0.1, gamma=0.5
    against the time vector ``exp(-rho * age)`` with rho=0.62).
    """

    alpha: float = 0.4
    beta: float = 0.1
    gamma: float = 0.5
    rho: float = 0.62
    tol: float = 1e-10
    max_iter: int = 200

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.alpha + self.beta + self.gamma > 1.0 + 1e-12:
            raise ConfigError("alpha + beta + gamma must be <= 1")
        if self.rho <= 0:
            raise ConfigError("rho must be positive")
        if self.tol <= 0 or self.max_iter <= 0:
            raise ConfigError("tol and max_iter must be positive")


def _author_incidence(author_lists: Sequence[Sequence[int]],
                      num_authors: int, n: int) -> csr_matrix:
    """Author-by-paper incidence, rows normalized per author."""
    rows = []
    cols = []
    for paper, authors in enumerate(author_lists):
        for author in authors:
            if not 0 <= author < num_authors:
                raise ConfigError(f"author index {author} out of range")
            rows.append(author)
            cols.append(paper)
    data = np.ones(len(rows), dtype=np.float64)
    incidence = csr_matrix((data, (rows, cols)), shape=(num_authors, n))
    per_author = np.asarray(incidence.sum(axis=1)).ravel()
    scale = np.where(per_author > 0, 1.0 / np.maximum(per_author, 1.0), 0.0)
    return csr_matrix((incidence.data
                       * np.repeat(scale, np.diff(incidence.indptr)),
                       incidence.indices, incidence.indptr),
                      shape=incidence.shape)


def futurerank(graph: CSRGraph, author_lists: Sequence[Sequence[int]],
               num_authors: int, years: np.ndarray, observation_year: int,
               config: FutureRankConfig = FutureRankConfig(),
               raise_on_divergence: bool = False
               ) -> Tuple[np.ndarray, np.ndarray]:
    """Run FutureRank; return ``(paper_scores, author_scores)``.

    ``author_lists[i]`` lists author indices of the paper at node index
    ``i`` (contiguous author indexing ``0..num_authors-1``).
    """
    n = graph.num_nodes
    weights = graph.weights
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ConfigError("edge weights must be finite and non-negative")
    if len(author_lists) != n:
        raise ConfigError("author_lists must align with graph nodes")
    years = np.asarray(years, dtype=np.float64)
    if years.shape != (n,):
        raise ConfigError("years must align with graph nodes")
    age = observation_year - years
    if np.any(age < 0):
        raise ConfigError("observation_year precedes some publications")
    if n == 0:
        return np.zeros(0), np.zeros(num_authors)

    time_vector = np.exp(-config.rho * age)
    total = time_vector.sum()
    if total > 0:
        time_vector = time_vector / total

    transition_t, dangling = build_transition(graph)
    incidence = _author_incidence(author_lists, num_authors, n)
    incidence_t = incidence.T.tocsr()

    uniform = np.full(n, 1.0 / n)
    papers = uniform.copy()
    authors = np.full(num_authors, 1.0 / max(num_authors, 1))
    base = max(0.0, 1.0 - config.alpha - config.beta - config.gamma)

    residual = float("inf")
    iterations = 0
    for iterations in range(1, config.max_iter + 1):
        dangling_mass = float(papers[dangling].sum())
        citation_part = transition_t @ papers + dangling_mass * uniform
        author_part = incidence_t @ authors
        author_total = author_part.sum()
        if author_total > 0:
            author_part = author_part / author_total
        new_papers = (config.alpha * citation_part
                      + config.beta * author_part
                      + config.gamma * time_vector
                      + base * uniform)
        new_papers /= new_papers.sum()
        new_authors = incidence @ new_papers
        author_norm = new_authors.sum()
        if author_norm > 0:
            new_authors /= author_norm
        residual = float(np.abs(new_papers - papers).sum()
                         + np.abs(new_authors - authors).sum())
        papers, authors = new_papers, new_authors
        if residual <= config.tol:
            return papers, authors
    if raise_on_divergence:
        raise ConvergenceError(
            f"FutureRank did not reach tol={config.tol} in "
            f"{config.max_iter} iterations", iterations, residual)
    return papers, authors
