"""Raw citation count — the simplest query-independent baseline."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def citation_count(graph: CSRGraph) -> np.ndarray:
    """``float64[n]`` in-degree of every node of the citation graph.

    Edges point citing -> cited, so in-degree is the citation count.
    """
    return graph.in_degrees().astype(np.float64)
