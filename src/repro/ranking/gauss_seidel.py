"""Gauss–Seidel PageRank: in-place sweeps in a caller-chosen node order.

On a citation graph — which is acyclic up to a few mutual-citation cycles —
score flows strictly from newer to older articles. Sweeping nodes so that
every node is updated *after* the nodes that feed it makes one sweep
propagate information across the whole graph, instead of one hop per
iteration as in Jacobi/power iteration. This is the batch TWPR
optimization benchmarked in E4: on a DAG it converges in a handful of
sweeps at the same fixed point as :func:`repro.ranking.pagerank.pagerank`.

Two sweep kernels share the semantics:

* ``pernode`` — the reference formulation: a Python loop over the sweep
  order with one ``np.dot`` per node. Required for arbitrary caller
  orders; interpreter-bound.
* ``levels`` — the batched CSR kernel: nodes are grouped into topological
  levels (:func:`repro.graph.toposort.topological_levels`), and a whole
  level — which by construction has no intra-level edges — is updated as
  one gather + ``np.add.reduceat`` segment reduction over the
  destination-grouped CSR arrays. Members of a non-trivial SCC are the
  only nodes with intra-level edges; they are swept per-node (in index
  order, matching :func:`influence_order`), so sweep semantics are
  preserved exactly and the per-sweep arithmetic differs from the
  reference only in float summation order.

The dangling correction uses the *current* (partially updated) scores for
the dangling sum, updated lazily once per sweep; the fixed point is
identical because at convergence the scores stop changing.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, ConvergenceError
from repro.graph.csr import CSRGraph
from repro.graph.scc import condensation
from repro.graph.toposort import (
    ragged_offsets,
    topological_levels,
    topological_sort,
)
from repro.ranking.pagerank import (
    PageRankResult,
    validate_edge_weights,
    validate_initial,
    validate_jump,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.handle import Observability
    from repro.obs.telemetry import SolverTelemetry

#: Valid values for the ``kernel`` argument of
#: :func:`gauss_seidel_pagerank`.
KERNELS = ("auto", "levels", "pernode")


def influence_order(graph: CSRGraph) -> np.ndarray:
    """Node order such that score sources come before their targets.

    An edge ``u -> v`` passes score from ``u`` to ``v``, so ``u`` should be
    swept first: this is plain topological order. Cyclic graphs fall back
    to topological order of the SCC condensation (members of one SCC are
    swept together, in index order).
    """
    order = topological_sort(graph)
    if order is not None:
        return np.asarray(order, dtype=np.int64)
    dag, membership = condensation(graph)
    component_order = topological_sort(dag)
    if component_order is None:  # pragma: no cover - condensation is a DAG
        raise ConfigError("condensation was not acyclic")
    rank_of_component = np.empty(dag.num_nodes, dtype=np.int64)
    for rank, component in enumerate(component_order):
        rank_of_component[component] = rank
    keys = rank_of_component[membership]
    return np.argsort(keys, kind="stable").astype(np.int64)


class _LevelPlan:
    """Precomputed schedule for the batched ``levels`` sweep kernel.

    Segments are processed in ascending ``levels * 2 + cyclic`` key order:
    the even segment of a level holds its singleton-SCC nodes (no in-edges
    from their own segment or the level's cyclic segment — every in-edge
    comes from a strictly smaller key), the odd segment holds members of
    non-trivial SCCs at that level, which may feed each other and are
    swept per-node. Gather indices and reduction boundaries are computed
    once, so each sweep is pure vectorized work plus a short loop over the
    (typically few) cyclic nodes.
    """

    __slots__ = ("batched", "serial", "num_levels")

    def __init__(self, graph: CSRGraph, in_ptr: np.ndarray,
                 in_src: np.ndarray, in_prob: np.ndarray) -> None:
        decomposition = topological_levels(graph)
        self.num_levels = decomposition.num_levels
        key = decomposition.levels * 2 + decomposition.cyclic_mask
        node_order = np.argsort(key, kind="stable")
        sorted_key = key[node_order]
        bounds = np.flatnonzero(
            np.r_[True, sorted_key[1:] != sorted_key[:-1],
                  True]) if len(sorted_key) else np.zeros(1, dtype=np.int64)
        # One global gather over all nodes in sweep order; segments are
        # then pure slices of these arrays (no per-segment construction).
        counts = in_ptr[node_order + 1] - in_ptr[node_order]
        gather = np.repeat(in_ptr[node_order], counts) \
            + ragged_offsets(counts)
        within = np.zeros(len(node_order), dtype=np.int64)
        if len(counts) > 1:
            np.cumsum(counts[:-1], out=within[1:])
        total_edges = int(counts.sum()) if len(counts) else 0
        edge_bounds = np.append(within[bounds[:-1]], total_edges) \
            if len(bounds) > 1 else np.asarray([total_edges])
        # Each batched entry: (nodes, gather, reduce_starts, has_edges),
        # or None when the matching ``serial`` entry holds the segment.
        self.batched: List[Optional[Tuple[np.ndarray, np.ndarray,
                                          np.ndarray, np.ndarray]]] = []
        # Each serial entry: a run of intra-SCC nodes swept per-node.
        self.serial: List[Optional[np.ndarray]] = []
        for seg, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
            nodes = node_order[lo:hi]
            if sorted_key[lo] % 2:  # cyclic segment: per-node sweep
                self.batched.append(None)
                self.serial.append(nodes)
                continue
            edge_lo = int(edge_bounds[seg])
            edge_hi = int(edge_bounds[seg + 1])
            seg_counts = counts[lo:hi]
            has_edges = seg_counts > 0
            reduce_starts = (within[lo:hi] - edge_lo)[has_edges]
            self.batched.append((nodes, gather[edge_lo:edge_hi],
                                 reduce_starts, has_edges))
            self.serial.append(None)


def _levels_sweep(plan: _LevelPlan, scores: np.ndarray,
                  in_ptr: np.ndarray, in_src: np.ndarray,
                  in_prob: np.ndarray, damping: float,
                  dangling_mass: float, jump_vector: np.ndarray) -> None:
    """One in-place Gauss–Seidel sweep in level-batched order."""
    base = 1.0 - damping
    for batch, serial_nodes in zip(plan.batched, plan.serial):
        if batch is None:
            for node in serial_nodes:
                start, stop = in_ptr[node], in_ptr[node + 1]
                pulled = float(np.dot(in_prob[start:stop],
                                      scores[in_src[start:stop]]))
                scores[node] = damping * (pulled + dangling_mass
                                          * jump_vector[node]) \
                    + base * jump_vector[node]
            continue
        nodes, gather, reduce_starts, has_edges = batch
        pulled = np.zeros(len(nodes))
        if len(gather):
            products = in_prob[gather] * scores[in_src[gather]]
            pulled[has_edges] = np.add.reduceat(products, reduce_starts)
        scores[nodes] = damping * (pulled + dangling_mass
                                   * jump_vector[nodes]) \
            + base * jump_vector[nodes]


def gauss_seidel_pagerank(graph: CSRGraph, damping: float = 0.85,
                          tol: float = 1e-10, max_sweeps: int = 100,
                          jump: Optional[np.ndarray] = None,
                          edge_weights: Optional[np.ndarray] = None,
                          order: Optional[Sequence[int]] = None,
                          initial: Optional[np.ndarray] = None,
                          raise_on_divergence: bool = False,
                          kernel: str = "auto",
                          telemetry: Optional["SolverTelemetry"] = None,
                          obs: Optional["Observability"] = None
                          ) -> PageRankResult:
    """PageRank via Gauss–Seidel sweeps.

    Args mirror :func:`repro.ranking.pagerank.pagerank`; additionally
    ``order`` fixes the sweep order (default: :func:`influence_order`)
    and ``kernel`` selects the sweep implementation: ``"levels"`` (the
    batched CSR kernel — requires the default influence order),
    ``"pernode"`` (the per-node reference loop) or ``"auto"`` (levels
    when ``order`` is None, pernode otherwise). Both kernels implement
    the same sweep semantics; within float64 they agree to summation
    rounding (~1e-15 per entry), far inside any practical ``tol``.
    Convergence is measured as the L1 change of one full sweep.
    ``telemetry`` (optional) records the per-sweep residual and
    dangling-mass trajectory plus a ``"gauss_seidel"`` convergence
    stream, without affecting the result. ``obs`` wraps the sweeps in
    a ``gauss_seidel.solve`` span and supplies telemetry when
    ``telemetry`` itself is not given.
    """
    if not 0.0 <= damping < 1.0:
        raise ConfigError(f"damping must be in [0, 1), got {damping}")
    if tol <= 0:
        raise ConfigError("tol must be positive")
    if max_sweeps <= 0:
        raise ConfigError("max_sweeps must be positive")
    if kernel not in KERNELS:
        raise ConfigError(f"unknown kernel {kernel!r}; expected one of "
                          f"{KERNELS}")
    if kernel == "levels" and order is not None:
        raise ConfigError(
            "kernel='levels' batches the influence order and cannot honor "
            "a custom sweep order; use kernel='pernode' with order=...")
    if kernel == "auto":
        kernel = "pernode" if order is not None else "levels"

    if obs is not None and telemetry is None:
        telemetry = obs.telemetry

    n = graph.num_nodes
    if n == 0:
        return PageRankResult(np.zeros(0), 0, 0.0, True)

    jump_vector = validate_jump(jump, n)
    weights = validate_edge_weights(graph, edge_weights)

    # Per-edge transition probability, grouped by *destination* so each
    # node can pull from its in-neighbours during the sweep.
    src_of_edge = np.repeat(np.arange(n, dtype=np.int64),
                            np.diff(graph.indptr))
    strengths = np.bincount(src_of_edge, weights=weights, minlength=n)
    dangling = strengths == 0.0
    probability = weights / np.where(dangling, 1.0, strengths)[src_of_edge]

    # Regroup edges by destination so each node can pull from its
    # in-neighbours during the sweep.
    dst_of_edge = graph.indices
    order_by_dst = np.argsort(dst_of_edge, kind="stable")
    in_prob = probability[order_by_dst]
    in_src = src_of_edge[order_by_dst]
    in_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(dst_of_edge, minlength=n), out=in_ptr[1:])

    if kernel == "levels":
        plan = _LevelPlan(graph, in_ptr, in_src, in_prob)
        sweep_order = None
        if telemetry is not None:
            telemetry.set_counter("levels", plan.num_levels)
    else:
        plan = None
        sweep_order = np.asarray(order if order is not None
                                 else influence_order(graph),
                                 dtype=np.int64)
        if sorted(sweep_order.tolist()) != list(range(n)):
            raise ConfigError(
                "order must be a permutation of all node indices")

    validated = validate_initial(initial, n)
    scores = validated.copy() if validated is not None \
        else jump_vector.copy()

    span = obs.span("gauss_seidel.solve", nodes=n, edges=graph.num_edges,
                    kernel=kernel) \
        if obs is not None else nullcontext()
    stream = telemetry.open_stream("gauss_seidel") \
        if telemetry is not None else None
    with span:
        residual = float("inf")
        sweeps = 0
        for sweeps in range(1, max_sweeps + 1):
            sweep_start = time.perf_counter()
            previous = scores.copy()
            dangling_mass = float(scores[dangling].sum())
            if plan is not None:
                _levels_sweep(plan, scores, in_ptr, in_src, in_prob,
                              damping, dangling_mass, jump_vector)
            else:
                for node in sweep_order:
                    start, stop = in_ptr[node], in_ptr[node + 1]
                    pulled = float(np.dot(in_prob[start:stop],
                                          scores[in_src[start:stop]]))
                    scores[node] = damping * (pulled + dangling_mass
                                              * jump_vector[node]) \
                        + (1.0 - damping) * jump_vector[node]
            scores /= scores.sum()
            change = np.abs(scores - previous)
            residual = float(change.sum())
            if telemetry is not None:
                telemetry.record_iteration(residual, dangling_mass)
                stream.record(
                    residual, delta=float(change.max()),
                    active=int(np.count_nonzero(change > tol)),
                    seconds=time.perf_counter() - sweep_start)
            if residual <= tol:
                return PageRankResult(scores, sweeps, residual, True)
    if raise_on_divergence:
        raise ConvergenceError(
            f"Gauss-Seidel PageRank did not reach tol={tol} in "
            f"{max_sweeps} sweeps (residual={residual:.3e})",
            sweeps, residual)
    return PageRankResult(scores, sweeps, residual, False)
