"""Gauss–Seidel PageRank: in-place sweeps in a caller-chosen node order.

On a citation graph — which is acyclic up to a few mutual-citation cycles —
score flows strictly from newer to older articles. Sweeping nodes so that
every node is updated *after* the nodes that feed it makes one sweep
propagate information across the whole graph, instead of one hop per
iteration as in Jacobi/power iteration. This is the batch TWPR
optimization benchmarked in E4: on a DAG it converges in a handful of
sweeps at the same fixed point as :func:`repro.ranking.pagerank.pagerank`.

The dangling correction uses the *current* (partially updated) scores for
the dangling sum, updated lazily once per sweep; the fixed point is
identical because at convergence the scores stop changing.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.errors import ConfigError, ConvergenceError
from repro.graph.csr import CSRGraph
from repro.graph.scc import condensation
from repro.graph.toposort import topological_sort
from repro.ranking.pagerank import (
    PageRankResult,
    validate_initial,
    validate_jump,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.handle import Observability
    from repro.obs.telemetry import SolverTelemetry


def influence_order(graph: CSRGraph) -> np.ndarray:
    """Node order such that score sources come before their targets.

    An edge ``u -> v`` passes score from ``u`` to ``v``, so ``u`` should be
    swept first: this is plain topological order. Cyclic graphs fall back
    to topological order of the SCC condensation (members of one SCC are
    swept together, in index order).
    """
    order = topological_sort(graph)
    if order is not None:
        return np.asarray(order, dtype=np.int64)
    dag, membership = condensation(graph)
    component_order = topological_sort(dag)
    if component_order is None:  # pragma: no cover - condensation is a DAG
        raise ConfigError("condensation was not acyclic")
    rank_of_component = np.empty(dag.num_nodes, dtype=np.int64)
    for rank, component in enumerate(component_order):
        rank_of_component[component] = rank
    keys = rank_of_component[membership]
    return np.argsort(keys, kind="stable").astype(np.int64)


def gauss_seidel_pagerank(graph: CSRGraph, damping: float = 0.85,
                          tol: float = 1e-10, max_sweeps: int = 100,
                          jump: Optional[np.ndarray] = None,
                          edge_weights: Optional[np.ndarray] = None,
                          order: Optional[Sequence[int]] = None,
                          initial: Optional[np.ndarray] = None,
                          raise_on_divergence: bool = False,
                          telemetry: Optional["SolverTelemetry"] = None,
                          obs: Optional["Observability"] = None
                          ) -> PageRankResult:
    """PageRank via Gauss–Seidel sweeps.

    Args mirror :func:`repro.ranking.pagerank.pagerank`; additionally
    ``order`` fixes the sweep order (default: :func:`influence_order`).
    Convergence is measured as the L1 change of one full sweep.
    ``telemetry`` (optional) records the per-sweep residual and
    dangling-mass trajectory plus a ``"gauss_seidel"`` convergence
    stream, without affecting the result. ``obs`` wraps the sweeps in
    a ``gauss_seidel.solve`` span and supplies telemetry when
    ``telemetry`` itself is not given.
    """
    if not 0.0 <= damping < 1.0:
        raise ConfigError(f"damping must be in [0, 1), got {damping}")
    if tol <= 0:
        raise ConfigError("tol must be positive")
    if max_sweeps <= 0:
        raise ConfigError("max_sweeps must be positive")

    if obs is not None and telemetry is None:
        telemetry = obs.telemetry

    n = graph.num_nodes
    if n == 0:
        return PageRankResult(np.zeros(0), 0, 0.0, True)

    jump_vector = validate_jump(jump, n)
    weights = graph.weights if edge_weights is None \
        else np.asarray(edge_weights, dtype=np.float64)
    if weights.shape != graph.weights.shape:
        raise ConfigError("edge_weights must align with graph edges")
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ConfigError("edge weights must be finite and non-negative")

    # Per-edge transition probability, grouped by *destination* so each
    # node can pull from its in-neighbours during the sweep.
    src_of_edge = np.repeat(np.arange(n, dtype=np.int64),
                            np.diff(graph.indptr))
    strengths = np.bincount(src_of_edge, weights=weights, minlength=n)
    dangling = strengths == 0.0
    probability = weights / np.where(dangling, 1.0, strengths)[src_of_edge]

    # Regroup edges by destination so each node can pull from its
    # in-neighbours during the sweep.
    dst_of_edge = graph.indices
    order_by_dst = np.argsort(dst_of_edge, kind="stable")
    in_prob = probability[order_by_dst]
    in_src = src_of_edge[order_by_dst]
    in_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(dst_of_edge, minlength=n), out=in_ptr[1:])

    sweep_order = np.asarray(order if order is not None
                             else influence_order(graph), dtype=np.int64)
    if sorted(sweep_order.tolist()) != list(range(n)):
        raise ConfigError("order must be a permutation of all node indices")

    validated = validate_initial(initial, n)
    scores = validated.copy() if validated is not None \
        else jump_vector.copy()

    span = obs.span("gauss_seidel.solve", nodes=n, edges=graph.num_edges) \
        if obs is not None else nullcontext()
    stream = telemetry.open_stream("gauss_seidel") \
        if telemetry is not None else None
    with span:
        residual = float("inf")
        sweeps = 0
        for sweeps in range(1, max_sweeps + 1):
            sweep_start = time.perf_counter()
            previous = scores.copy()
            dangling_mass = float(scores[dangling].sum())
            for node in sweep_order:
                start, stop = in_ptr[node], in_ptr[node + 1]
                pulled = float(np.dot(in_prob[start:stop],
                                      scores[in_src[start:stop]]))
                scores[node] = damping * (pulled + dangling_mass
                                          * jump_vector[node]) \
                    + (1.0 - damping) * jump_vector[node]
            scores /= scores.sum()
            change = np.abs(scores - previous)
            residual = float(change.sum())
            if telemetry is not None:
                telemetry.record_iteration(residual, dangling_mass)
                stream.record(
                    residual, delta=float(change.max()),
                    active=int(np.count_nonzero(change > tol)),
                    seconds=time.perf_counter() - sweep_start)
            if residual <= tol:
                return PageRankResult(scores, sweeps, residual, True)
    if raise_on_divergence:
        raise ConvergenceError(
            f"Gauss-Seidel PageRank did not reach tol={tol} in "
            f"{max_sweeps} sweeps (residual={residual:.3e})",
            sweeps, residual)
    return PageRankResult(scores, sweeps, residual, False)
