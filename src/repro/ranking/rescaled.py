"""Rescaled PageRank (Mariani, Medo & Zhang, 2016).

Static PageRank is biased against recent articles: they simply have not
had time to accumulate citations. Rescaled PageRank removes the age bias
*post hoc*: each article's PageRank is standardized against the
PageRank distribution of its temporal neighbourhood — the ``window``
articles published immediately around it in time order:

    R(i) = (PR(i) - mean(PR(window_i))) / std(PR(window_i))

A z-score of how exceptional an article is *for its age cohort*. This is
the strongest purely structural time-corrected baseline and a natural
comparison for the paper's time-weighted approach.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.ranking.pagerank import pagerank


def rescale_by_age(scores: np.ndarray, years: np.ndarray,
                   window: int = 1000) -> np.ndarray:
    """Standardize ``scores`` within a sliding temporal window.

    Articles are ordered by ``(year, index)``; each article's mean/std
    is taken over the ``window`` nearest articles in that order (clipped
    at the corpus boundaries, so every window has exactly
    ``min(window, n)`` members). Zero-variance windows yield 0.
    """
    scores = np.asarray(scores, dtype=np.float64)
    years = np.asarray(years)
    if scores.shape != years.shape:
        raise ConfigError("scores and years must align")
    if window < 2:
        raise ConfigError("window must be at least 2")
    n = len(scores)
    if n == 0:
        return scores.copy()

    order = np.lexsort((np.arange(n), years))
    ordered = scores[order]
    width = min(window, n)

    # Sliding-window mean/std via cumulative sums; windows are clipped
    # to [0, n) and shifted to keep exactly `width` members.
    starts = np.arange(n) - width // 2
    starts = np.clip(starts, 0, n - width)
    stops = starts + width
    cumsum = np.concatenate([[0.0], np.cumsum(ordered)])
    cumsq = np.concatenate([[0.0], np.cumsum(ordered ** 2)])
    mean = (cumsum[stops] - cumsum[starts]) / width
    variance = (cumsq[stops] - cumsq[starts]) / width - mean ** 2
    std = np.sqrt(np.maximum(variance, 0.0))

    rescaled_ordered = np.zeros(n, dtype=np.float64)
    positive = std > 0
    rescaled_ordered[positive] = (ordered[positive] - mean[positive]) \
        / std[positive]
    rescaled = np.empty(n, dtype=np.float64)
    rescaled[order] = rescaled_ordered
    return rescaled


def rescaled_pagerank(graph: CSRGraph, years: np.ndarray,
                      window: int = 1000, damping: float = 0.85,
                      tol: float = 1e-10, max_iter: int = 200
                      ) -> np.ndarray:
    """PageRank standardized against same-age articles."""
    years = np.asarray(years)
    if years.shape != (graph.num_nodes,):
        raise ConfigError("years must align with graph nodes")
    base = pagerank(graph, damping=damping, tol=tol, max_iter=max_iter)
    return rescale_by_age(base.scores, years, window=window)
