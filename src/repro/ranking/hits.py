"""Kleinberg's HITS (authorities and hubs) on a citation graph.

Authority of an article = endorsement by good hubs (surveys citing
important work); hub score = quality of what it cites. The authority
vector is the baseline consumed by the effectiveness experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, ConvergenceError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class HitsResult:
    """Authority/hub vectors plus convergence diagnostics."""

    authorities: np.ndarray
    hubs: np.ndarray
    iterations: int
    residual: float
    converged: bool


def hits(graph: CSRGraph, tol: float = 1e-10, max_iter: int = 200,
         raise_on_divergence: bool = False) -> HitsResult:
    """Run HITS power iteration with L2 normalization each step."""
    if tol <= 0:
        raise ConfigError("tol must be positive")
    if max_iter <= 0:
        raise ConfigError("max_iter must be positive")
    weights = graph.weights
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ConfigError("edge weights must be finite and non-negative")
    n = graph.num_nodes
    if n == 0:
        empty = np.zeros(0)
        return HitsResult(empty, empty.copy(), 0, 0.0, True)

    adjacency = graph.to_scipy()
    adjacency_t = adjacency.T.tocsr()
    authorities = np.full(n, 1.0 / np.sqrt(n))
    hubs = authorities.copy()
    residual = float("inf")
    iterations = 0
    for iterations in range(1, max_iter + 1):
        new_authorities = adjacency_t @ hubs
        norm = np.linalg.norm(new_authorities)
        if norm > 0:
            new_authorities /= norm
        new_hubs = adjacency @ new_authorities
        norm = np.linalg.norm(new_hubs)
        if norm > 0:
            new_hubs /= norm
        residual = float(np.abs(new_authorities - authorities).sum()
                         + np.abs(new_hubs - hubs).sum())
        authorities, hubs = new_authorities, new_hubs
        if residual <= tol:
            return HitsResult(authorities, hubs, iterations, residual, True)
    if raise_on_divergence:
        raise ConvergenceError(
            f"HITS did not reach tol={tol} in {max_iter} iterations",
            iterations, residual)
    return HitsResult(authorities, hubs, iterations, residual, False)
