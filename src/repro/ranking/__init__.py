"""Ranking algorithms: the shared PageRank engine and all baselines.

The paper compares its model against the classic query-independent
rankers; every one of them is implemented here from scratch:

* :func:`~repro.ranking.pagerank.pagerank` — damped power iteration with
  weighted edges, personalization and dangling-mass handling (also the
  engine under Time-Weighted PageRank).
* :func:`~repro.ranking.gauss_seidel.gauss_seidel_pagerank` — in-place
  sweeps in a caller-chosen order; the batch optimization sweeps reverse
  topological order on (near-)acyclic citation graphs.
* :func:`~repro.ranking.citation_count.citation_count` — raw citations.
* :func:`~repro.ranking.simple` — age-normalized citation rate, recency,
  venue-mean: the sanity baselines.
* :func:`~repro.ranking.citerank.citerank` — CiteRank (Walker et al. 2007),
  PageRank with an exponential-recency jump vector.
* :func:`~repro.ranking.futurerank.futurerank` — FutureRank (Sayyadi &
  Getoor 2009), mutual paper/author reinforcement plus a time factor.
* :func:`~repro.ranking.hits.hits` — Kleinberg's HITS.
* :func:`~repro.ranking.prank.prank` — P-Rank (Yan et al. 2011),
  heterogeneous paper/author/venue co-ranking.
* :func:`~repro.ranking.rescaled.rescaled_pagerank` — Rescaled PageRank
  (Mariani et al. 2016), age-cohort z-scores.
* :func:`~repro.ranking.montecarlo.monte_carlo_pagerank` — random-walk
  sampling approximation (Avrachenkov et al. 2007).
"""

from repro.ranking.citation_count import citation_count
from repro.ranking.citerank import citerank
from repro.ranking.futurerank import FutureRankConfig, futurerank
from repro.ranking.gauss_seidel import gauss_seidel_pagerank
from repro.ranking.hits import HitsResult, hits
from repro.ranking.montecarlo import MonteCarloResult, monte_carlo_pagerank
from repro.ranking.pagerank import PageRankResult, pagerank
from repro.ranking.prank import PRankConfig, prank
from repro.ranking.rescaled import rescale_by_age, rescaled_pagerank
from repro.ranking.simple import citation_rate, recency_score, venue_mean

__all__ = [
    "PageRankResult",
    "pagerank",
    "gauss_seidel_pagerank",
    "citation_count",
    "citation_rate",
    "recency_score",
    "venue_mean",
    "citerank",
    "FutureRankConfig",
    "futurerank",
    "HitsResult",
    "hits",
    "MonteCarloResult",
    "monte_carlo_pagerank",
    "PRankConfig",
    "prank",
    "rescale_by_age",
    "rescaled_pagerank",
]
