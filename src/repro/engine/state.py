"""Crash-safe checkpointing for the incremental engine.

A dynamic ranking service must survive restarts without re-solving its
whole history. A checkpoint directory holds the engine's dataset
(JSONL), its numeric state (scores and per-edge time weights, ``.npz``),
its configuration (JSON), and a manifest with per-file SHA-256
checksums; :func:`load_engine` reconstructs an engine that continues
exactly where the saved one stopped — without re-running the initial
TWPR solve.

Crash safety: :func:`save_engine` never touches an existing checkpoint
in place. It writes every file into a hidden sibling temp directory,
seals the manifest last, and only then swaps the temp directory into
place with directory renames — a crash at *any* point leaves either the
old intact checkpoint or the new intact checkpoint, never a torn mix.
:func:`load_engine` verifies sizes and checksums against the manifest
and converts every low-level failure mode (truncated ``.npz``, missing
files, corrupt gzip, mangled JSON) into a :class:`StorageError` whose
message says what to do, instead of leaking raw ``numpy``/``zipfile``
exceptions. ``docs/OPERATIONS.md`` documents the on-disk format.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import StorageError
from repro.core.time_weight import exponential_decay
from repro.data.io import load_dataset_jsonl, save_dataset_jsonl
from repro.engine.incremental import IncrementalEngine
from repro.resilience import FaultPlan

PathLike = Union[str, Path]

_DATASET_FILE = "dataset.jsonl.gz"
_ARRAYS_FILE = "state.npz"
_CONFIG_FILE = "engine.json"
_MANIFEST_FILE = "MANIFEST.json"
# v2 adds the checksum manifest; v1 checkpoints (no manifest) still load,
# just without integrity verification.
_FORMAT_VERSION = 2


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def save_engine(engine: IncrementalEngine, directory: PathLike,
                fault_plan: Optional[FaultPlan] = None) -> Path:
    """Atomically write ``engine`` to ``directory`` (created if missing).

    The checkpoint is staged in a hidden temp directory next to the
    target and renamed into place only once every file and the manifest
    are on disk, so a crash mid-save can never corrupt an existing
    checkpoint. ``fault_plan`` is the test harness's hook for injecting
    crashes between writes and post-write truncation; leave it ``None``
    outside the fault-injection suite.
    """
    directory = Path(directory)
    directory.parent.mkdir(parents=True, exist_ok=True)
    staging = directory.parent / f".{directory.name}.tmp"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()

    def wrote(name: str) -> None:
        if fault_plan is not None:
            fault_plan.on_file_written(name)

    save_dataset_jsonl(engine.dataset, staging / _DATASET_FILE)
    wrote(_DATASET_FILE)
    np.savez_compressed(
        staging / _ARRAYS_FILE,
        scores=engine.scores,
        years=engine.years,
        edge_weights=engine._edge_weights,
        node_ids=engine.graph.node_ids,
        indptr=engine.graph.indptr,
        indices=engine.graph.indices,
        graph_weights=engine.graph.weights,
    )
    wrote(_ARRAYS_FILE)
    config = {
        "format_version": _FORMAT_VERSION,
        "damping": engine.damping,
        "delta_threshold": engine.delta_threshold,
        "tol": engine.tol,
        "max_iter": engine.max_iter,
        "decay_rate": getattr(engine.decay, "_repro_rate", None),
    }
    (staging / _CONFIG_FILE).write_text(json.dumps(config, indent=2),
                                        encoding="utf-8")
    wrote(_CONFIG_FILE)

    manifest = {
        "format_version": _FORMAT_VERSION,
        "files": {
            name: {"sha256": _sha256(staging / name),
                   "bytes": (staging / name).stat().st_size}
            for name in (_DATASET_FILE, _ARRAYS_FILE, _CONFIG_FILE)
        },
    }
    (staging / _MANIFEST_FILE).write_text(
        json.dumps(manifest, indent=2), encoding="utf-8")
    wrote(_MANIFEST_FILE)

    if fault_plan is not None:
        # Post-manifest corruption (torn page, bit rot): checksums were
        # computed from the intact content, so load detects the damage.
        for name in (_DATASET_FILE, _ARRAYS_FILE, _CONFIG_FILE):
            keep = fault_plan.truncation_for(name)
            if keep is not None:
                with open(staging / name, "r+b") as handle:
                    handle.truncate(keep)

    # Publish: directory renames are atomic within a filesystem. If a
    # previous checkpoint exists it is parked aside first, so the only
    # crash window leaves a complete old copy next to a complete new one.
    if directory.exists():
        parked = directory.parent / f".{directory.name}.old"
        if parked.exists():
            shutil.rmtree(parked)
        os.rename(directory, parked)
        os.rename(staging, directory)
        shutil.rmtree(parked)
    else:
        os.rename(staging, directory)
    return directory


def verify_checkpoint(directory: PathLike) -> List[str]:
    """Integrity problems of a checkpoint (empty list = healthy).

    Checks directory existence, manifest readability, and every
    manifest-listed file's presence, size, and SHA-256. Legacy v1
    checkpoints (no manifest) report a single advisory problem only if
    their core files are missing.
    """
    directory = Path(directory)
    problems: List[str] = []
    if not directory.is_dir():
        return [f"{directory} is not a checkpoint directory"]
    manifest_path = directory / _MANIFEST_FILE
    if not manifest_path.exists():
        for name in (_CONFIG_FILE, _ARRAYS_FILE, _DATASET_FILE):
            if not (directory / name).exists():
                problems.append(f"missing {name} (and no manifest)")
        return problems
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        files: Dict[str, Dict] = manifest["files"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        return [f"unreadable manifest: {exc}"]
    for name, expected in files.items():
        path = directory / name
        if not path.exists():
            problems.append(f"missing {name}")
            continue
        size = path.stat().st_size
        if size != expected.get("bytes"):
            problems.append(
                f"{name} is {size} bytes, manifest says "
                f"{expected.get('bytes')} (truncated or torn write)")
            continue
        digest = _sha256(path)
        if digest != expected.get("sha256"):
            problems.append(
                f"{name} checksum mismatch (expected "
                f"{str(expected.get('sha256'))[:12]}…, got "
                f"{digest[:12]}…): file is corrupt")
    return problems


def load_engine(directory: PathLike) -> IncrementalEngine:
    """Reconstruct an engine saved by :func:`save_engine`.

    Verifies the manifest checksums first and raises
    :class:`StorageError` with an actionable message on any truncation
    or corruption — restore from an earlier checkpoint rotation in that
    case. The decay kernel is restored only for exponential kernels
    created by :func:`repro.core.time_weight.exponential_decay`;
    checkpoints of engines with custom kernels refuse to load (the
    kernel cannot be serialized faithfully).
    """
    directory = Path(directory)
    config_path = directory / _CONFIG_FILE
    if not config_path.exists():
        raise StorageError(f"no engine checkpoint in {directory}")
    try:
        config = json.loads(config_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError) as exc:
        raise StorageError(
            f"checkpoint config {config_path} is unreadable ({exc}); "
            "restore from an earlier rotation") from exc
    version = config.get("format_version")
    if version not in (1, _FORMAT_VERSION):
        raise StorageError(
            f"unsupported checkpoint version {version!r}")
    if version >= 2:
        problems = verify_checkpoint(directory)
        if problems:
            raise StorageError(
                f"checkpoint {directory} failed integrity verification: "
                + "; ".join(problems)
                + ". Restore from an earlier rotation.")
    if config.get("decay_rate") is None:
        raise StorageError(
            "checkpoint was saved with a non-exponential decay kernel; "
            "reconstruct the engine manually")

    try:
        dataset = load_dataset_jsonl(directory / _DATASET_FILE)
    except StorageError:
        raise
    except Exception as exc:
        raise StorageError(
            f"checkpoint dataset {directory / _DATASET_FILE} is "
            f"unreadable ({exc.__class__.__name__}: {exc}); restore "
            "from an earlier rotation") from exc
    required = ("scores", "years", "edge_weights", "node_ids", "indptr",
                "indices", "graph_weights")
    try:
        with np.load(directory / _ARRAYS_FILE) as arrays:
            loaded = {name: arrays[name] for name in required}
    except Exception as exc:
        raise StorageError(
            f"checkpoint arrays {directory / _ARRAYS_FILE} are "
            f"unreadable or truncated ({exc.__class__.__name__}: {exc});"
            " restore from an earlier rotation") from exc

    engine = IncrementalEngine.__new__(IncrementalEngine)
    engine.damping = float(config["damping"])
    engine.decay = exponential_decay(float(config["decay_rate"]))
    engine.delta_threshold = float(config["delta_threshold"])
    engine.tol = float(config["tol"])
    engine.max_iter = int(config["max_iter"])
    # Telemetry/observability recorders are in-memory observers, never
    # checkpointed; a restored engine starts unobserved (assign
    # engine.telemetry / engine.obs to re-attach them).
    engine.telemetry = None
    engine.obs = None
    engine.dataset = dataset

    from repro.graph.csr import CSRGraph

    engine.graph = CSRGraph(loaded["indptr"], loaded["indices"],
                            loaded["graph_weights"], loaded["node_ids"])
    engine.years = loaded["years"]
    engine.scores = loaded["scores"]
    engine._edge_weights = loaded["edge_weights"]
    if engine.graph.num_nodes != dataset.num_articles:
        raise StorageError("checkpoint arrays do not match its dataset")
    return engine
