"""Checkpointing for the incremental engine.

A dynamic ranking service must survive restarts without re-solving its
whole history. A checkpoint directory holds the engine's dataset
(JSONL), its numeric state (scores and per-edge time weights, ``.npz``)
and its configuration (JSON); :func:`load_engine` reconstructs an engine
that continues exactly where the saved one stopped — without re-running
the initial TWPR solve.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import StorageError
from repro.core.time_weight import exponential_decay
from repro.data.io import load_dataset_jsonl, save_dataset_jsonl
from repro.engine.incremental import IncrementalEngine

PathLike = Union[str, Path]

_DATASET_FILE = "dataset.jsonl.gz"
_ARRAYS_FILE = "state.npz"
_CONFIG_FILE = "engine.json"
_FORMAT_VERSION = 1


def save_engine(engine: IncrementalEngine, directory: PathLike) -> Path:
    """Write ``engine`` to ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_dataset_jsonl(engine.dataset, directory / _DATASET_FILE)
    np.savez_compressed(
        directory / _ARRAYS_FILE,
        scores=engine.scores,
        years=engine.years,
        edge_weights=engine._edge_weights,
        node_ids=engine.graph.node_ids,
        indptr=engine.graph.indptr,
        indices=engine.graph.indices,
        graph_weights=engine.graph.weights,
    )
    config = {
        "format_version": _FORMAT_VERSION,
        "damping": engine.damping,
        "delta_threshold": engine.delta_threshold,
        "tol": engine.tol,
        "max_iter": engine.max_iter,
        "decay_rate": getattr(engine.decay, "_repro_rate", None),
    }
    (directory / _CONFIG_FILE).write_text(json.dumps(config, indent=2),
                                          encoding="utf-8")
    return directory


def load_engine(directory: PathLike) -> IncrementalEngine:
    """Reconstruct an engine saved by :func:`save_engine`.

    The decay kernel is restored only for exponential kernels created by
    :func:`repro.core.time_weight.exponential_decay`; checkpoints of
    engines with custom kernels refuse to load (the kernel cannot be
    serialized faithfully).
    """
    directory = Path(directory)
    config_path = directory / _CONFIG_FILE
    if not config_path.exists():
        raise StorageError(f"no engine checkpoint in {directory}")
    config = json.loads(config_path.read_text(encoding="utf-8"))
    if config.get("format_version") != _FORMAT_VERSION:
        raise StorageError(
            f"unsupported checkpoint version "
            f"{config.get('format_version')!r}")
    if config.get("decay_rate") is None:
        raise StorageError(
            "checkpoint was saved with a non-exponential decay kernel; "
            "reconstruct the engine manually")

    dataset = load_dataset_jsonl(directory / _DATASET_FILE)
    arrays = np.load(directory / _ARRAYS_FILE)

    engine = IncrementalEngine.__new__(IncrementalEngine)
    engine.damping = float(config["damping"])
    engine.decay = exponential_decay(float(config["decay_rate"]))
    engine.delta_threshold = float(config["delta_threshold"])
    engine.tol = float(config["tol"])
    engine.max_iter = int(config["max_iter"])
    # Telemetry recorders are in-memory observers, never checkpointed;
    # a restored engine starts unobserved (assign engine.telemetry to
    # re-attach one).
    engine.telemetry = None
    engine.dataset = dataset

    from repro.graph.csr import CSRGraph

    engine.graph = CSRGraph(arrays["indptr"], arrays["indices"],
                            arrays["graph_weights"], arrays["node_ids"])
    engine.years = arrays["years"]
    engine.scores = arrays["scores"]
    engine._edge_weights = arrays["edge_weights"]
    if engine.graph.num_nodes != dataset.num_articles:
        raise StorageError("checkpoint arrays do not match its dataset")
    return engine
