"""Block-centric (graph-centric) PageRank execution.

Distributed graph systems come in two paradigms. *Vertex-centric*
(Pregel): every superstep, every vertex recomputes from its neighbours'
previous values — one superstep is one Jacobi iteration, and information
travels one hop per superstep. *Graph-centric* (Giraph++ / Blogel): each
worker owns a whole subgraph and, within one superstep, iterates its block
to **local convergence** before exchanging boundary values — information
crosses an entire block per superstep, so far fewer (expensive,
communication-bearing) supersteps are needed.

The paper parallelizes its batch algorithm in the graph-centric paradigm;
this module reproduces the claim measurably on one machine:
:class:`BlockEngine` counts supersteps and boundary messages, and
:func:`vertex_centric_pagerank` provides the Pregel-style baseline with
identical accounting. Wall-clock scaling across real worker processes is
in :mod:`repro.engine.parallel`.

Dangling handling: when the dangling-mass redistribution vector equals
the jump vector (our case — both uniform/personalized identically), the
PageRank vector is the L1-normalized solution of the *leaky* system

    y = damping * P~^T y + (1 - damping) * jump

where ``P~`` simply has zero rows for dangling nodes: reinjected dangling
mass is a rank-one term along ``jump`` that only rescales the solution.
The engines therefore iterate the leaky system — which removes a global
all-to-all coupling and lets blocks/workers converge along real graph
edges only — and normalize once at the end.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.ranking.pagerank import (
    validate_edge_weights,
    validate_initial,
    validate_jump,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.handle import Observability
    from repro.obs.telemetry import SolverTelemetry


@dataclass(frozen=True)
class BlockRankResult:
    """Outcome of a block- or vertex-centric solve with cost accounting.

    ``messages`` counts cross-block edge traversals (the proxy for
    network traffic); ``local_iterations`` sums the inner iterations all
    blocks performed. ``blocks_skipped`` counts block-supersteps elided
    by frontier compaction (always 0 for the vertex-centric baseline and
    with ``compaction=False``) — skipping never changes the scores, the
    residual trajectory or the superstep count, only the work done.
    """

    scores: np.ndarray
    supersteps: int
    messages: int
    local_iterations: int
    residual: float
    converged: bool
    blocks_skipped: int = 0


@dataclass(frozen=True)
class BlockOperators:
    """Per-block solve operators plus the block-coupling structure.

    For block ``b`` with node set ``members[b]``:
    ``internal_ops[b] @ scores[members[b]]`` pulls along within-block
    edges and ``boundary_ops[b] @ scores`` pulls along edges entering
    the block from outside. ``probability`` is the per-edge transition
    probability both operator families were built from (kept for
    diagnostics; the engines never re-consume it). ``source_blocks[b]``
    lists the *other* blocks owning at least one in-edge of block ``b``
    — the dependency structure frontier compaction skips against.
    """

    members: List[np.ndarray]
    internal_ops: List[csr_matrix]
    boundary_ops: List[csr_matrix]
    dangling: np.ndarray
    probability: np.ndarray
    cut_edges: int
    source_blocks: List[np.ndarray]


def _block_operators(graph: CSRGraph, partition: Partition,
                     edge_weights: Optional[np.ndarray]
                     ) -> BlockOperators:
    """Split the pull operator into internal and boundary parts per block.

    Edge weights go through
    :func:`repro.ranking.pagerank.validate_edge_weights` — the same
    guard as every other solver entry point — so a NaN or negative
    override fails loudly here too instead of corrupting the block
    engines' fixed point.
    """
    n = graph.num_nodes
    weights = validate_edge_weights(graph, edge_weights)

    src_idx, dst_idx, _ = graph.edge_array()
    strengths = np.bincount(src_idx, weights=weights, minlength=n)
    dangling = strengths == 0.0
    probability = weights / np.where(dangling, 1.0, strengths)[src_idx]

    assignment = partition.assignment
    internal_mask = assignment[src_idx] == assignment[dst_idx]
    cut_edges = int(np.count_nonzero(~internal_mask))

    # Block-level dependency edges (dst_block <- src_block), deduplicated.
    cut_src = assignment[src_idx[~internal_mask]]
    cut_dst = assignment[dst_idx[~internal_mask]]
    coupling = np.unique(np.stack([cut_dst, cut_src], axis=1), axis=0) \
        if len(cut_src) else np.zeros((0, 2), dtype=np.int64)

    members: List[np.ndarray] = []
    internal_ops: List[csr_matrix] = []
    boundary_ops: List[csr_matrix] = []
    source_blocks: List[np.ndarray] = []
    local_index = np.empty(n, dtype=np.int64)
    for block in range(partition.num_blocks):
        nodes = partition.members(block)
        members.append(nodes)
        local_index[nodes] = np.arange(len(nodes))
        in_block_dst = assignment[dst_idx] == block
        internal = in_block_dst & internal_mask
        boundary = in_block_dst & ~internal_mask
        internal_ops.append(csr_matrix(
            (probability[internal],
             (local_index[dst_idx[internal]],
              local_index[src_idx[internal]])),
            shape=(len(nodes), len(nodes))))
        boundary_ops.append(csr_matrix(
            (probability[boundary],
             (local_index[dst_idx[boundary]], src_idx[boundary])),
            shape=(len(nodes), n)))
        source_blocks.append(coupling[coupling[:, 0] == block, 1])
    return BlockOperators(members, internal_ops, boundary_ops, dangling,
                          probability, cut_edges, source_blocks)


def flatten_block_payload(payload: Dict[int, tuple]
                          ) -> Tuple[Dict[str, np.ndarray],
                                     Dict[int, Tuple[Tuple[int, int],
                                                     Tuple[int, int]]]]:
    """Decompose a worker's block payload into named flat arrays.

    Each block entry ``(internal_op, boundary_op, jump_block, members)``
    becomes eight arrays (CSR triples of both operators, plus the jump
    and member vectors) keyed ``b<id>.<part>``, ready for
    :func:`repro.engine.shm.pack_arrays`. Returns the array dict and the
    per-block operator shapes (the only metadata the arrays themselves
    do not carry). Inverse: :func:`rebuild_block_payload`.
    """
    arrays: Dict[str, np.ndarray] = {}
    shapes: Dict[int, Tuple[Tuple[int, int], Tuple[int, int]]] = {}
    for block_id, (internal, boundary, jump_block, members) \
            in payload.items():
        key = f"b{block_id}."
        arrays[key + "int.data"] = internal.data
        arrays[key + "int.indices"] = internal.indices
        arrays[key + "int.indptr"] = internal.indptr
        arrays[key + "bnd.data"] = boundary.data
        arrays[key + "bnd.indices"] = boundary.indices
        arrays[key + "bnd.indptr"] = boundary.indptr
        arrays[key + "jump"] = jump_block
        arrays[key + "members"] = members
        shapes[block_id] = (tuple(internal.shape), tuple(boundary.shape))
    return arrays, shapes


def rebuild_block_payload(arrays: Dict[str, np.ndarray],
                          shapes: Dict[int, Tuple[Tuple[int, int],
                                                  Tuple[int, int]]]
                          ) -> Dict[int, tuple]:
    """Reassemble a block payload from (shared-memory) array views.

    The CSR operators are rebuilt with ``copy=False`` around the given
    buffers, so a payload attached from shared memory stays zero-copy:
    the worker's ``internal_op @ scores`` reads the coordinator's pages
    directly.
    """
    payload: Dict[int, tuple] = {}
    for block_id, (internal_shape, boundary_shape) in shapes.items():
        key = f"b{block_id}."
        internal = csr_matrix(
            (arrays[key + "int.data"], arrays[key + "int.indices"],
             arrays[key + "int.indptr"]),
            shape=internal_shape, copy=False)
        boundary = csr_matrix(
            (arrays[key + "bnd.data"], arrays[key + "bnd.indices"],
             arrays[key + "bnd.indptr"]),
            shape=boundary_shape, copy=False)
        payload[block_id] = (internal, boundary, arrays[key + "jump"],
                             arrays[key + "members"])
    return payload


def solve_block(internal_op: csr_matrix, external: np.ndarray,
                jump_block: np.ndarray, initial: np.ndarray,
                damping: float, local_tol: float,
                local_max_iter: int) -> Tuple[np.ndarray, int]:
    """Iterate one block to local convergence with fixed external input.

    Solves ``s = damping * (P_bb^T s + external) + (1-damping) * jump_b``
    by Jacobi iteration from ``initial``. Returns the block scores and
    the number of inner iterations. Module-level so worker processes can
    import it.
    """
    scores = initial.copy()
    constant = damping * external + (1.0 - damping) * jump_block
    iterations = 0
    for iterations in range(1, local_max_iter + 1):
        updated = damping * (internal_op @ scores) + constant
        change = float(np.abs(updated - scores).sum())
        scores = updated
        if change <= local_tol:
            break
    return scores, iterations


class BlockEngine:
    """Sequential graph-centric PageRank over a partitioned graph.

    The fixed point matches :func:`repro.ranking.pagerank.pagerank` with
    the same damping/jump/weights; only the path (and the communication
    cost) differs.
    """

    def __init__(self, graph: CSRGraph, partition: Partition,
                 damping: float = 0.85,
                 jump: Optional[np.ndarray] = None,
                 edge_weights: Optional[np.ndarray] = None) -> None:
        if partition.num_nodes != graph.num_nodes:
            raise ConfigError("partition does not cover this graph")
        if not 0.0 <= damping < 1.0:
            raise ConfigError(f"damping must be in [0, 1), got {damping}")
        self.graph = graph
        self.partition = partition
        self.damping = damping
        self.jump = validate_jump(jump, graph.num_nodes)
        operators = _block_operators(graph, partition, edge_weights)
        self._members = operators.members
        self._internal_ops = operators.internal_ops
        self._boundary_ops = operators.boundary_ops
        self._dangling = operators.dangling
        self._cut_edges = operators.cut_edges
        self._source_blocks = operators.source_blocks

    def run(self, tol: float = 1e-10, max_supersteps: int = 100,
            local_tol: float = 1e-12, local_max_iter: int = 50,
            initial: Optional[np.ndarray] = None,
            block_order: Optional[Sequence[int]] = None,
            compaction: bool = True,
            telemetry: Optional["SolverTelemetry"] = None,
            obs: Optional["Observability"] = None
            ) -> BlockRankResult:
        """Iterate supersteps until the global L1 change drops below tol.

        Within a superstep, blocks consume the *freshest* available
        scores (Gauss–Seidel across blocks) — the asynchronous-within-
        partition behaviour that gives graph-centric systems their
        superstep advantage. ``block_order`` fixes the processing order;
        the default walks blocks from the highest node indices down,
        which, for a time-ordered range partition of a citation graph,
        processes citing cohorts before the cohorts they cite.

        ``compaction`` (default on) skips a block's inner solve and
        boundary pull when the skip is provably a bit-exact no-op: the
        block's own scores did not change (bitwise) during the previous
        superstep, no in-edge source block changed during the previous
        superstep, and no in-edge source block has been re-solved
        earlier in this superstep. Under that condition the block's
        external input and starting point are bitwise identical to its
        last solve, and ``solve_block`` is deterministic — so scores,
        residual trajectory and superstep count are unchanged; only
        ``local_iterations`` drops and ``blocks_skipped`` counts the
        elided work. Message accounting is intentionally untouched (a
        skip saves compute, not the superstep's cut-edge exchange
        budget, which E5 compares against the vertex-centric baseline).

        ``telemetry`` (optional) records, per superstep: wall-clock,
        boundary messages, global residual and per-block inner
        iterations (0 for skipped blocks), plus a ``blocks_skipped``
        counter. The fixed point is unchanged with it on or off.
        """
        if tol <= 0 or local_tol <= 0:
            raise ConfigError("tolerances must be positive")
        if max_supersteps <= 0 or local_max_iter <= 0:
            raise ConfigError("iteration budgets must be positive")
        if obs is not None and telemetry is None:
            telemetry = obs.telemetry
        n = self.graph.num_nodes
        if n == 0:
            return BlockRankResult(np.zeros(0), 0, 0, 0, 0.0, True)
        order = list(block_order) if block_order is not None \
            else list(range(self.partition.num_blocks - 1, -1, -1))
        if sorted(order) != list(range(self.partition.num_blocks)):
            raise ConfigError("block_order must permute all blocks")

        validated = validate_initial(initial, n)
        scores = self.jump.copy() if validated is None \
            else validated.copy()
        span = obs.span("block_engine.run", nodes=n,
                        blocks=self.partition.num_blocks) \
            if obs is not None else nullcontext()
        stream = telemetry.open_stream("block_engine", kind="superstep") \
            if telemetry is not None else None
        with span:
            messages = 0
            local_iterations = 0
            blocks_skipped = 0
            residual = float("inf")
            supersteps = 0
            changed_prev = np.ones(self.partition.num_blocks, dtype=bool)
            for supersteps in range(1, max_supersteps + 1):
                superstep_start = time.perf_counter()
                block_iterations: Optional[dict] = \
                    {} if telemetry is not None else None
                previous = scores.copy()
                current = scores.copy()
                step_local = 0
                step_skipped = 0
                resolved = np.zeros(self.partition.num_blocks,
                                    dtype=bool)
                changed_now = np.zeros(self.partition.num_blocks,
                                       dtype=bool)
                for block in order:
                    sources = self._source_blocks[block]
                    if compaction and not (
                            changed_prev[block]
                            or changed_prev[sources].any()
                            or resolved[sources].any()):
                        # Bit-exact no-op: same external, same start,
                        # deterministic solve — skip it.
                        step_skipped += 1
                        if block_iterations is not None:
                            block_iterations[block] = 0
                        continue
                    nodes = self._members[block]
                    external = self._boundary_ops[block] @ current
                    block_scores, inner = solve_block(
                        self._internal_ops[block], external,
                        self.jump[nodes], current[nodes], self.damping,
                        local_tol, local_max_iter)
                    changed_now[block] = not np.array_equal(
                        block_scores, previous[nodes])
                    resolved[block] = True
                    current[nodes] = block_scores
                    step_local += inner
                    if block_iterations is not None:
                        block_iterations[block] = inner
                changed_prev = changed_now
                local_iterations += step_local
                blocks_skipped += step_skipped
                if telemetry is not None and step_skipped:
                    telemetry.incr("blocks_skipped", step_skipped)
                messages += self._cut_edges
                change = np.abs(current - previous)
                residual = float(change.sum())
                scores = current
                if telemetry is not None:
                    seconds = time.perf_counter() - superstep_start
                    telemetry.record_superstep(
                        seconds, self._cut_edges, residual,
                        local_iterations=step_local,
                        block_iterations=block_iterations)
                    stream.record(
                        residual, delta=float(change.max()),
                        active=int(np.count_nonzero(change > tol)),
                        seconds=seconds)
                if residual <= tol:
                    break
        converged = residual <= tol
        scores = scores / scores.sum()
        return BlockRankResult(scores, supersteps, messages,
                               local_iterations, residual, converged,
                               blocks_skipped)


def vertex_centric_pagerank(graph: CSRGraph, partition: Partition,
                            damping: float = 0.85, tol: float = 1e-10,
                            max_supersteps: int = 200,
                            jump: Optional[np.ndarray] = None,
                            edge_weights: Optional[np.ndarray] = None,
                            telemetry: Optional["SolverTelemetry"] = None,
                            obs: Optional["Observability"] = None
                            ) -> BlockRankResult:
    """Pregel-style baseline: one Jacobi iteration per superstep.

    Identical accounting to :class:`BlockEngine` — every superstep sends
    every cut edge once — so the two are directly comparable in the E5
    tables.
    """
    if not 0.0 <= damping < 1.0:
        raise ConfigError(f"damping must be in [0, 1), got {damping}")
    if tol <= 0 or max_supersteps <= 0:
        raise ConfigError("tol and max_supersteps must be positive")
    if obs is not None and telemetry is None:
        telemetry = obs.telemetry
    n = graph.num_nodes
    if n == 0:
        return BlockRankResult(np.zeros(0), 0, 0, 0, 0.0, True)
    if partition.num_nodes != n:
        raise ConfigError("partition does not cover this graph")

    from repro.ranking.pagerank import build_transition

    transition_t, _ = build_transition(graph, edge_weights)
    jump_vector = validate_jump(jump, n)
    cut = partition.edge_cut(graph)

    scores = jump_vector.copy()
    span = obs.span("vertex_centric.run", nodes=n,
                    blocks=partition.num_blocks) \
        if obs is not None else nullcontext()
    stream = telemetry.open_stream("vertex_centric", kind="superstep") \
        if telemetry is not None else None
    with span:
        messages = 0
        residual = float("inf")
        supersteps = 0
        for supersteps in range(1, max_supersteps + 1):
            superstep_start = time.perf_counter()
            new_scores = damping * (transition_t @ scores) \
                + (1.0 - damping) * jump_vector
            messages += cut
            change = np.abs(new_scores - scores)
            residual = float(change.sum())
            scores = new_scores
            if telemetry is not None:
                seconds = time.perf_counter() - superstep_start
                telemetry.record_superstep(seconds, cut, residual,
                                           local_iterations=1)
                stream.record(
                    residual, delta=float(change.max()),
                    active=int(np.count_nonzero(change > tol)),
                    seconds=seconds)
            if residual <= tol:
                break
    converged = residual <= tol
    scores = scores / scores.sum()
    return BlockRankResult(scores, supersteps, messages, supersteps,
                           residual, converged)
