"""LiveRanker: full-model dynamic article ranking.

The incremental engine maintains the expensive part of the model —
TWPR prestige — under arrival batches; every other stage of the
assembled model (popularity, venue and author importance, the blend) is
linear-time and recomputed exactly per batch. :class:`LiveRanker` wires
the two together into the interface a live scholarly index would run:

    live = LiveRanker(bootstrap_dataset)
    for batch in arrivals:
        result, report = live.apply(batch)   # full RankingResult

A live service also has to survive its host: with ``checkpoint_dir``
set, the ranker writes a crash-safe checkpoint rotation every
``checkpoint_every`` batches (keeping the newest ``checkpoint_keep``),
and :meth:`LiveRanker.resume` restarts mid-stream from the newest
*intact* rotation — corrupt or torn rotations are skipped, not fatal.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from contextlib import nullcontext
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

from repro.errors import ConfigError, StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.handle import Observability
    from repro.obs.telemetry import SolverTelemetry
from repro.core.model import ArticleRanker, RankerConfig, RankingResult
from repro.core.time_weight import exponential_decay
from repro.data.schema import ScholarlyDataset
from repro.engine.incremental import IncrementalEngine, IncrementalReport
from repro.engine.state import load_engine, save_engine
from repro.engine.updates import UpdateBatch

PathLike = Union[str, Path]

_LIVE_FILE = "live.json"
_ROTATION_PATTERN = re.compile(r"^ckpt-(\d{8})$")


def checkpoint_rotations(directory: PathLike) -> List[Path]:
    """Rotation directories under a live checkpoint root, newest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    rotations = [path for path in directory.iterdir()
                 if path.is_dir() and _ROTATION_PATTERN.match(path.name)]
    return sorted(rotations, key=lambda p: p.name, reverse=True)


class LiveRanker:
    """Maintains the full article ranking under update batches."""

    def __init__(self, dataset: ScholarlyDataset,
                 config: Optional[RankerConfig] = None,
                 delta_threshold: float = 1e-3,
                 telemetry: Optional["SolverTelemetry"] = None,
                 obs: Optional["Observability"] = None,
                 checkpoint_dir: Optional[PathLike] = None,
                 checkpoint_every: int = 0,
                 checkpoint_keep: int = 3,
                 fault_plan=None) -> None:
        """Bootstrap on ``dataset`` (one exact solve), then stay live.

        ``config.solver`` is ignored (prestige is maintained by the
        incremental engine); ``config.observation_year`` must be unset —
        the observation horizon tracks the newest article automatically.
        ``telemetry`` is handed to the incremental engine, so every
        applied batch appends one affected-area record; ``obs`` (an
        :class:`repro.obs.Observability` handle) additionally traces the
        bootstrap and every applied batch. The rankings are unchanged
        with either on or off.

        ``checkpoint_dir`` opts into crash safety: every
        ``checkpoint_every`` batches (0 = only on explicit
        :meth:`checkpoint` calls) the engine state is saved atomically
        under ``checkpoint_dir/ckpt-<batches>``, keeping the newest
        ``checkpoint_keep`` rotations.

        ``fault_plan`` (a :class:`repro.resilience.FaultPlan`) is handed
        to every checkpoint save — the fault-injection suite's hook for
        crashing mid-save; leave it ``None`` in production.
        """
        self.config = config or RankerConfig()
        if self.config.observation_year is not None:
            raise ConfigError(
                "LiveRanker manages the observation horizon itself; "
                "leave observation_year unset")
        if checkpoint_every < 0:
            raise ConfigError("checkpoint_every must be >= 0")
        if checkpoint_keep < 1:
            raise ConfigError("checkpoint_keep must be >= 1")
        if checkpoint_every > 0 and checkpoint_dir is None:
            raise ConfigError(
                "checkpoint_every needs a checkpoint_dir to write to")
        self._ranker = ArticleRanker(self.config)
        self._obs = obs
        self._engine = IncrementalEngine(
            dataset,
            damping=self.config.damping,
            decay=exponential_decay(self.config.prestige_decay),
            delta_threshold=delta_threshold,
            tol=self.config.tol,
            max_iter=self.config.max_iter,
            telemetry=telemetry,
            obs=obs)
        self._result = self._ranker.rank_with_prestige(
            dataset, self._engine.scores, graph=self._engine.graph,
            obs=obs)
        self._batches_applied = 0
        self._checkpoint_dir = None if checkpoint_dir is None \
            else Path(checkpoint_dir)
        self._checkpoint_every = checkpoint_every
        self._checkpoint_keep = checkpoint_keep
        self._fault_plan = fault_plan

    # ------------------------------------------------------------------

    @property
    def dataset(self) -> ScholarlyDataset:
        return self._engine.dataset

    @property
    def result(self) -> RankingResult:
        """The current full-model ranking."""
        return self._result

    @property
    def checkpoint_dir(self) -> Optional[Path]:
        """Where rotations go, or ``None`` when checkpointing is off.

        Callers that layer their own durability on top (the ingest
        pipeline commits its journal cursor only after a rotation
        lands) use this to decide whether checkpoints exist at all.
        """
        return self._checkpoint_dir

    @property
    def batches_applied(self) -> int:
        """Update batches ingested since bootstrap (or since the batch
        count of the rotation this session resumed from)."""
        return self._batches_applied

    def apply(self, batch: UpdateBatch
              ) -> Tuple[RankingResult, IncrementalReport]:
        """Ingest one batch; return the refreshed ranking and a report."""
        report = self._engine.apply(batch)
        self._result = self._ranker.rank_with_prestige(
            self._engine.dataset, self._engine.scores,
            graph=self._engine.graph, obs=self._obs)
        self._batches_applied += 1
        if (self._checkpoint_every
                and self._batches_applied % self._checkpoint_every == 0):
            self.checkpoint()
        return self._result, report

    def prestige_error_vs_exact(self) -> float:
        """Drift of maintained prestige vs a cold solve (L1)."""
        return self._engine.error_vs_exact()

    # ------------------------------------------------------------------
    # crash safety

    def checkpoint(self) -> Path:
        """Write one rotation now and prune old ones; returns its path."""
        if self._checkpoint_dir is None:
            raise ConfigError(
                "no checkpoint_dir configured on this LiveRanker")
        root = self._checkpoint_dir
        root.mkdir(parents=True, exist_ok=True)
        rotation = root / f"ckpt-{self._batches_applied:08d}"
        span = self._obs.span("live.checkpoint",
                              batches=self._batches_applied) \
            if self._obs is not None else nullcontext()
        with span:
            self._write_live_metadata(root)
            # Prune *before* saving as well as after: a crash between a
            # past save and its prune leaves keep+1 rotations behind,
            # and without this pass repeated crash-restart cycles would
            # accumulate rotations indefinitely. Only rotations already
            # beyond checkpoint_keep are touched — never fresh data.
            for stale in checkpoint_rotations(root)[self._checkpoint_keep:]:
                shutil.rmtree(stale)
            save_engine(self._engine, rotation,
                        fault_plan=self._fault_plan)
            for stale in checkpoint_rotations(root)[self._checkpoint_keep:]:
                shutil.rmtree(stale)
        if self._obs is not None:
            self._obs.metrics.counter(
                "repro_checkpoints_total",
                "Live checkpoint rotations written.").inc()
        return rotation

    def _write_live_metadata(self, root: Path) -> None:
        """Session metadata resume() needs beyond the engine state."""
        payload = {
            "format_version": 1,
            "config": asdict(self.config),
            "checkpoint_every": self._checkpoint_every,
            "checkpoint_keep": self._checkpoint_keep,
        }
        staging = root / f".{_LIVE_FILE}.tmp"
        staging.write_text(json.dumps(payload, indent=2),
                           encoding="utf-8")
        os.replace(staging, root / _LIVE_FILE)

    @classmethod
    def resume(cls, directory: PathLike,
               telemetry: Optional["SolverTelemetry"] = None,
               obs: Optional["Observability"] = None
               ) -> "LiveRanker":
        """Recover a live session from its checkpoint rotation root.

        Rotations are tried newest-first; a rotation that fails
        integrity verification (truncated file, checksum mismatch, torn
        write) is skipped in favour of the next older one, so a crash
        mid-save costs at most ``checkpoint_every`` batches of progress.
        Raises :class:`StorageError` when no intact rotation remains.
        """
        directory = Path(directory)
        live_path = directory / _LIVE_FILE
        if not live_path.exists():
            raise StorageError(
                f"no live checkpoint in {directory} (missing "
                f"{_LIVE_FILE})")
        try:
            meta = json.loads(live_path.read_text(encoding="utf-8"))
            config = RankerConfig(**meta["config"])
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise StorageError(
                f"live checkpoint metadata {live_path} is unreadable "
                f"({exc})") from exc
        rotations = checkpoint_rotations(directory)
        if not rotations:
            raise StorageError(
                f"live checkpoint {directory} has no rotations")
        failures: List[str] = []
        engine = None
        recovered = None
        for rotation in rotations:
            try:
                engine = load_engine(rotation)
                recovered = rotation
                break
            except StorageError as exc:
                failures.append(f"{rotation.name}: {exc}")
        if engine is None or recovered is None:
            raise StorageError(
                f"no intact checkpoint rotation in {directory}: "
                + " | ".join(failures))

        live = cls.__new__(cls)
        live.config = config
        live._ranker = ArticleRanker(config)
        if obs is not None and telemetry is None:
            telemetry = obs.telemetry
        engine.telemetry = telemetry
        engine.obs = obs
        live._obs = obs
        live._engine = engine
        live._result = live._ranker.rank_with_prestige(
            engine.dataset, engine.scores, graph=engine.graph, obs=obs)
        live._batches_applied = int(
            _ROTATION_PATTERN.match(recovered.name).group(1))
        live._checkpoint_dir = directory
        live._checkpoint_every = int(meta.get("checkpoint_every", 0))
        live._checkpoint_keep = int(meta.get("checkpoint_keep", 3))
        live._fault_plan = None
        return live
