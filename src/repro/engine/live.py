"""LiveRanker: full-model dynamic article ranking.

The incremental engine maintains the expensive part of the model —
TWPR prestige — under arrival batches; every other stage of the
assembled model (popularity, venue and author importance, the blend) is
linear-time and recomputed exactly per batch. :class:`LiveRanker` wires
the two together into the interface a live scholarly index would run:

    live = LiveRanker(bootstrap_dataset)
    for batch in arrivals:
        result, report = live.apply(batch)   # full RankingResult
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.telemetry import SolverTelemetry
from repro.core.model import ArticleRanker, RankerConfig, RankingResult
from repro.core.time_weight import exponential_decay
from repro.data.schema import ScholarlyDataset
from repro.engine.incremental import IncrementalEngine, IncrementalReport
from repro.engine.updates import UpdateBatch


class LiveRanker:
    """Maintains the full article ranking under update batches."""

    def __init__(self, dataset: ScholarlyDataset,
                 config: Optional[RankerConfig] = None,
                 delta_threshold: float = 1e-3,
                 telemetry: Optional["SolverTelemetry"] = None) -> None:
        """Bootstrap on ``dataset`` (one exact solve), then stay live.

        ``config.solver`` is ignored (prestige is maintained by the
        incremental engine); ``config.observation_year`` must be unset —
        the observation horizon tracks the newest article automatically.
        ``telemetry`` is handed to the incremental engine, so every
        applied batch appends one affected-area record; the rankings are
        unchanged with it on or off.
        """
        self.config = config or RankerConfig()
        if self.config.observation_year is not None:
            raise ConfigError(
                "LiveRanker manages the observation horizon itself; "
                "leave observation_year unset")
        self._ranker = ArticleRanker(self.config)
        self._engine = IncrementalEngine(
            dataset,
            damping=self.config.damping,
            decay=exponential_decay(self.config.prestige_decay),
            delta_threshold=delta_threshold,
            tol=self.config.tol,
            max_iter=self.config.max_iter,
            telemetry=telemetry)
        self._result = self._ranker.rank_with_prestige(
            dataset, self._engine.scores, graph=self._engine.graph)

    # ------------------------------------------------------------------

    @property
    def dataset(self) -> ScholarlyDataset:
        return self._engine.dataset

    @property
    def result(self) -> RankingResult:
        """The current full-model ranking."""
        return self._result

    def apply(self, batch: UpdateBatch
              ) -> Tuple[RankingResult, IncrementalReport]:
        """Ingest one batch; return the refreshed ranking and a report."""
        report = self._engine.apply(batch)
        self._result = self._ranker.rank_with_prestige(
            self._engine.dataset, self._engine.scores,
            graph=self._engine.graph)
        return self._result, report

    def prestige_error_vs_exact(self) -> float:
        """Drift of maintained prestige vs a cold solve (L1)."""
        return self._engine.error_vs_exact()
