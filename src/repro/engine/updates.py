"""Update batches for dynamic scholarly ranking.

Real scholarly graphs change almost exclusively by *addition*: new
articles arrive citing existing ones. An :class:`UpdateBatch` models one
such arrival (with any venues/authors the new articles introduce), and
the helpers slice a generated dataset into an initial snapshot plus a
stream of batches — the workload of experiments E6/E7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigError, DatasetError
from repro.data.schema import Article, Author, ScholarlyDataset, Venue


@dataclass(frozen=True)
class BatchProvenance:
    """Where a batch came from and when its records arrived.

    Stamped by the ingest coalescer when it cuts a batch, so every
    layer downstream — engine apply, snapshot publish, shard refresh —
    can tie its work back to the journal offsets it covers and measure
    wall-clock arrival→served freshness without threading extra
    side-channels. Purely observational: nothing in the math reads it.

    * ``first_offset`` / ``last_offset`` — the contiguous journal
      offset range the batch covers (``-1`` when unknown);
    * ``arrivals`` — per-record wall-clock arrival stamps
      (``time.time()`` at pull), in cut order;
    * ``trace_id`` — the trace the batch travels under (empty when the
      pipeline runs without observability).
    """

    first_offset: int = -1
    last_offset: int = -1
    arrivals: Tuple[float, ...] = ()
    trace_id: str = ""

    @property
    def oldest_arrival(self) -> float:
        return min(self.arrivals) if self.arrivals else 0.0


@dataclass(frozen=True)
class UpdateBatch:
    """A unit of graph change arriving at once.

    Two change kinds, matching how scholarly graphs actually evolve:

    * ``articles`` — newly published articles (with their references),
      plus any venues/authors they introduce;
    * ``citations`` — ``(citing, cited)`` pairs added between *existing*
      articles (late reference resolution, errata, lazy indexing).

    ``provenance`` optionally records where the batch came from (see
    :class:`BatchProvenance`); it never affects how the batch applies.
    """

    articles: Tuple[Article, ...]
    venues: Tuple[Venue, ...] = ()
    authors: Tuple[Author, ...] = ()
    citations: Tuple[Tuple[int, int], ...] = ()
    #: excluded from equality: two batches with the same content are
    #: the same batch no matter which journal window delivered them.
    provenance: Optional[BatchProvenance] = field(default=None,
                                                 compare=False)

    @property
    def num_articles(self) -> int:
        return len(self.articles)

    @property
    def num_citations(self) -> int:
        return sum(len(a.references) for a in self.articles) \
            + len(self.citations)


def validate_update_batch(batch: UpdateBatch,
                          dataset: ScholarlyDataset) -> None:
    """Reject structurally malformed batches with a typed error.

    Checks the two mistakes a feed actually makes — the same article
    delivered twice inside one batch, and citation pairs whose
    endpoints exist neither in the batch nor in the dataset — and
    raises :class:`repro.errors.ConfigError` naming every violation,
    instead of letting the batch surface as a
    :class:`~repro.errors.DatasetError` (or worse, an index error)
    deep inside the engine. Dangling ``Article.references`` stay legal:
    the schema tolerates them and graph builders drop them, exactly as
    with parsed dumps.
    """
    problems: List[str] = []
    seen: set = set()
    duplicates: set = set()
    for article in batch.articles:
        if article.id in seen:
            duplicates.add(article.id)
        seen.add(article.id)
    if duplicates:
        listed = ", ".join(str(d) for d in sorted(duplicates)[:5])
        problems.append(
            f"{len(duplicates)} article id(s) appear more than once "
            f"within the batch ({listed}{', ...' if len(duplicates) > 5 else ''})")
    known = dataset.articles
    missing: set = set()
    for citing, cited in batch.citations:
        for endpoint in (citing, cited):
            if endpoint not in known and endpoint not in seen:
                missing.add(endpoint)
    if missing:
        listed = ", ".join(str(m) for m in sorted(missing)[:5])
        problems.append(
            f"{len(missing)} citation endpoint(s) exist neither in the "
            f"batch nor in the dataset ({listed}"
            f"{', ...' if len(missing) > 5 else ''})")
    if problems:
        raise ConfigError("malformed update batch: "
                          + "; ".join(problems))


def apply_update(dataset: ScholarlyDataset,
                 batch: UpdateBatch) -> ScholarlyDataset:
    """Return a new dataset with ``batch`` applied (input is untouched).

    New article ids must not collide with existing ones; venues/authors
    already present are tolerated in the batch (no-ops). Edge additions
    in ``batch.citations`` must reference articles that exist after the
    article additions; duplicates of existing references are no-ops.
    """
    updated = ScholarlyDataset(name=dataset.name)
    updated.articles.update(dataset.articles)
    updated.venues.update(dataset.venues)
    updated.authors.update(dataset.authors)
    for venue in batch.venues:
        if venue.id not in updated.venues:
            updated.add_venue(venue)
    for author in batch.authors:
        if author.id not in updated.authors:
            updated.add_author(author)
    for article in batch.articles:
        updated.add_article(article)
    for citing, cited in batch.citations:
        if citing not in updated.articles:
            raise DatasetError(
                f"citation update references unknown article {citing}")
        if cited not in updated.articles:
            raise DatasetError(
                f"citation update references unknown article {cited}")
        if citing == cited:
            raise DatasetError(f"citation update is a self-citation "
                               f"({citing})")
        article = updated.articles[citing]
        if cited not in article.references:
            updated.articles[citing] = Article(
                id=article.id, title=article.title, year=article.year,
                venue_id=article.venue_id, author_ids=article.author_ids,
                references=article.references + (cited,),
                quality=article.quality)
    return updated


def _missing_entities(dataset_venues, dataset_authors,
                      articles: List[Article], source: ScholarlyDataset
                      ) -> Tuple[Tuple[Venue, ...], Tuple[Author, ...]]:
    """Entities used by ``articles`` but absent from the base dataset."""
    venues = {}
    authors = {}
    for article in articles:
        if article.venue_id is not None \
                and article.venue_id not in dataset_venues:
            venues[article.venue_id] = source.venues[article.venue_id]
        for author_id in article.author_ids:
            if author_id not in dataset_authors:
                authors[author_id] = source.authors[author_id]
    return tuple(venues.values()), tuple(authors.values())


def yearly_updates(dataset: ScholarlyDataset, from_year: int
                   ) -> Tuple[ScholarlyDataset, List[UpdateBatch]]:
    """Split ``dataset`` into a base snapshot and one batch per year.

    The base holds everything strictly before ``from_year``; each batch
    holds one publication year (ascending). References inside a batch to
    even-newer articles are trimmed so every prefix is self-consistent.
    """
    min_year, max_year = dataset.year_range()
    if not min_year < from_year <= max_year:
        raise DatasetError(
            f"from_year must lie inside ({min_year}, {max_year}]")
    base = dataset.snapshot_until(from_year - 1,
                                  name=f"{dataset.name}@base")
    batches: List[UpdateBatch] = []
    known_venues = set(base.venues)
    known_authors = set(base.authors)
    seen_articles = set(base.articles)
    for year in range(from_year, max_year + 1):
        cohort = dataset.articles_in_year(year)
        if not cohort:
            continue
        cohort_ids = {a.id for a in cohort}
        visible = seen_articles | cohort_ids
        trimmed = [
            Article(id=a.id, title=a.title, year=a.year,
                    venue_id=a.venue_id, author_ids=a.author_ids,
                    references=tuple(r for r in a.references
                                     if r in visible),
                    quality=a.quality)
            for a in cohort
        ]
        venues, authors = _missing_entities(known_venues, known_authors,
                                            trimmed, dataset)
        batches.append(UpdateBatch(articles=tuple(trimmed),
                                   venues=venues, authors=authors))
        known_venues.update(v.id for v in venues)
        known_authors.update(a.id for a in authors)
        seen_articles |= cohort_ids
    return base, batches


def fraction_update(dataset: ScholarlyDataset, fraction: float
                    ) -> Tuple[ScholarlyDataset, UpdateBatch]:
    """Split off the newest ``fraction`` of articles as one batch.

    Articles are ordered by ``(year, id)``; the newest slice becomes the
    batch (its internal cross-references preserved), the rest the base.
    Used to sweep update size in E6.
    """
    if not 0.0 < fraction < 1.0:
        raise DatasetError(f"fraction must be in (0, 1), got {fraction}")
    ordered = sorted(dataset.articles.values(),
                     key=lambda a: (a.year, a.id))
    split = len(ordered) - max(1, int(round(fraction * len(ordered))))
    if split <= 0:
        raise DatasetError("fraction leaves an empty base")
    base_articles = ordered[:split]
    batch_articles = ordered[split:]
    base_ids = {a.id for a in base_articles}

    base = ScholarlyDataset(name=f"{dataset.name}@base")
    for article in base_articles:
        refs = tuple(r for r in article.references if r in base_ids)
        base.articles[article.id] = Article(
            id=article.id, title=article.title, year=article.year,
            venue_id=article.venue_id, author_ids=article.author_ids,
            references=refs, quality=article.quality)
    used_venues = {a.venue_id for a in base_articles
                   if a.venue_id is not None}
    used_authors = {author for a in base_articles
                    for author in a.author_ids}
    for venue_id in used_venues:
        base.venues[venue_id] = dataset.venues[venue_id]
    for author_id in used_authors:
        base.authors[author_id] = dataset.authors[author_id]

    venues, authors = _missing_entities(set(base.venues),
                                        set(base.authors),
                                        batch_articles, dataset)
    batch = UpdateBatch(articles=tuple(batch_articles), venues=venues,
                        authors=authors)
    return base, batch
