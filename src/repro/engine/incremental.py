"""Incremental (dynamic) prestige maintenance.

Recomputing TWPR from scratch on every arrival batch wastes work: a new
article perturbs the stationary distribution mostly *near* the articles
it cites, and the perturbation decays geometrically with distance
(damping < 1 contracts the propagation). The paper's incremental
algorithm exploits this by splitting the graph into an **affected area**
(recomputed by iteration) and an **unaffected area** (scores kept, only
rescaled for the changed node count).

Affected-area discovery: seed every new node and every node whose
in-neighbourhood changed with an estimated score perturbation, then relax
the estimate along out-edges (``estimate * damping * transition
probability``) and keep expanding while the estimate exceeds
``delta_threshold / n``. Small thresholds grow the area toward exactness;
large thresholds keep it tiny and cheap — E7 sweeps this trade-off.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np
from scipy.sparse import csr_matrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.handle import Observability
    from repro.obs.telemetry import SolverTelemetry

from repro.errors import ConfigError
from repro.data.schema import ScholarlyDataset
from repro.core.time_weight import TimeDecay, exponential_decay
from repro.core.twpr import (
    time_weight_edges,
    time_weighted_pagerank,
)
from repro.graph.toposort import ragged_offsets as _ragged_offsets
from repro.engine.updates import (
    UpdateBatch,
    apply_update,
    validate_update_batch,
)
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class AffectedArea:
    """Nodes whose prestige the incremental step re-solves."""

    nodes: np.ndarray
    seeds: np.ndarray
    fraction: float


@dataclass(frozen=True)
class IncrementalReport:
    """Outcome of applying one update batch incrementally."""

    affected: AffectedArea
    iterations: int
    residual: float
    converged: bool
    seconds: float
    num_nodes: int
    num_edges: int


class IncrementalEngine:
    """Maintains TWPR prestige scores under article-arrival batches."""

    def __init__(self, dataset: ScholarlyDataset, damping: float = 0.85,
                 decay: Optional[TimeDecay] = None,
                 delta_threshold: float = 1e-3, tol: float = 1e-10,
                 max_iter: int = 200,
                 telemetry: Optional["SolverTelemetry"] = None,
                 obs: Optional["Observability"] = None) -> None:
        """Solve the initial snapshot exactly and remember its state.

        Args:
            dataset: initial snapshot (taken as-is, not copied).
            damping: TWPR damping factor.
            decay: TWPR time-decay kernel (default exponential(0.1)).
            delta_threshold: affected-area expansion threshold, expressed
                relative to the uniform score (a node joins the affected
                area while its estimated perturbation exceeds
                ``delta_threshold / n``).
            tol / max_iter: convergence control of the re-solves.
            telemetry: optional :class:`repro.obs.SolverTelemetry`; every
                :meth:`apply` appends one batch record (affected-area
                size/fraction, seeds, iterations, residual, seconds).
                Maintained scores are unchanged with it on or off.
            obs: optional :class:`repro.obs.Observability` handle; the
                bootstrap solve and every :meth:`apply` open spans, each
                batch lands in an ``"incremental"`` convergence stream
                (kind ``"batch"``), and counters/gauges track batch
                count and affected fraction.
        """
        if not 0.0 <= damping < 1.0:
            raise ConfigError(f"damping must be in [0, 1), got {damping}")
        if delta_threshold <= 0:
            raise ConfigError("delta_threshold must be positive")
        if tol <= 0 or max_iter <= 0:
            raise ConfigError("tol and max_iter must be positive")
        if obs is not None and telemetry is None:
            telemetry = obs.telemetry
        self.damping = damping
        self.decay = decay if decay is not None else exponential_decay(0.1)
        self.delta_threshold = delta_threshold
        self.tol = tol
        self.max_iter = max_iter
        self.telemetry = telemetry
        self.obs = obs

        self.dataset = dataset
        # (graph, weights, src_idx, dst_idx, strengths) of the last
        # structure pulled — see _pull_structure.
        self._structure_cache: Optional[tuple] = None
        bootstrap_span = obs.span("incremental.bootstrap",
                                  articles=dataset.num_articles) \
            if obs is not None else nullcontext()
        with bootstrap_span:
            self.graph = dataset.citation_csr()
            self.years = dataset.article_years(self.graph)
            self._edge_weights = time_weight_edges(self.graph, self.years,
                                                   self.decay)
            initial = time_weighted_pagerank(
                self.graph, self.years, decay=self.decay, damping=damping,
                tol=tol, max_iter=max_iter, method="auto", obs=obs)
        self.scores = initial.scores

    # ------------------------------------------------------------------

    def scores_by_id(self) -> Dict[int, float]:
        """Current prestige keyed by article id."""
        return {int(node): float(score)
                for node, score in zip(self.graph.node_ids, self.scores)}

    def apply(self, batch: UpdateBatch) -> IncrementalReport:
        """Apply one arrival batch, re-solving only the affected area.

        When the batch's article ids are all larger than every existing id
        (the normal arrival pattern: article ids are time-ordered), the new
        CSR is built by *appending* rows to the old one in O(batch) time —
        no O(n + m) rebuild. Out-of-order ids fall back to a full rebuild.
        """
        # Malformed batches (duplicate ids, unknown citation endpoints)
        # are rejected with a typed ConfigError *before* any state
        # changes, instead of surfacing as deep engine errors halfway
        # through an apply.
        validate_update_batch(batch, self.dataset)
        obs = self.obs
        span = obs.span("incremental.apply",
                        articles=len(batch.articles),
                        citations=len(batch.citations)) \
            if obs is not None else nullcontext()
        with span:
            return self._apply_inner(batch)

    def _apply_inner(self, batch: UpdateBatch) -> IncrementalReport:
        start = time.perf_counter()
        old_n = self.graph.num_nodes
        old_scores = self.scores

        self.dataset = apply_update(self.dataset, batch)
        appended = self._append_graph(batch)
        if appended is None:
            graph = self.dataset.citation_csr()
            years = self.dataset.article_years(graph)
            weights = time_weight_edges(graph, years, self.decay)
            old_index = {int(node): i
                         for i, node in enumerate(self.graph.node_ids)}
            transferred = np.full(graph.num_nodes,
                                  1.0 / graph.num_nodes)
            new_positions = []
            scale = old_n / graph.num_nodes
            for position, node in enumerate(graph.node_ids):
                old_position = old_index.get(int(node))
                if old_position is None:
                    new_positions.append(position)
                else:
                    transferred[position] = \
                        old_scores[old_position] * scale
            new_nodes = np.asarray(new_positions, dtype=np.int64)
            changed_sources = np.zeros(0, dtype=np.int64)
            scores = transferred
        else:
            graph, years, weights, new_nodes, changed_sources = appended
            n = graph.num_nodes
            scores = np.full(n, 1.0 / n, dtype=np.float64)
            scores[:old_n] = old_scores * (old_n / n)

        affected = self._discover_affected(graph, weights, scores,
                                           new_nodes, changed_sources)
        scores, iterations, residual, converged = self._resolve(
            graph, weights, scores, affected.nodes)

        self.graph = graph
        self.years = years
        self._edge_weights = weights
        self.scores = scores
        seconds = time.perf_counter() - start
        if self.telemetry is not None:
            self.telemetry.record_batch(
                affected_nodes=len(affected.nodes),
                affected_fraction=affected.fraction,
                seeds=len(affected.seeds), iterations=iterations,
                residual=residual, seconds=seconds,
                num_nodes=graph.num_nodes, num_edges=graph.num_edges)
            self.telemetry.open_stream("incremental", kind="batch").record(
                residual, active=len(affected.nodes), seconds=seconds)
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_incremental_batches_total",
                "Update batches applied incrementally.").inc()
            self.obs.metrics.gauge(
                "repro_affected_fraction",
                "Affected-area fraction of the last applied batch.").set(
                affected.fraction)
        return IncrementalReport(
            affected=affected, iterations=iterations, residual=residual,
            converged=converged, seconds=seconds,
            num_nodes=graph.num_nodes, num_edges=graph.num_edges)

    def _append_graph(self, batch: UpdateBatch):
        """Extend the CSR without a Python-level full rebuild.

        Pure article arrivals append rows in O(batch); citation
        insertions between existing articles re-sort the combined edge
        arrays in numpy (O(m log m), still far cheaper than rebuilding
        from the dataset). Returns ``None`` when article ids arrive out
        of order (the caller then rebuilds from the dataset), otherwise
        ``(graph, years, edge_time_weights, new_node_indices,
        changed_source_indices)``.
        """
        empty = np.zeros(0, dtype=np.int64)
        if not batch.articles and not batch.citations:
            return (self.graph, self.years, self._edge_weights,
                    empty, empty)
        # The graph is about to change shape (append, merge, or the
        # caller's full rebuild on None): drop the structure cache now
        # so the superseded arrays don't stay alive behind it.
        self._structure_cache = None
        old_n = self.graph.num_nodes
        max_old = int(self.graph.node_ids[-1]) if old_n else -1
        new_articles = sorted(batch.articles, key=lambda a: a.id)
        if new_articles and new_articles[0].id <= max_old:
            return None

        index_of: Dict[int, int] = {
            int(node): i for i, node in enumerate(self.graph.node_ids)}
        for offset, article in enumerate(new_articles):
            index_of[article.id] = old_n + offset

        def edge_weight(citing_year: int, cited_id: int) -> float:
            cited_year = self.dataset.articles[cited_id].year
            gap = np.asarray([max(citing_year - cited_year, 0)],
                             dtype=np.float64)
            return float(self.decay(gap)[0])

        new_counts = []
        new_targets = []
        new_weights = []
        for article in new_articles:
            row = []
            row_weights = []
            for ref in article.references:
                target = index_of.get(ref)
                if target is None or ref == article.id:
                    continue
                row.append(target)
                row_weights.append(edge_weight(article.year, ref))
            new_counts.append(len(row))
            new_targets.extend(row)
            new_weights.extend(row_weights)

        node_ids = np.concatenate([
            self.graph.node_ids,
            np.asarray([a.id for a in new_articles], dtype=np.int64)])
        years = np.concatenate([
            self.years,
            np.asarray([a.year for a in new_articles], dtype=np.int64)])
        new_nodes = np.arange(old_n, old_n + len(new_articles),
                              dtype=np.int64)

        if not batch.citations:
            indptr = np.concatenate([
                self.graph.indptr,
                self.graph.indptr[-1] + np.cumsum(new_counts)])
            indices = np.concatenate([
                self.graph.indices,
                np.asarray(new_targets, dtype=np.int64)])
            ones = np.ones(len(new_targets), dtype=np.float64)
            graph = CSRGraph(indptr, indices,
                             np.concatenate([self.graph.weights, ones]),
                             node_ids)
            weights = np.concatenate([
                self._edge_weights,
                np.asarray(new_weights, dtype=np.float64)])
            return graph, years, weights, new_nodes, empty

        # Citation insertions touch existing rows: merge edge arrays and
        # re-sort by source (numpy-level, no per-article Python work).
        inserted_src = []
        inserted_dst = []
        inserted_weights = []
        changed = set()
        existing_targets: Dict[int, set] = {}
        for citing, cited in batch.citations:
            source = index_of.get(citing)
            target = index_of.get(cited)
            if source is None or target is None or citing == cited:
                continue
            if source < old_n:
                known = existing_targets.get(source)
                if known is None:
                    known = set(int(t) for t in
                                self.graph.neighbors(source))
                    existing_targets[source] = known
                if target in known:
                    continue
                known.add(target)
                changed.add(source)
            citing_year = self.dataset.articles[citing].year
            inserted_src.append(source)
            inserted_dst.append(target)
            inserted_weights.append(edge_weight(citing_year, cited))

        n = old_n + len(new_articles)
        old_src, old_dst, old_graph_weights = self.graph.edge_array()
        appended_src = np.repeat(new_nodes, new_counts) \
            if new_articles else empty
        src = np.concatenate([old_src, appended_src,
                              np.asarray(inserted_src, dtype=np.int64)])
        dst = np.concatenate([old_dst,
                              np.asarray(new_targets, dtype=np.int64),
                              np.asarray(inserted_dst, dtype=np.int64)])
        graph_weights = np.concatenate([
            old_graph_weights,
            np.ones(len(new_targets) + len(inserted_src))])
        time_weights = np.concatenate([
            self._edge_weights,
            np.asarray(new_weights, dtype=np.float64),
            np.asarray(inserted_weights, dtype=np.float64)])

        order = np.argsort(src, kind="stable")
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        graph = CSRGraph(indptr, dst[order], graph_weights[order],
                         node_ids)
        changed_sources = np.asarray(sorted(changed), dtype=np.int64)
        return (graph, years, time_weights[order], new_nodes,
                changed_sources)

    # ------------------------------------------------------------------
    # derived edge structure (shared by discovery and re-solve)

    def _pull_structure(self, graph: CSRGraph, weights: np.ndarray):
        """Edge sources/targets and per-node out-strengths, cached.

        ``_discover_affected`` and ``_resolve`` both need ``src_idx``
        and ``strengths`` derived from the *same* ``(graph, weights)``
        pair, and consecutive empty or no-op batches hand the very same
        objects back in — so the cache is keyed on identity: any real
        graph change produces new arrays and misses naturally, while
        ``_append_graph`` also invalidates explicitly so stale
        structure arrays are not kept alive.
        """
        cached = self._structure_cache
        if cached is not None and cached[0] is graph \
                and cached[1] is weights:
            return cached[2], cached[3], cached[4]
        src_idx, dst_idx, _ = graph.edge_array()
        strengths = np.bincount(src_idx, weights=weights,
                                minlength=graph.num_nodes)
        self._structure_cache = (graph, weights, src_idx, dst_idx,
                                 strengths)
        return src_idx, dst_idx, strengths

    # ------------------------------------------------------------------
    # affected-area discovery

    def _discover_affected(self, graph: CSRGraph, weights: np.ndarray,
                           scores: np.ndarray, new_nodes: np.ndarray,
                           changed_sources: Optional[np.ndarray] = None
                           ) -> AffectedArea:
        """Expand perturbation estimates from the update's seed nodes.

        Seeds: new nodes carry their full (uniform) score as estimated
        perturbation; *changed sources* — existing articles whose
        reference list grew — carry their current score (their outgoing
        distribution shifted, so everything they point at may move by
        up to that much, damped).

        Vectorized frontier relaxation: each wave pushes every frontier
        node's estimate across its out-edges (damped by the transition
        probability) and keeps the per-target maximum; a node joins the
        frontier whenever its estimate grows while at or above the
        threshold. Geometric damping guarantees termination.
        """
        n = graph.num_nodes
        src_idx, _, strengths = self._pull_structure(graph, weights)
        safe = np.where(strengths > 0, strengths, 1.0)

        estimate = np.zeros(n, dtype=np.float64)
        estimate[new_nodes] = 1.0 / n
        if changed_sources is not None and len(changed_sources):
            estimate[changed_sources] = np.maximum(
                estimate[changed_sources], scores[changed_sources])
        threshold = self.delta_threshold / n
        in_area = np.zeros(n, dtype=bool)
        in_area[new_nodes] = True
        if changed_sources is not None and len(changed_sources):
            in_area[changed_sources] = True

        seeds = new_nodes if changed_sources is None \
            or not len(changed_sources) else np.unique(
                np.concatenate([new_nodes, changed_sources]))
        frontier = seeds
        while len(frontier):
            starts = graph.indptr[frontier]
            stops = graph.indptr[frontier + 1]
            counts = stops - starts
            total = int(counts.sum())
            if total == 0:
                break
            gather = np.repeat(starts, counts) + _ragged_offsets(counts)
            targets = graph.indices[gather]
            transfers = (np.repeat(estimate[frontier] / safe[frontier],
                                   counts)
                         * self.damping * weights[gather])
            improved = np.zeros(n, dtype=np.float64)
            np.maximum.at(improved, targets, transfers)
            grew = (improved > estimate) & (improved >= threshold)
            estimate = np.maximum(estimate, improved)
            frontier = np.flatnonzero(grew)
            in_area[frontier] = True

        nodes = np.flatnonzero(in_area | (estimate >= threshold))
        return AffectedArea(nodes=nodes, seeds=seeds,
                            fraction=len(nodes) / max(n, 1))

    # ------------------------------------------------------------------
    # boundary-fixed re-solve

    def _resolve(self, graph: CSRGraph, weights: np.ndarray,
                 scores: np.ndarray, affected: np.ndarray):
        """Iterate the affected rows only, unaffected scores held fixed."""
        n = graph.num_nodes
        src_idx, dst_idx, strengths = self._pull_structure(graph, weights)
        dangling = strengths == 0.0
        probability = weights / np.where(dangling, 1.0,
                                         strengths)[src_idx]

        local = np.full(n, -1, dtype=np.int64)
        local[affected] = np.arange(len(affected))
        into_affected = local[dst_idx] >= 0
        pull = csr_matrix(
            (probability[into_affected],
             (local[dst_idx[into_affected]], src_idx[into_affected])),
            shape=(len(affected), n))

        jump = 1.0 / n
        scores = scores.copy()
        residual = float("inf")
        iterations = 0
        for iterations in range(1, self.max_iter + 1):
            dangling_mass = float(scores[dangling].sum())
            updated = self.damping * (pull @ scores
                                      + dangling_mass * jump) \
                + (1.0 - self.damping) * jump
            residual = float(np.abs(updated - scores[affected]).sum())
            scores[affected] = updated
            if residual <= self.tol:
                break
        converged = residual <= self.tol
        scores /= scores.sum()
        return scores, iterations, residual, converged

    # ------------------------------------------------------------------

    def exact_scores(self) -> np.ndarray:
        """Full TWPR recompute on the current graph (the E6 comparator)."""
        result = time_weighted_pagerank(
            self.graph, self.years, decay=self.decay, damping=self.damping,
            tol=self.tol, max_iter=self.max_iter, method="auto")
        return result.scores

    def error_vs_exact(self) -> float:
        """L1 distance between maintained and exactly recomputed scores."""
        return float(np.abs(self.scores - self.exact_scores()).sum())
