"""Batch computation: run the whole model once on a full graph.

:class:`BatchRanker` is a thin façade over
:class:`~repro.core.model.ArticleRanker` that adds total wall-clock and a
stable report object. :func:`compare_solvers` is the E4 harness primitive:
it runs TWPR with the naive and the optimized solver on the same input and
reports iterations, wall-clock and fixed-point agreement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.data.schema import ScholarlyDataset
from repro.core.model import ArticleRanker, RankerConfig, RankingResult
from repro.core.time_weight import TimeDecay
from repro.core.twpr import TWPRResult, time_weighted_pagerank
from repro.graph.csr import CSRGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.handle import Observability
    from repro.obs.telemetry import SolverTelemetry


@dataclass(frozen=True)
class BatchReport:
    """A ranking result plus its end-to-end wall-clock seconds."""

    result: RankingResult
    total_seconds: float

    @property
    def stage_timings(self) -> Dict[str, float]:
        return dict(self.result.diagnostics.get("timings", {}))


class BatchRanker:
    """Run the assembled model once over an entire dataset."""

    def __init__(self, config: Optional[RankerConfig] = None) -> None:
        self._ranker = ArticleRanker(config)

    @property
    def config(self) -> RankerConfig:
        return self._ranker.config

    def run(self, dataset: ScholarlyDataset,
            telemetry: Optional["SolverTelemetry"] = None,
            obs: Optional["Observability"] = None) -> BatchReport:
        """Rank ``dataset`` and report total and per-stage timings.

        ``telemetry`` / ``obs`` are handed through to
        :meth:`repro.core.model.ArticleRanker.rank` — purely
        observational, scores are identical with them on or off.
        """
        start = time.perf_counter()
        result = self._ranker.rank(dataset, telemetry=telemetry, obs=obs)
        total = time.perf_counter() - start
        if obs is not None:
            obs.metrics.gauge(
                "repro_batch_run_seconds",
                "End-to-end wall-clock of the last batch run.").set(total)
        return BatchReport(result=result, total_seconds=total)


@dataclass(frozen=True)
class SolverComparison:
    """Naive vs. optimized TWPR on one input (experiment E4 row).

    ``agreement_l1`` is the L1 distance between the two fixed points —
    it should sit at solver tolerance, proving the optimization changes
    the path, not the answer.
    """

    num_nodes: int
    num_edges: int
    naive: TWPRResult
    naive_seconds: float
    optimized: TWPRResult
    optimized_seconds: float

    @property
    def iteration_speedup(self) -> float:
        if self.optimized.iterations == 0:
            return float("inf")
        return self.naive.iterations / self.optimized.iterations

    @property
    def time_speedup(self) -> float:
        if self.optimized_seconds == 0:
            return float("inf")
        return self.naive_seconds / self.optimized_seconds

    @property
    def agreement_l1(self) -> float:
        return float(np.abs(self.naive.scores
                            - self.optimized.scores).sum())


def compare_solvers(graph: CSRGraph, years: np.ndarray,
                    decay: Optional[TimeDecay] = None,
                    damping: float = 0.85, tol: float = 1e-10,
                    max_iter: int = 200,
                    methods: Tuple[str, str] = ("power", "levels")
                    ) -> SolverComparison:
    """Time the naive and optimized TWPR solvers on the same input."""
    naive_method, optimized_method = methods

    start = time.perf_counter()
    naive = time_weighted_pagerank(graph, years, decay=decay,
                                   damping=damping, tol=tol,
                                   max_iter=max_iter, method=naive_method)
    naive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    optimized = time_weighted_pagerank(graph, years, decay=decay,
                                       damping=damping, tol=tol,
                                       max_iter=max_iter,
                                       method=optimized_method)
    optimized_seconds = time.perf_counter() - start

    return SolverComparison(
        num_nodes=graph.num_nodes, num_edges=graph.num_edges,
        naive=naive, naive_seconds=naive_seconds,
        optimized=optimized, optimized_seconds=optimized_seconds)
