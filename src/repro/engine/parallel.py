"""Multiprocessing executor for the block-centric engine.

Reproduces the paper's parallel-scalability experiment on one machine:
each worker process owns a set of blocks (built once, in the worker, via
an initializer), and every superstep ships the previous global score
vector to workers and block scores back — the in-process analogue of a
graph-centric distributed runtime.

Two data planes, selected by ``shared_memory``:

* **Zero-copy (default where available).** The coordinator packs the
  immutable CSR block operators and a score board — a double-buffered
  frontier (``2 × n``), a result vector (``n``) and an epoch counter —
  into :mod:`multiprocessing.shared_memory` segments created once per
  run. Workers attach at pool-init and build numpy views directly over
  the segments, so a superstep dispatch carries only ``(block_ids,
  epoch, TraceContext)`` and workers write their block scores straight
  into the result buffer: per-superstep pickled bytes drop to the
  control-message floor. The frontier is double-buffered and guarded by
  a seqlock-style epoch check (written *after* the frontier, verified
  before and after the worker's copy), so a task can never read a
  half-written frontier — an abandoned zombie task observing a stale
  epoch dies on :class:`repro.engine.shm.StaleFrontierError` instead.
* **Pickle (fallback and ``shared_memory=False``).** The original path:
  per-worker block payloads ship through the pool initializer and each
  superstep pickles the previous score vector to every live worker.
  Payloads and dispatch tuples are serialized exactly once — the same
  buffer feeds both the send path and ``telemetry.record_bytes``.

Payload discipline: every worker receives **only its own blocks**. Each
worker is backed by its own single-process pool so its initializer can be
handed exactly its chunk (or, zero-copy, exactly its segment) — a shared
pool would force one initargs tuple onto every worker. The telemetry
layer records the bytes actually serialized so regressions here are
measurable.

Failure handling: a superstep's inputs are immutable (the previous global
score vector), so any failed dispatch can be replayed without touching
history. When a worker process dies (``BrokenProcessPool``) or blows its
:class:`repro.resilience.Deadline`, the coordinator respawns that
worker's single-process pool — re-attaching the shared segments, or
re-shipping the pickled payload — and re-dispatches the same blocks
under a :class:`repro.resilience.RetryPolicy`; once retries are
exhausted the worker is *degraded* — its blocks are solved inline in the
coordinator through the very same code path — for the rest of the run.
A timed-out worker may still be alive, so its slot additionally stops
writing through shared memory (scores return by value from then on):
a zombie scribbling into the result buffer can never be read back.
Recovery never changes the math: the fixed point stays **bit-identical**
to the fault-free run, which the fault-injection suite asserts with
``np.array_equal``. Shared segments are closed and unlinked in a
``finally`` block, so neither a clean nor a crashed run leaks one.

The fixed point is identical to :class:`repro.engine.blocks.BlockEngine`
for ``num_workers=1`` and identical across data planes for any worker
count; only wall-clock changes with ``num_workers`` (E5's speedup
curve).
"""

from __future__ import annotations

import pickle
import time
from contextlib import nullcontext
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.engine.blocks import (
    BlockRankResult,
    _block_operators,
    flatten_block_payload,
    rebuild_block_payload,
    solve_block,
)
from repro.engine.shm import (
    SHARED_MEMORY_AVAILABLE,
    SegmentLayout,
    StaleFrontierError,
    attach_arrays,
    destroy_segment,
    map_views,
    pack_arrays,
)
from repro.obs.trace import Span, TraceContext, Tracer, _new_id
from repro.ranking.pagerank import validate_jump
from repro.resilience import Deadline, FaultPlan, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.handle import Observability
    from repro.obs.telemetry import SolverTelemetry

# Worker-process state, installed by _init_worker.
_WORKER_BLOCKS: Dict[int, tuple] = {}
_WORKER_DAMPING: float = 0.85
_WORKER_ID: int = -1
_WORKER_PLAN: Optional[FaultPlan] = None
#: Attached SharedMemory handles — referenced so views stay valid for
#: the worker's lifetime; the OS drops the mappings at process exit.
_WORKER_SEGMENTS: List[object] = []
#: Zero-copy score board views (``epoch``/``frontier``/``result``), or
#: ``None`` on the pickle data plane.
_WORKER_BOARD: Optional[Dict[str, np.ndarray]] = None
_WORKER_ATTACH_SECONDS: float = 0.0
_WORKER_ATTACH_START: float = 0.0
_WORKER_ATTACH_REPORTED: bool = False


@dataclass(frozen=True)
class ShmWorkerInit:
    """Pool-init manifest for the zero-copy data plane.

    Carries segment *layouts* (names, dtypes, offsets), never array
    data: this — plus per-superstep control tuples — is all that is
    pickled toward a shared-memory worker.
    """

    block_layout: SegmentLayout
    block_shapes: Dict[int, Tuple[Tuple[int, int], Tuple[int, int]]]
    scores_layout: SegmentLayout


def _init_worker(init_bytes: bytes, damping: float,
                 worker_id: int = -1,
                 fault_plan: Optional[FaultPlan] = None) -> None:
    """Install this worker's blocks (runs once per worker process).

    ``init_bytes`` unpickles either to the block payload dict (pickle
    plane) or to a :class:`ShmWorkerInit` (zero-copy plane), in which
    case the worker attaches the coordinator's segments and rebuilds
    the operators as views over them.
    """
    global _WORKER_BLOCKS, _WORKER_DAMPING, _WORKER_ID, _WORKER_PLAN, \
        _WORKER_BOARD, _WORKER_ATTACH_SECONDS, _WORKER_ATTACH_START, \
        _WORKER_ATTACH_REPORTED
    install = pickle.loads(init_bytes)
    if isinstance(install, ShmWorkerInit):
        _WORKER_ATTACH_START = time.time()
        start = time.perf_counter()
        block_segment, block_arrays = attach_arrays(install.block_layout)
        board_segment, board = attach_arrays(install.scores_layout)
        _WORKER_SEGMENTS.extend((block_segment, board_segment))
        _WORKER_BLOCKS = rebuild_block_payload(block_arrays,
                                               install.block_shapes)
        _WORKER_BOARD = board
        _WORKER_ATTACH_SECONDS = time.perf_counter() - start
    else:
        _WORKER_BLOCKS = install
        _WORKER_BOARD = None
    _WORKER_ATTACH_REPORTED = False
    _WORKER_DAMPING = damping
    _WORKER_ID = worker_id
    _WORKER_PLAN = fault_plan


def _read_frontier(epoch: int) -> np.ndarray:
    """Seqlock read of the dispatched epoch's frontier buffer.

    The coordinator fully writes buffer ``epoch % 2`` *before* bumping
    the shared epoch counter, and never rewrites that buffer until two
    epochs later — so ``epoch`` matching both before and after the copy
    proves the copy saw a fully written frontier.
    """
    board = _WORKER_BOARD
    if int(board["epoch"][0]) != epoch:
        raise StaleFrontierError(
            f"worker {_WORKER_ID} dispatched for epoch {epoch} but the "
            f"score board is at epoch {int(board['epoch'][0])}")
    previous = np.array(board["frontier"][epoch % 2])
    if int(board["epoch"][0]) != epoch:
        raise StaleFrontierError(
            f"epoch advanced past {epoch} during the frontier copy")
    return previous


def _solve_block_set(blocks: Dict[int, tuple], block_ids: List[int],
                     previous: np.ndarray, damping: float,
                     local_tol: float, local_max_iter: int
                     ) -> List[Tuple[int, np.ndarray, int]]:
    """Solve a set of blocks sequentially with fresh local values.

    Cross-worker coupling sees the previous superstep; blocks owned by
    the same worker see each other's freshly computed scores (the
    asynchronous-within-partition trait of graph-centric runtimes).

    This is the *single* solve path: worker processes and the
    coordinator's degraded-worker fallback both call it, which is what
    makes recovery bit-identical to normal execution.
    """
    working = previous.copy()
    results = []
    for block_id in block_ids:
        internal_op, boundary_op, jump_block, members = blocks[block_id]
        external = boundary_op @ working
        scores, inner = solve_block(
            internal_op, external, jump_block, working[members],
            damping, local_tol, local_max_iter)
        working[members] = scores
        results.append((block_id, scores, inner))
    return results


def _attach_span(trace_ctx: TraceContext) -> Dict[str, object]:
    """The worker's segment-attach, reported as a finished span dict."""
    return Span(trace_id=trace_ctx.trace_id, span_id=_new_id(),
                parent_id=trace_ctx.span_id, name="ipc.attach",
                start=_WORKER_ATTACH_START,
                duration=_WORKER_ATTACH_SECONDS,
                attributes={"worker": _WORKER_ID}).as_dict()


def _solve_blocks_task(task_bytes: bytes
                       ) -> Tuple[List[Tuple[int, Optional[np.ndarray],
                                             int]],
                                  List[Dict[str, object]]]:
    """One worker task: fire any scripted fault, then solve the blocks.

    ``task_bytes`` unpickles to ``(block_ids, previous, epoch,
    write_shm, local_tol, local_max_iter, superstep, attempt,
    trace_ctx)``; on the zero-copy plane ``previous`` is ``None`` (the
    frontier comes from the score board) and ``write_shm`` says whether
    block scores go back through the result buffer (``None`` in the
    returned triples) or by value (after a timeout poisoned the slot).

    Returns ``(results, spans)``. When the coordinator ships a
    :class:`TraceContext`, the solve runs inside a ``worker.solve`` span
    parented under the coordinator's superstep span, the process's
    one-time segment attach is reported as an ``ipc.attach`` span, and
    the finished span dicts travel back with the results for the
    coordinator to :meth:`~repro.obs.trace.Tracer.adopt`. A scripted
    fault fires *inside* the span — a crashed attempt's span dies with
    the process and the coordinator's recovery spans document the gap
    instead.
    """
    global _WORKER_ATTACH_REPORTED
    (block_ids, previous, epoch, write_shm, local_tol, local_max_iter,
     superstep, attempt, trace_ctx) = pickle.loads(task_bytes)
    tracer = Tracer(parent=trace_ctx) if trace_ctx is not None else None
    span = tracer.span("worker.solve", worker=_WORKER_ID,
                       superstep=superstep, attempt=attempt,
                       blocks=len(block_ids), shm=previous is None) \
        if tracer is not None else nullcontext()
    with span:
        if _WORKER_PLAN is not None:
            _WORKER_PLAN.fire_worker_fault(_WORKER_ID, superstep, attempt)
        if previous is None:
            previous = _read_frontier(epoch)
        results = _solve_block_set(_WORKER_BLOCKS, block_ids, previous,
                                   _WORKER_DAMPING, local_tol,
                                   local_max_iter)
        if write_shm and _WORKER_BOARD is not None:
            result_view = _WORKER_BOARD["result"]
            for block_id, scores, _ in results:
                result_view[_WORKER_BLOCKS[block_id][3]] = scores
            results = [(block_id, None, inner)
                       for block_id, _, inner in results]
    spans = tracer.export() if tracer is not None else []
    if tracer is not None and _WORKER_BOARD is not None \
            and not _WORKER_ATTACH_REPORTED:
        _WORKER_ATTACH_REPORTED = True
        spans.append(_attach_span(trace_ctx))
    return results, spans


@dataclass
class _ShmRun:
    """Coordinator-side state of one zero-copy run."""

    segments: List[object]
    segment_names: List[str]
    total_bytes: int
    epoch: Optional[np.ndarray]
    frontier: Optional[np.ndarray]
    result: Optional[np.ndarray]
    #: per-worker pre-pickled :class:`ShmWorkerInit` (spawn + respawn).
    init_buffers: Dict[int, bytes]
    #: per-slot flag: may this worker still write scores through the
    #: result buffer?  Cleared forever once the slot times out — the
    #: abandoned process may still be alive and writing.
    write_ok: Dict[int, bool] = field(default_factory=dict)

    def cleanup(self) -> None:
        """Close + unlink every segment (idempotent, exception-safe)."""
        self.epoch = self.frontier = self.result = None
        while self.segments:
            destroy_segment(self.segments.pop())


class ParallelBlockEngine:
    """Graph-centric PageRank across ``num_workers`` processes.

    Blocks are dealt to workers in contiguous chunks; each superstep
    dispatches one task per worker (its whole block set), so scheduling
    overhead stays constant as block count grows.

    ``shared_memory`` selects the IPC data plane: ``"auto"`` (default)
    uses zero-copy shared-memory segments when the platform supports
    them and falls back to pickling otherwise; ``True`` requires them
    (:class:`repro.errors.ConfigError` if unavailable); ``False`` forces
    the pickle path. The fixed point is bit-identical across planes.

    ``retry_policy`` (default :class:`repro.resilience.RetryPolicy`)
    bounds how often a crashed or hung worker is respawned before its
    blocks degrade to inline coordinator execution; ``deadline``
    (default none: wait forever) turns a hung worker into a retriable
    failure; ``fault_plan`` injects deterministic failures for the
    resilience test suite and must stay ``None`` in production runs.
    """

    def __init__(self, graph: CSRGraph, partition: Partition,
                 damping: float = 0.85, num_workers: int = 2,
                 jump: Optional[np.ndarray] = None,
                 edge_weights: Optional[np.ndarray] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 deadline: Optional[Deadline] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 shared_memory: Union[bool, str] = "auto") -> None:
        if num_workers <= 0:
            raise ConfigError("num_workers must be positive")
        if partition.num_nodes != graph.num_nodes:
            raise ConfigError("partition does not cover this graph")
        if not 0.0 <= damping < 1.0:
            raise ConfigError(f"damping must be in [0, 1), got {damping}")
        if shared_memory not in (True, False, "auto"):
            raise ConfigError(
                f"shared_memory must be True, False or 'auto', "
                f"got {shared_memory!r}")
        self.graph = graph
        self.partition = partition
        self.damping = damping
        self.num_workers = num_workers
        self.jump = validate_jump(jump, graph.num_nodes)
        self.retry_policy = retry_policy if retry_policy is not None \
            else RetryPolicy()
        self.deadline = deadline
        self.fault_plan = fault_plan
        self.shared_memory = shared_memory
        #: segment names of the most recent zero-copy run (all unlinked
        #: by the time ``run`` returns; kept for tests/diagnostics).
        self.last_shm_segments: List[str] = []
        #: which data plane the most recent ``run`` actually used.
        self.last_used_shared_memory: bool = False

        operators = _block_operators(graph, partition, edge_weights)
        members = operators.members
        internal_ops = operators.internal_ops
        boundary_ops = operators.boundary_ops
        self._members = members
        self._dangling = operators.dangling
        self._cut_edges = operators.cut_edges
        self._source_blocks = operators.source_blocks
        # Contiguous chunks of blocks per worker (for a time-ordered range
        # partition, each worker owns one contiguous time span), processed
        # newest-first within the worker.
        chunk = -(-partition.num_blocks // num_workers)
        self._assignment_to_worker = [
            sorted(range(worker * chunk,
                         min((worker + 1) * chunk, partition.num_blocks)),
                   reverse=True)
            for worker in range(num_workers)
        ]
        # Per-worker payloads: each worker's initializer receives only
        # the blocks it owns, never the whole graph.
        self._worker_payloads: List[Dict[int, tuple]] = [
            {block: (internal_ops[block], boundary_ops[block],
                     self.jump[members[block]], members[block])
             for block in block_ids}
            for block_ids in self._assignment_to_worker
        ]
        # Pickle-plane payload buffers, serialized once on first use and
        # reused for every (re)spawn *and* for byte accounting.
        self._payload_buffers: List[Optional[bytes]] = \
            [None] * num_workers

    # ------------------------------------------------------------------
    # data-plane plumbing

    def _resolve_shm(self) -> bool:
        """Whether this run should attempt the zero-copy plane."""
        if self.shared_memory is False:
            return False
        if self.shared_memory is True:
            if not SHARED_MEMORY_AVAILABLE:
                raise ConfigError(
                    "shared_memory=True but multiprocessing.shared_memory "
                    "is unavailable on this platform")
            return True
        return SHARED_MEMORY_AVAILABLE

    def _create_shm(self, active, n: int,
                    telemetry: Optional["SolverTelemetry"],
                    obs: Optional["Observability"]) -> _ShmRun:
        """Pack block operators and the score board into segments.

        Raises ``OSError`` when the platform refuses a segment; callers
        in ``"auto"`` mode catch it and fall back to pickling. Partially
        created segments are destroyed before re-raising, so a failed
        setup leaks nothing.
        """
        span = obs.span("ipc.shm_create", workers=len(active), nodes=n) \
            if obs is not None else nullcontext()
        run = _ShmRun(segments=[], segment_names=[], total_bytes=0,
                      epoch=None, frontier=None, result=None,
                      init_buffers={})
        try:
            with span:
                board_segment, board_layout = pack_arrays(
                    {"epoch": np.zeros(1, dtype=np.int64),
                     "frontier": np.zeros((2, n), dtype=np.float64),
                     "result": np.zeros(n, dtype=np.float64)},
                    prefix="repro-board")
                run.segments.append(board_segment)
                run.segment_names.append(board_segment.name)
                run.total_bytes += board_layout.total_bytes
                views = map_views(board_segment, board_layout)
                run.epoch = views["epoch"]
                run.frontier = views["frontier"]
                run.result = views["result"]
                for slot, (worker, _, payload) in enumerate(active):
                    arrays, shapes = flatten_block_payload(payload)
                    segment, layout = pack_arrays(
                        arrays, prefix=f"repro-blocks-w{worker}")
                    run.segments.append(segment)
                    run.segment_names.append(segment.name)
                    run.total_bytes += layout.total_bytes
                    run.init_buffers[worker] = pickle.dumps(
                        ShmWorkerInit(layout, shapes, board_layout),
                        pickle.HIGHEST_PROTOCOL)
                    run.write_ok[slot] = True
        except Exception:
            run.cleanup()
            raise
        if telemetry is not None:
            telemetry.set_counter("ipc.shm_bytes", run.total_bytes)
        if obs is not None:
            obs.metrics.gauge(
                "repro_ipc_shm_bytes",
                "Bytes placed in shared-memory segments for the "
                "current parallel run.").set(run.total_bytes)
        return run

    def _worker_init_bytes(self, worker: int,
                           board: Optional[_ShmRun]) -> bytes:
        """The (cached, serialized-once) pool-init payload for a worker."""
        if board is not None:
            return board.init_buffers[worker]
        buffer = self._payload_buffers[worker]
        if buffer is None:
            buffer = pickle.dumps(self._worker_payloads[worker],
                                  pickle.HIGHEST_PROTOCOL)
            self._payload_buffers[worker] = buffer
        return buffer

    def _spawn_pool(self, worker: int,
                    init_bytes: bytes) -> ProcessPoolExecutor:
        """One single-process pool whose initializer ships exactly this
        worker's payload (pickled blocks, or segment layouts)."""
        return ProcessPoolExecutor(
            max_workers=1, initializer=_init_worker,
            initargs=(init_bytes, self.damping, worker, self.fault_plan))

    def _record_spawn(self, worker: int, init_bytes: bytes,
                      board: Optional[_ShmRun],
                      telemetry: Optional["SolverTelemetry"],
                      obs: Optional["Observability"]) -> None:
        """Account one pool (re)spawn: bytes, and attaches on shm."""
        if telemetry is not None:
            telemetry.record_bytes(len(init_bytes))
            if board is not None:
                telemetry.incr("ipc.attach")
        if obs is not None and board is not None:
            obs.metrics.counter(
                "repro_ipc_attaches_total",
                "Worker attaches to shared-memory segments "
                "(including respawns).").inc()

    def _dispatch(self, pool: ProcessPoolExecutor, slot: int,
                  block_ids: List[int], previous: np.ndarray,
                  epoch: int, board: Optional[_ShmRun],
                  local_tol: float, local_max_iter: int, superstep: int,
                  attempt: int, trace_ctx: Optional[TraceContext],
                  telemetry: Optional["SolverTelemetry"]):
        """Serialize one task exactly once, count it, and submit it.

        On the zero-copy plane the tuple carries no arrays — only block
        ids, the epoch, tolerances and the trace context — which is the
        control-message floor telemetry should observe.
        """
        if board is not None:
            args = (block_ids, None, epoch, board.write_ok.get(slot,
                                                               False),
                    local_tol, local_max_iter, superstep, attempt,
                    trace_ctx)
        else:
            args = (block_ids, previous, 0, False, local_tol,
                    local_max_iter, superstep, attempt, trace_ctx)
        task_bytes = pickle.dumps(args, pickle.HIGHEST_PROTOCOL)
        if telemetry is not None:
            telemetry.record_bytes(len(task_bytes))
        return pool.submit(_solve_blocks_task, task_bytes)

    # ------------------------------------------------------------------

    def _solve_inline(self, block_ids: List[int],
                      payload: Dict[int, tuple], previous: np.ndarray,
                      local_tol: float, local_max_iter: int
                      ) -> List[Tuple[int, np.ndarray, int]]:
        """Degraded path: the coordinator stands in for a dead worker."""
        return _solve_block_set(payload, block_ids, previous,
                                self.damping, local_tol, local_max_iter)

    def _solve_degraded(self, block_ids: List[int],
                        payload: Dict[int, tuple], previous: np.ndarray,
                        local_tol: float, local_max_iter: int,
                        obs: Optional["Observability"], worker: int
                        ) -> List[Tuple[int, np.ndarray, int]]:
        """Inline solve for an already-degraded worker, traced as a
        ``worker.solve_inline`` span so degraded supersteps stay visible
        in the trace."""
        span = obs.span("worker.solve_inline", worker=worker,
                        blocks=len(block_ids), degraded=True) \
            if obs is not None else nullcontext()
        with span:
            return self._solve_inline(block_ids, payload, previous,
                                      local_tol, local_max_iter)

    def run(self, tol: float = 1e-10, max_supersteps: int = 100,
            local_tol: float = 1e-12, local_max_iter: int = 50,
            compaction: bool = True,
            telemetry: Optional["SolverTelemetry"] = None,
            obs: Optional["Observability"] = None
            ) -> BlockRankResult:
        """Run supersteps across the worker pool until convergence.

        ``compaction`` (default on) elides provably no-op block solves:
        a block is dispatched only when its own scores changed (bitwise)
        during the previous superstep, a source block changed during the
        previous superstep, or a *same-worker* source block is being
        re-solved earlier in this superstep (cross-worker coupling reads
        the previous superstep's frontier, so only same-worker activity
        can alter a block's input mid-superstep). A worker none of whose
        blocks are active receives no dispatch at all that superstep.
        Scores, residual trajectory and superstep count are bit-exactly
        unchanged; ``local_iterations``, shipped bytes and
        ``blocks_skipped`` show the saved work. Message accounting
        (cut edges per superstep) is intentionally untouched.

        ``telemetry`` (optional) records per-superstep wall-clock,
        boundary messages, residual and per-block inner iterations, plus
        worker→block attribution, the bytes actually serialized toward
        workers (block payloads or segment manifests at startup, score
        vectors or control tuples per superstep — each buffer counted
        from the very bytes that are sent), shared-memory segment bytes
        (``ipc.shm_bytes``) and attach counts (``ipc.attach``), and
        every recovery event (crash / timeout / respawn / degrade). The
        fixed point is unchanged with telemetry on or off — with faults
        on or off — and with either IPC data plane.

        ``obs`` (optional) additionally produces **one trace** covering
        the whole run: a ``parallel.run`` root span, ``ipc.shm_create``
        for segment setup, one ``superstep`` span per superstep,
        ``worker.solve`` and ``ipc.attach`` spans shipped back from the
        worker processes (parented under the superstep span via a
        pickled :class:`repro.obs.trace.TraceContext`),
        ``recovery.respawn`` / ``recovery.degrade`` spans on the
        recovery path, and counters/histograms in ``obs.metrics``.
        """
        if tol <= 0 or local_tol <= 0:
            raise ConfigError("tolerances must be positive")
        if max_supersteps <= 0 or local_max_iter <= 0:
            raise ConfigError("iteration budgets must be positive")
        if obs is not None and telemetry is None:
            telemetry = obs.telemetry
        n = self.graph.num_nodes
        if n == 0:
            return BlockRankResult(np.zeros(0), 0, 0, 0, 0.0, True)

        active = [(worker, block_ids, self._worker_payloads[worker])
                  for worker, block_ids
                  in enumerate(self._assignment_to_worker) if block_ids]

        board: Optional[_ShmRun] = None
        if self._resolve_shm():
            try:
                board = self._create_shm(active, n, telemetry, obs)
            except OSError as exc:
                if self.shared_memory is True:
                    raise ConfigError(
                        f"shared_memory=True but segment creation "
                        f"failed: {exc}") from exc
                if obs is not None:
                    obs.event("ipc.shm_fallback", error=str(exc))
                board = None
        self.last_used_shared_memory = board is not None
        self.last_shm_segments = list(board.segment_names) \
            if board is not None else []

        scores = self.jump.copy()
        messages = 0
        local_iterations = 0
        blocks_skipped = 0
        residual = float("inf")
        supersteps = 0
        num_blocks = self.partition.num_blocks
        changed_prev = np.ones(num_blocks, dtype=bool)
        deadline_seconds = None if self.deadline is None \
            else self.deadline.seconds
        retries = self.retry_policy.delays()
        stream = telemetry.open_stream("parallel_engine",
                                       kind="superstep") \
            if telemetry is not None else None
        superstep_hist = obs.metrics.histogram(
            "repro_superstep_seconds",
            "Wall-clock seconds per parallel superstep.") \
            if obs is not None else None
        run_span = obs.span("parallel.run", nodes=n,
                            workers=len(active),
                            blocks=self.partition.num_blocks,
                            shm=board is not None) \
            if obs is not None else nullcontext()
        # One single-process pool per worker; a ``None`` slot marks a
        # worker degraded to inline coordinator execution.
        pools: List[Optional[ProcessPoolExecutor]] = []
        try:
            for worker, block_ids, payload in active:
                init_bytes = self._worker_init_bytes(worker, board)
                if telemetry is not None:
                    telemetry.record_worker(worker, block_ids)
                self._record_spawn(worker, init_bytes, board,
                                   telemetry, obs)
                pools.append(self._spawn_pool(worker, init_bytes))
            with run_span:
                for supersteps in range(1, max_supersteps + 1):
                    superstep_start = time.perf_counter()
                    previous = scores.copy()
                    if board is not None:
                        # Fully publish the frontier, then bump the
                        # epoch: the order is what the workers' seqlock
                        # read relies on.
                        board.frontier[supersteps % 2, :] = previous
                        board.epoch[0] = supersteps
                    step_span = obs.span("superstep", index=supersteps) \
                        if obs is not None else nullcontext()
                    with step_span:
                        trace_ctx = obs.tracer.current_context() \
                            if obs is not None else None
                        # Frontier compaction: decide, per worker, which
                        # of its blocks actually need a re-solve this
                        # superstep (see the docstring for the bit-exact
                        # skip rule). Same-worker activity is tracked in
                        # dispatch order because those blocks see each
                        # other's fresh values within the superstep.
                        dispatch_ids: List[List[int]] = []
                        step_skipped = 0
                        for worker, block_ids, payload in active:
                            if not compaction:
                                dispatch_ids.append(list(block_ids))
                                continue
                            worker_active = np.zeros(num_blocks,
                                                     dtype=bool)
                            chosen: List[int] = []
                            for block in block_ids:
                                sources = self._source_blocks[block]
                                if (changed_prev[block]
                                        or changed_prev[sources].any()
                                        or worker_active[sources].any()):
                                    chosen.append(block)
                                    worker_active[block] = True
                            step_skipped += len(block_ids) - len(chosen)
                            dispatch_ids.append(chosen)
                        futures: List[Optional[object]] = []
                        for slot, (worker, block_ids, payload) \
                                in enumerate(active):
                            if pools[slot] is None \
                                    or not dispatch_ids[slot]:
                                futures.append(None)
                                continue
                            futures.append(self._dispatch(
                                pools[slot], slot, dispatch_ids[slot],
                                previous, supersteps, board, local_tol,
                                local_max_iter, supersteps, 0,
                                trace_ctx, telemetry))
                        new_scores = scores.copy()
                        step_local = 0
                        changed_now = np.zeros(num_blocks, dtype=bool)
                        block_iterations: Optional[dict] = \
                            {} if telemetry is not None else None
                        for slot, (worker, block_ids, payload) \
                                in enumerate(active):
                            ids = dispatch_ids[slot]
                            if block_iterations is not None:
                                for block_id in block_ids:
                                    if block_id not in ids:
                                        block_iterations[block_id] = 0
                            if not ids:
                                continue
                            if futures[slot] is None:
                                results = self._solve_degraded(
                                    ids, payload, previous,
                                    local_tol, local_max_iter, obs,
                                    worker)
                            else:
                                results = self._collect_with_recovery(
                                    slot, futures[slot], active, pools,
                                    previous, local_tol, local_max_iter,
                                    supersteps, deadline_seconds,
                                    retries, telemetry, trace_ctx, obs,
                                    board, dispatch_ids=ids)
                            for block_id, block_scores, inner in results:
                                members = self._members[block_id]
                                if block_scores is None:
                                    # Zero-copy return: the worker wrote
                                    # straight into the result buffer.
                                    block_scores = board.result[members]
                                new_scores[members] = block_scores
                                changed_now[block_id] = \
                                    not np.array_equal(block_scores,
                                                       previous[members])
                                step_local += inner
                                if block_iterations is not None:
                                    block_iterations[block_id] = inner
                        changed_prev = changed_now
                        local_iterations += step_local
                        blocks_skipped += step_skipped
                        if telemetry is not None and step_skipped:
                            telemetry.incr("blocks_skipped",
                                           step_skipped)
                        messages += self._cut_edges
                        change = np.abs(new_scores - previous)
                        residual = float(change.sum())
                        scores = new_scores
                        seconds = time.perf_counter() - superstep_start
                        if telemetry is not None:
                            telemetry.record_superstep(
                                seconds, self._cut_edges, residual,
                                local_iterations=step_local,
                                block_iterations=block_iterations)
                            stream.record(
                                residual, delta=float(change.max()),
                                active=int(np.count_nonzero(
                                    change > tol)),
                                seconds=seconds)
                        if obs is not None:
                            obs.metrics.counter(
                                "repro_supersteps_total",
                                "Parallel supersteps executed.").inc()
                            superstep_hist.observe(seconds)
                    if residual <= tol:
                        break
                if obs is not None:
                    obs.metrics.gauge(
                        "repro_active_workers",
                        "Workers still running in their own process "
                        "(not degraded to inline).").set(
                        sum(1 for pool in pools if pool is not None))
        finally:
            for pool in pools:
                if pool is not None:
                    pool.shutdown()
            if board is not None:
                board.cleanup()
        converged = residual <= tol
        scores = scores / scores.sum()
        return BlockRankResult(scores, supersteps, messages,
                               local_iterations, residual, converged,
                               blocks_skipped=blocks_skipped)

    # ------------------------------------------------------------------
    # failure handling

    def _collect_with_recovery(self, slot, future, active, pools,
                               previous, local_tol, local_max_iter,
                               superstep, deadline_seconds, retries,
                               telemetry, trace_ctx=None, obs=None,
                               board=None, dispatch_ids=None):
        """Await one worker's results, retrying through crashes/hangs.

        On failure the worker's pool is torn down and respawned — on the
        zero-copy plane the replacement re-attaches the segments — and
        the identical task re-dispatched (inputs are immutable, so a
        replay is safe). After ``retry_policy.max_retries`` replacements
        the worker is degraded: its pool slot becomes ``None`` and the
        coordinator solves its blocks inline — this superstep and every
        later one.

        A *timeout* additionally poisons the slot's shared-memory write
        path for the rest of the run: the abandoned process may still be
        alive, so its region of the result buffer can no longer be
        trusted — replacements return scores by value instead, and the
        zombie's eventual writes land in memory nobody reads (its next
        frontier read dies on the stale epoch check anyway).

        With ``obs``, every failure becomes a ``worker.failure`` event
        on the open superstep span, every respawn a ``recovery.respawn``
        span and every degradation a ``recovery.degrade`` span (the
        inline solve runs inside it), plus
        ``repro_worker_failures_total{kind=...}`` /
        ``repro_recoveries_total{kind=...}`` counters.
        """
        worker, block_ids, payload = active[slot]
        if dispatch_ids is not None:
            # Compaction dispatched a subset; replays and the degraded
            # fallback must solve exactly that subset.
            block_ids = dispatch_ids
        attempt = 0
        while True:
            try:
                results, spans = future.result(timeout=deadline_seconds)
                if obs is not None and spans:
                    obs.tracer.adopt(spans)
                return results
            except (BrokenProcessPool, FuturesTimeout) as exc:
                kind = "timeout" if isinstance(exc, FuturesTimeout) \
                    else "crash"
                if telemetry is not None:
                    telemetry.record_recovery(superstep, worker, kind,
                                              attempt, block_ids)
                if obs is not None:
                    obs.event("worker.failure", worker=worker,
                              cause=kind, attempt=attempt,
                              superstep=superstep)
                    obs.metrics.counter(
                        "repro_worker_failures_total",
                        "Worker failures seen by the coordinator.",
                        labels=("kind",)).inc(kind=kind)
                if board is not None and kind == "timeout" \
                        and board.write_ok.get(slot, False):
                    board.write_ok[slot] = False
                    if telemetry is not None:
                        telemetry.incr("ipc.poisoned")
                    if obs is not None:
                        obs.event("ipc.shm_poison", worker=worker,
                                  superstep=superstep)
                # A hung worker may still be executing: abandon its pool
                # without waiting (the process exits once it finishes).
                pools[slot].shutdown(wait=False, cancel_futures=True)
                pools[slot] = None
                attempt += 1
                if attempt > self.retry_policy.max_retries:
                    if telemetry is not None:
                        telemetry.record_recovery(superstep, worker,
                                                  "degrade", attempt,
                                                  block_ids)
                    if obs is not None:
                        obs.metrics.counter(
                            "repro_recoveries_total",
                            "Recovery actions taken by the coordinator.",
                            labels=("kind",)).inc(kind="degrade")
                    degrade_span = obs.span(
                        "recovery.degrade", worker=worker,
                        superstep=superstep, attempt=attempt,
                        blocks=len(block_ids)) \
                        if obs is not None else nullcontext()
                    with degrade_span:
                        return self._solve_inline(block_ids, payload,
                                                  previous, local_tol,
                                                  local_max_iter)
                respawn_span = obs.span(
                    "recovery.respawn", worker=worker,
                    superstep=superstep, attempt=attempt, cause=kind) \
                    if obs is not None else nullcontext()
                with respawn_span:
                    delay = retries.next_delay()
                    if delay > 0:
                        time.sleep(delay)
                    init_bytes = self._worker_init_bytes(worker, board)
                    pools[slot] = self._spawn_pool(worker, init_bytes)
                    if telemetry is not None:
                        telemetry.record_recovery(superstep, worker,
                                                  "respawn", attempt,
                                                  block_ids)
                    self._record_spawn(worker, init_bytes, board,
                                       telemetry, obs)
                    if obs is not None:
                        obs.metrics.counter(
                            "repro_recoveries_total",
                            "Recovery actions taken by the coordinator.",
                            labels=("kind",)).inc(kind="respawn")
                    try:
                        future = self._dispatch(
                            pools[slot], slot, block_ids, previous,
                            superstep, board, local_tol, local_max_iter,
                            superstep, attempt, trace_ctx, telemetry)
                    except BrokenProcessPool:  # pragma: no cover
                        # The replacement died before accepting work;
                        # loop around as if the dispatch itself had
                        # crashed.
                        future = Future()
                        future.set_exception(
                            BrokenProcessPool("respawned pool broken"))
