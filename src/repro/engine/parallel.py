"""Multiprocessing executor for the block-centric engine.

Reproduces the paper's parallel-scalability experiment on one machine:
each worker process owns a set of blocks (built once, in the worker, via
an initializer), and every superstep ships only the previous global score
vector to workers and block scores back — the in-process analogue of a
graph-centric distributed runtime.

Payload discipline: every worker receives **only its own blocks**. Each
worker is backed by its own single-process pool so its initializer can be
handed exactly its chunk — a shared pool would force one initargs tuple
(the whole graph) onto every worker, pickling O(num_workers × |E|) bytes
for data each worker never reads. The telemetry layer records the bytes
actually shipped so regressions here are measurable.

The fixed point is identical to :class:`repro.engine.blocks.BlockEngine`;
only wall-clock changes with ``num_workers`` (E5's speedup curve).
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.engine.blocks import (
    BlockRankResult,
    _block_operators,
    solve_block,
)
from repro.ranking.pagerank import validate_jump

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.telemetry import SolverTelemetry

# Worker-process state, installed by _init_worker.
_WORKER_BLOCKS: Dict[int, tuple] = {}
_WORKER_DAMPING: float = 0.85


def _init_worker(block_payload: Dict[int, tuple], damping: float) -> None:
    """Install this worker's blocks (runs once per worker process)."""
    global _WORKER_BLOCKS, _WORKER_DAMPING
    _WORKER_BLOCKS = block_payload
    _WORKER_DAMPING = damping


def _solve_blocks_task(args: Tuple[List[int], np.ndarray, float, int]
                       ) -> List[Tuple[int, np.ndarray, int]]:
    """Solve this worker's blocks sequentially with fresh local values.

    Cross-worker coupling sees the previous superstep; blocks owned by
    the same worker see each other's freshly computed scores (the
    asynchronous-within-partition trait of graph-centric runtimes).
    """
    block_ids, previous, local_tol, local_max_iter = args
    working = previous.copy()
    results = []
    for block_id in block_ids:
        internal_op, boundary_op, jump_block, members = \
            _WORKER_BLOCKS[block_id]
        external = boundary_op @ working
        scores, inner = solve_block(
            internal_op, external, jump_block, working[members],
            _WORKER_DAMPING, local_tol, local_max_iter)
        working[members] = scores
        results.append((block_id, scores, inner))
    return results


class ParallelBlockEngine:
    """Graph-centric PageRank across ``num_workers`` processes.

    Blocks are dealt to workers in contiguous chunks; each superstep
    dispatches one task per worker (its whole block set), so scheduling
    overhead stays constant as block count grows.
    """

    def __init__(self, graph: CSRGraph, partition: Partition,
                 damping: float = 0.85, num_workers: int = 2,
                 jump: Optional[np.ndarray] = None,
                 edge_weights: Optional[np.ndarray] = None) -> None:
        if num_workers <= 0:
            raise ConfigError("num_workers must be positive")
        if partition.num_nodes != graph.num_nodes:
            raise ConfigError("partition does not cover this graph")
        if not 0.0 <= damping < 1.0:
            raise ConfigError(f"damping must be in [0, 1), got {damping}")
        self.graph = graph
        self.partition = partition
        self.damping = damping
        self.num_workers = num_workers
        self.jump = validate_jump(jump, graph.num_nodes)

        members, internal_ops, boundary_ops, dangling, _, cut_edges = \
            _block_operators(graph, partition, edge_weights)
        self._members = members
        self._dangling = dangling
        self._cut_edges = cut_edges
        # Contiguous chunks of blocks per worker (for a time-ordered range
        # partition, each worker owns one contiguous time span), processed
        # newest-first within the worker.
        chunk = -(-partition.num_blocks // num_workers)
        self._assignment_to_worker = [
            sorted(range(worker * chunk,
                         min((worker + 1) * chunk, partition.num_blocks)),
                   reverse=True)
            for worker in range(num_workers)
        ]
        # Per-worker payloads: each worker's initializer receives only
        # the blocks it owns, never the whole graph.
        self._worker_payloads: List[Dict[int, tuple]] = [
            {block: (internal_ops[block], boundary_ops[block],
                     self.jump[members[block]], members[block])
             for block in block_ids}
            for block_ids in self._assignment_to_worker
        ]

    def run(self, tol: float = 1e-10, max_supersteps: int = 100,
            local_tol: float = 1e-12, local_max_iter: int = 50,
            telemetry: Optional["SolverTelemetry"] = None
            ) -> BlockRankResult:
        """Run supersteps across the worker pool until convergence.

        ``telemetry`` (optional) records per-superstep wall-clock,
        boundary messages, residual and per-block inner iterations, plus
        worker→block attribution and the bytes pickled toward workers
        (block payloads at startup, score vectors per superstep). The
        fixed point is unchanged with telemetry on or off.
        """
        if tol <= 0 or local_tol <= 0:
            raise ConfigError("tolerances must be positive")
        if max_supersteps <= 0 or local_max_iter <= 0:
            raise ConfigError("iteration budgets must be positive")
        n = self.graph.num_nodes
        if n == 0:
            return BlockRankResult(np.zeros(0), 0, 0, 0, 0.0, True)

        active = [(worker, block_ids, self._worker_payloads[worker])
                  for worker, block_ids
                  in enumerate(self._assignment_to_worker) if block_ids]
        if telemetry is not None:
            for worker, block_ids, payload in active:
                telemetry.record_worker(worker, block_ids)
                telemetry.record_bytes(
                    len(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)))

        scores = self.jump.copy()
        messages = 0
        local_iterations = 0
        residual = float("inf")
        supersteps = 0
        # One single-process pool per worker, so each initializer ships
        # exactly that worker's payload.
        pools = [ProcessPoolExecutor(
            max_workers=1, initializer=_init_worker,
            initargs=(payload, self.damping))
            for _, _, payload in active]
        try:
            for supersteps in range(1, max_supersteps + 1):
                superstep_start = time.perf_counter()
                previous = scores.copy()
                futures = [
                    pool.submit(_solve_blocks_task,
                                (block_ids, previous, local_tol,
                                 local_max_iter))
                    for pool, (_, block_ids, _) in zip(pools, active)
                ]
                new_scores = scores.copy()
                step_local = 0
                block_iterations: Optional[dict] = \
                    {} if telemetry is not None else None
                for future in futures:
                    for block_id, block_scores, inner in future.result():
                        new_scores[self._members[block_id]] = block_scores
                        step_local += inner
                        if block_iterations is not None:
                            block_iterations[block_id] = inner
                local_iterations += step_local
                messages += self._cut_edges
                residual = float(np.abs(new_scores - previous).sum())
                scores = new_scores
                if telemetry is not None:
                    # Every worker received the previous score vector.
                    telemetry.record_bytes(previous.nbytes * len(active))
                    telemetry.record_superstep(
                        time.perf_counter() - superstep_start,
                        self._cut_edges, residual,
                        local_iterations=step_local,
                        block_iterations=block_iterations)
                if residual <= tol:
                    break
        finally:
            for pool in pools:
                pool.shutdown()
        converged = residual <= tol
        scores = scores / scores.sum()
        return BlockRankResult(scores, supersteps, messages,
                               local_iterations, residual, converged)
