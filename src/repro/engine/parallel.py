"""Multiprocessing executor for the block-centric engine.

Reproduces the paper's parallel-scalability experiment on one machine:
each worker process owns a set of blocks (built once, in the worker, via
an initializer), and every superstep ships only the previous global score
vector to workers and block scores back — the in-process analogue of a
graph-centric distributed runtime.

The fixed point is identical to :class:`repro.engine.blocks.BlockEngine`;
only wall-clock changes with ``num_workers`` (E5's speedup curve).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.engine.blocks import (
    BlockRankResult,
    _block_operators,
    solve_block,
)
from repro.ranking.pagerank import validate_jump

# Worker-process state, installed by _init_worker.
_WORKER_BLOCKS: Dict[int, tuple] = {}
_WORKER_DAMPING: float = 0.85


def _init_worker(block_payload: Dict[int, tuple], damping: float) -> None:
    """Install this worker's blocks (runs once per worker process)."""
    global _WORKER_BLOCKS, _WORKER_DAMPING
    _WORKER_BLOCKS = block_payload
    _WORKER_DAMPING = damping


def _solve_blocks_task(args: Tuple[List[int], np.ndarray, float, int]
                       ) -> List[Tuple[int, np.ndarray, int]]:
    """Solve this worker's blocks sequentially with fresh local values.

    Cross-worker coupling sees the previous superstep; blocks owned by
    the same worker see each other's freshly computed scores (the
    asynchronous-within-partition trait of graph-centric runtimes).
    """
    block_ids, previous, local_tol, local_max_iter = args
    working = previous.copy()
    results = []
    for block_id in block_ids:
        internal_op, boundary_op, jump_block, members = \
            _WORKER_BLOCKS[block_id]
        external = boundary_op @ working
        scores, inner = solve_block(
            internal_op, external, jump_block, working[members],
            _WORKER_DAMPING, local_tol, local_max_iter)
        working[members] = scores
        results.append((block_id, scores, inner))
    return results


class ParallelBlockEngine:
    """Graph-centric PageRank across ``num_workers`` processes.

    Blocks are dealt to workers round-robin; each superstep dispatches one
    task per worker (its whole block set), so scheduling overhead stays
    constant as block count grows.
    """

    def __init__(self, graph: CSRGraph, partition: Partition,
                 damping: float = 0.85, num_workers: int = 2,
                 jump: Optional[np.ndarray] = None,
                 edge_weights: Optional[np.ndarray] = None) -> None:
        if num_workers <= 0:
            raise ConfigError("num_workers must be positive")
        if partition.num_nodes != graph.num_nodes:
            raise ConfigError("partition does not cover this graph")
        if not 0.0 <= damping < 1.0:
            raise ConfigError(f"damping must be in [0, 1), got {damping}")
        self.graph = graph
        self.partition = partition
        self.damping = damping
        self.num_workers = num_workers
        self.jump = validate_jump(jump, graph.num_nodes)

        members, internal_ops, boundary_ops, dangling, _, cut_edges = \
            _block_operators(graph, partition, edge_weights)
        self._members = members
        self._dangling = dangling
        self._cut_edges = cut_edges
        self._payload = {
            block: (internal_ops[block], boundary_ops[block],
                    self.jump[members[block]], members[block])
            for block in range(partition.num_blocks)
        }
        # Contiguous chunks of blocks per worker (for a time-ordered range
        # partition, each worker owns one contiguous time span), processed
        # newest-first within the worker.
        chunk = -(-partition.num_blocks // num_workers)
        self._assignment_to_worker = [
            sorted(range(worker * chunk,
                         min((worker + 1) * chunk, partition.num_blocks)),
                   reverse=True)
            for worker in range(num_workers)
        ]

    def run(self, tol: float = 1e-10, max_supersteps: int = 100,
            local_tol: float = 1e-12, local_max_iter: int = 50
            ) -> BlockRankResult:
        """Run supersteps across the worker pool until convergence."""
        if tol <= 0 or local_tol <= 0:
            raise ConfigError("tolerances must be positive")
        if max_supersteps <= 0 or local_max_iter <= 0:
            raise ConfigError("iteration budgets must be positive")
        n = self.graph.num_nodes
        if n == 0:
            return BlockRankResult(np.zeros(0), 0, 0, 0, 0.0, True)

        scores = self.jump.copy()
        messages = 0
        local_iterations = 0
        residual = float("inf")
        supersteps = 0
        with ProcessPoolExecutor(
                max_workers=self.num_workers,
                initializer=_init_worker,
                initargs=(self._payload, self.damping)) as pool:
            for supersteps in range(1, max_supersteps + 1):
                previous = scores.copy()
                tasks = [
                    (block_ids, previous, local_tol, local_max_iter)
                    for block_ids in self._assignment_to_worker
                    if block_ids
                ]
                new_scores = scores.copy()
                for worker_result in pool.map(_solve_blocks_task, tasks):
                    for block_id, block_scores, inner in worker_result:
                        new_scores[self._members[block_id]] = block_scores
                        local_iterations += inner
                messages += self._cut_edges
                residual = float(np.abs(new_scores - previous).sum())
                scores = new_scores
                if residual <= tol:
                    break
        converged = residual <= tol
        scores = scores / scores.sum()
        return BlockRankResult(scores, supersteps, messages,
                               local_iterations, residual, converged)
