"""Multiprocessing executor for the block-centric engine.

Reproduces the paper's parallel-scalability experiment on one machine:
each worker process owns a set of blocks (built once, in the worker, via
an initializer), and every superstep ships only the previous global score
vector to workers and block scores back — the in-process analogue of a
graph-centric distributed runtime.

Payload discipline: every worker receives **only its own blocks**. Each
worker is backed by its own single-process pool so its initializer can be
handed exactly its chunk — a shared pool would force one initargs tuple
(the whole graph) onto every worker, pickling O(num_workers × |E|) bytes
for data each worker never reads. The telemetry layer records the bytes
actually shipped so regressions here are measurable.

Failure handling: a superstep's inputs are immutable (the previous global
score vector), so any failed dispatch can be replayed without touching
history. When a worker process dies (``BrokenProcessPool``) or blows its
:class:`repro.resilience.Deadline`, the coordinator respawns that
worker's single-process pool and re-dispatches the same blocks under a
:class:`repro.resilience.RetryPolicy`; once retries are exhausted the
worker is *degraded* — its blocks are solved inline in the coordinator
through the very same code path — for the rest of the run. Recovery
never changes the math: the fixed point stays **bit-identical** to the
fault-free run, which the fault-injection suite asserts with
``np.array_equal``.

The fixed point is identical to :class:`repro.engine.blocks.BlockEngine`;
only wall-clock changes with ``num_workers`` (E5's speedup curve).
"""

from __future__ import annotations

import pickle
import time
from contextlib import nullcontext
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.engine.blocks import (
    BlockRankResult,
    _block_operators,
    solve_block,
)
from repro.obs.trace import TraceContext, Tracer
from repro.ranking.pagerank import validate_jump
from repro.resilience import Deadline, FaultPlan, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.handle import Observability
    from repro.obs.telemetry import SolverTelemetry

# Worker-process state, installed by _init_worker.
_WORKER_BLOCKS: Dict[int, tuple] = {}
_WORKER_DAMPING: float = 0.85
_WORKER_ID: int = -1
_WORKER_PLAN: Optional[FaultPlan] = None


def _init_worker(block_payload: Dict[int, tuple], damping: float,
                 worker_id: int = -1,
                 fault_plan: Optional[FaultPlan] = None) -> None:
    """Install this worker's blocks (runs once per worker process)."""
    global _WORKER_BLOCKS, _WORKER_DAMPING, _WORKER_ID, _WORKER_PLAN
    _WORKER_BLOCKS = block_payload
    _WORKER_DAMPING = damping
    _WORKER_ID = worker_id
    _WORKER_PLAN = fault_plan


def _solve_block_set(blocks: Dict[int, tuple], block_ids: List[int],
                     previous: np.ndarray, damping: float,
                     local_tol: float, local_max_iter: int
                     ) -> List[Tuple[int, np.ndarray, int]]:
    """Solve a set of blocks sequentially with fresh local values.

    Cross-worker coupling sees the previous superstep; blocks owned by
    the same worker see each other's freshly computed scores (the
    asynchronous-within-partition trait of graph-centric runtimes).

    This is the *single* solve path: worker processes and the
    coordinator's degraded-worker fallback both call it, which is what
    makes recovery bit-identical to normal execution.
    """
    working = previous.copy()
    results = []
    for block_id in block_ids:
        internal_op, boundary_op, jump_block, members = blocks[block_id]
        external = boundary_op @ working
        scores, inner = solve_block(
            internal_op, external, jump_block, working[members],
            damping, local_tol, local_max_iter)
        working[members] = scores
        results.append((block_id, scores, inner))
    return results


def _solve_blocks_task(args: Tuple[List[int], np.ndarray, float, int,
                                   int, int, Optional[TraceContext]]
                       ) -> Tuple[List[Tuple[int, np.ndarray, int]],
                                  List[Dict[str, object]]]:
    """One worker task: fire any scripted fault, then solve the blocks.

    Returns ``(results, spans)``. When the coordinator ships a
    :class:`TraceContext`, the solve runs inside a ``worker.solve`` span
    parented under the coordinator's superstep span, and the finished
    span dicts travel back with the results for the coordinator to
    :meth:`~repro.obs.trace.Tracer.adopt`. A scripted fault fires
    *inside* the span — a crashed attempt's span dies with the process
    and the coordinator's recovery spans document the gap instead.
    """
    (block_ids, previous, local_tol, local_max_iter, superstep,
     attempt, trace_ctx) = args
    tracer = Tracer(parent=trace_ctx) if trace_ctx is not None else None
    span = tracer.span("worker.solve", worker=_WORKER_ID,
                       superstep=superstep, attempt=attempt,
                       blocks=len(block_ids)) \
        if tracer is not None else nullcontext()
    with span:
        if _WORKER_PLAN is not None:
            _WORKER_PLAN.fire_worker_fault(_WORKER_ID, superstep, attempt)
        results = _solve_block_set(_WORKER_BLOCKS, block_ids, previous,
                                   _WORKER_DAMPING, local_tol,
                                   local_max_iter)
    return results, tracer.export() if tracer is not None else []


class ParallelBlockEngine:
    """Graph-centric PageRank across ``num_workers`` processes.

    Blocks are dealt to workers in contiguous chunks; each superstep
    dispatches one task per worker (its whole block set), so scheduling
    overhead stays constant as block count grows.

    ``retry_policy`` (default :class:`repro.resilience.RetryPolicy`)
    bounds how often a crashed or hung worker is respawned before its
    blocks degrade to inline coordinator execution; ``deadline``
    (default none: wait forever) turns a hung worker into a retriable
    failure; ``fault_plan`` injects deterministic failures for the
    resilience test suite and must stay ``None`` in production runs.
    """

    def __init__(self, graph: CSRGraph, partition: Partition,
                 damping: float = 0.85, num_workers: int = 2,
                 jump: Optional[np.ndarray] = None,
                 edge_weights: Optional[np.ndarray] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 deadline: Optional[Deadline] = None,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        if num_workers <= 0:
            raise ConfigError("num_workers must be positive")
        if partition.num_nodes != graph.num_nodes:
            raise ConfigError("partition does not cover this graph")
        if not 0.0 <= damping < 1.0:
            raise ConfigError(f"damping must be in [0, 1), got {damping}")
        self.graph = graph
        self.partition = partition
        self.damping = damping
        self.num_workers = num_workers
        self.jump = validate_jump(jump, graph.num_nodes)
        self.retry_policy = retry_policy if retry_policy is not None \
            else RetryPolicy()
        self.deadline = deadline
        self.fault_plan = fault_plan

        members, internal_ops, boundary_ops, dangling, _, cut_edges = \
            _block_operators(graph, partition, edge_weights)
        self._members = members
        self._dangling = dangling
        self._cut_edges = cut_edges
        # Contiguous chunks of blocks per worker (for a time-ordered range
        # partition, each worker owns one contiguous time span), processed
        # newest-first within the worker.
        chunk = -(-partition.num_blocks // num_workers)
        self._assignment_to_worker = [
            sorted(range(worker * chunk,
                         min((worker + 1) * chunk, partition.num_blocks)),
                   reverse=True)
            for worker in range(num_workers)
        ]
        # Per-worker payloads: each worker's initializer receives only
        # the blocks it owns, never the whole graph.
        self._worker_payloads: List[Dict[int, tuple]] = [
            {block: (internal_ops[block], boundary_ops[block],
                     self.jump[members[block]], members[block])
             for block in block_ids}
            for block_ids in self._assignment_to_worker
        ]

    # ------------------------------------------------------------------

    def _spawn_pool(self, worker: int,
                    payload: Dict[int, tuple]) -> ProcessPoolExecutor:
        """One single-process pool whose initializer ships exactly this
        worker's payload."""
        return ProcessPoolExecutor(
            max_workers=1, initializer=_init_worker,
            initargs=(payload, self.damping, worker, self.fault_plan))

    def _solve_inline(self, block_ids: List[int],
                      payload: Dict[int, tuple], previous: np.ndarray,
                      local_tol: float, local_max_iter: int
                      ) -> List[Tuple[int, np.ndarray, int]]:
        """Degraded path: the coordinator stands in for a dead worker."""
        return _solve_block_set(payload, block_ids, previous,
                                self.damping, local_tol, local_max_iter)

    def _solve_degraded(self, block_ids: List[int],
                        payload: Dict[int, tuple], previous: np.ndarray,
                        local_tol: float, local_max_iter: int,
                        obs: Optional["Observability"], worker: int
                        ) -> List[Tuple[int, np.ndarray, int]]:
        """Inline solve for an already-degraded worker, traced as a
        ``worker.solve_inline`` span so degraded supersteps stay visible
        in the trace."""
        span = obs.span("worker.solve_inline", worker=worker,
                        blocks=len(block_ids), degraded=True) \
            if obs is not None else nullcontext()
        with span:
            return self._solve_inline(block_ids, payload, previous,
                                      local_tol, local_max_iter)

    def run(self, tol: float = 1e-10, max_supersteps: int = 100,
            local_tol: float = 1e-12, local_max_iter: int = 50,
            telemetry: Optional["SolverTelemetry"] = None,
            obs: Optional["Observability"] = None
            ) -> BlockRankResult:
        """Run supersteps across the worker pool until convergence.

        ``telemetry`` (optional) records per-superstep wall-clock,
        boundary messages, residual and per-block inner iterations, plus
        worker→block attribution, the bytes pickled toward workers
        (block payloads at startup, score vectors per superstep), and
        every recovery event (crash / timeout / respawn / degrade). The
        fixed point is unchanged with telemetry on or off — and with
        faults on or off.

        ``obs`` (optional) additionally produces **one trace** covering
        the whole run: a ``parallel.run`` root span, one ``superstep``
        span per superstep, ``worker.solve`` spans shipped back from the
        worker processes (parented under the superstep span via a
        pickled :class:`repro.obs.trace.TraceContext`),
        ``recovery.respawn`` / ``recovery.degrade`` spans on the
        recovery path, and counters/histograms in ``obs.metrics``.
        """
        if tol <= 0 or local_tol <= 0:
            raise ConfigError("tolerances must be positive")
        if max_supersteps <= 0 or local_max_iter <= 0:
            raise ConfigError("iteration budgets must be positive")
        if obs is not None and telemetry is None:
            telemetry = obs.telemetry
        n = self.graph.num_nodes
        if n == 0:
            return BlockRankResult(np.zeros(0), 0, 0, 0, 0.0, True)

        active = [(worker, block_ids, self._worker_payloads[worker])
                  for worker, block_ids
                  in enumerate(self._assignment_to_worker) if block_ids]
        if telemetry is not None:
            for worker, block_ids, payload in active:
                telemetry.record_worker(worker, block_ids)
                telemetry.record_bytes(
                    len(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)))

        scores = self.jump.copy()
        messages = 0
        local_iterations = 0
        residual = float("inf")
        supersteps = 0
        deadline_seconds = None if self.deadline is None \
            else self.deadline.seconds
        retries = self.retry_policy.delays()
        stream = telemetry.open_stream("parallel_engine",
                                       kind="superstep") \
            if telemetry is not None else None
        superstep_hist = obs.metrics.histogram(
            "repro_superstep_seconds",
            "Wall-clock seconds per parallel superstep.") \
            if obs is not None else None
        run_span = obs.span("parallel.run", nodes=n,
                            workers=len(active),
                            blocks=self.partition.num_blocks) \
            if obs is not None else nullcontext()
        # One single-process pool per worker; a ``None`` slot marks a
        # worker degraded to inline coordinator execution.
        pools: List[Optional[ProcessPoolExecutor]] = [
            self._spawn_pool(worker, payload)
            for worker, _, payload in active]
        try:
            with run_span:
                for supersteps in range(1, max_supersteps + 1):
                    superstep_start = time.perf_counter()
                    previous = scores.copy()
                    step_span = obs.span("superstep", index=supersteps) \
                        if obs is not None else nullcontext()
                    with step_span:
                        trace_ctx = obs.tracer.current_context() \
                            if obs is not None else None
                        futures: List[Optional[object]] = []
                        for slot, (worker, block_ids, payload) \
                                in enumerate(active):
                            if pools[slot] is None:
                                futures.append(None)
                                continue
                            futures.append(pools[slot].submit(
                                _solve_blocks_task,
                                (block_ids, previous, local_tol,
                                 local_max_iter, supersteps, 0,
                                 trace_ctx)))
                        new_scores = scores.copy()
                        step_local = 0
                        block_iterations: Optional[dict] = \
                            {} if telemetry is not None else None
                        shipped_to = 0
                        for slot, (worker, block_ids, payload) \
                                in enumerate(active):
                            if futures[slot] is None:
                                results = self._solve_degraded(
                                    block_ids, payload, previous,
                                    local_tol, local_max_iter, obs,
                                    worker)
                            else:
                                shipped_to += 1
                                results = self._collect_with_recovery(
                                    slot, futures[slot], active, pools,
                                    previous, local_tol, local_max_iter,
                                    supersteps, deadline_seconds,
                                    retries, telemetry, trace_ctx, obs)
                            for block_id, block_scores, inner in results:
                                new_scores[self._members[block_id]] = \
                                    block_scores
                                step_local += inner
                                if block_iterations is not None:
                                    block_iterations[block_id] = inner
                        local_iterations += step_local
                        messages += self._cut_edges
                        change = np.abs(new_scores - previous)
                        residual = float(change.sum())
                        scores = new_scores
                        seconds = time.perf_counter() - superstep_start
                        if telemetry is not None:
                            # Every live worker received the previous
                            # vector.
                            telemetry.record_bytes(
                                previous.nbytes * shipped_to)
                            telemetry.record_superstep(
                                seconds, self._cut_edges, residual,
                                local_iterations=step_local,
                                block_iterations=block_iterations)
                            stream.record(
                                residual, delta=float(change.max()),
                                active=int(np.count_nonzero(
                                    change > tol)),
                                seconds=seconds)
                        if obs is not None:
                            obs.metrics.counter(
                                "repro_supersteps_total",
                                "Parallel supersteps executed.").inc()
                            superstep_hist.observe(seconds)
                    if residual <= tol:
                        break
                if obs is not None:
                    obs.metrics.gauge(
                        "repro_active_workers",
                        "Workers still running in their own process "
                        "(not degraded to inline).").set(
                        sum(1 for pool in pools if pool is not None))
        finally:
            for pool in pools:
                if pool is not None:
                    pool.shutdown()
        converged = residual <= tol
        scores = scores / scores.sum()
        return BlockRankResult(scores, supersteps, messages,
                               local_iterations, residual, converged)

    # ------------------------------------------------------------------
    # failure handling

    def _collect_with_recovery(self, slot, future, active, pools,
                               previous, local_tol, local_max_iter,
                               superstep, deadline_seconds, retries,
                               telemetry, trace_ctx=None, obs=None):
        """Await one worker's results, retrying through crashes/hangs.

        On failure the worker's pool is torn down and respawned, and the
        identical task re-dispatched (inputs are immutable, so a replay
        is safe). After ``retry_policy.max_retries`` replacements the
        worker is degraded: its pool slot becomes ``None`` and the
        coordinator solves its blocks inline — this superstep and every
        later one.

        With ``obs``, every failure becomes a ``worker.failure`` event
        on the open superstep span, every respawn a ``recovery.respawn``
        span and every degradation a ``recovery.degrade`` span (the
        inline solve runs inside it), plus
        ``repro_worker_failures_total{kind=...}`` /
        ``repro_recoveries_total{kind=...}`` counters.
        """
        worker, block_ids, payload = active[slot]
        attempt = 0
        while True:
            try:
                results, spans = future.result(timeout=deadline_seconds)
                if obs is not None and spans:
                    obs.tracer.adopt(spans)
                return results
            except (BrokenProcessPool, FuturesTimeout) as exc:
                kind = "timeout" if isinstance(exc, FuturesTimeout) \
                    else "crash"
                if telemetry is not None:
                    telemetry.record_recovery(superstep, worker, kind,
                                              attempt, block_ids)
                if obs is not None:
                    obs.event("worker.failure", worker=worker,
                              cause=kind, attempt=attempt,
                              superstep=superstep)
                    obs.metrics.counter(
                        "repro_worker_failures_total",
                        "Worker failures seen by the coordinator.",
                        labels=("kind",)).inc(kind=kind)
                # A hung worker may still be executing: abandon its pool
                # without waiting (the process exits once it finishes).
                pools[slot].shutdown(wait=False, cancel_futures=True)
                pools[slot] = None
                attempt += 1
                if attempt > self.retry_policy.max_retries:
                    if telemetry is not None:
                        telemetry.record_recovery(superstep, worker,
                                                  "degrade", attempt,
                                                  block_ids)
                    if obs is not None:
                        obs.metrics.counter(
                            "repro_recoveries_total",
                            "Recovery actions taken by the coordinator.",
                            labels=("kind",)).inc(kind="degrade")
                    degrade_span = obs.span(
                        "recovery.degrade", worker=worker,
                        superstep=superstep, attempt=attempt,
                        blocks=len(block_ids)) \
                        if obs is not None else nullcontext()
                    with degrade_span:
                        return self._solve_inline(block_ids, payload,
                                                  previous, local_tol,
                                                  local_max_iter)
                respawn_span = obs.span(
                    "recovery.respawn", worker=worker,
                    superstep=superstep, attempt=attempt, cause=kind) \
                    if obs is not None else nullcontext()
                with respawn_span:
                    delay = retries.next_delay()
                    if delay > 0:
                        time.sleep(delay)
                    pools[slot] = self._spawn_pool(worker, payload)
                    if telemetry is not None:
                        telemetry.record_recovery(superstep, worker,
                                                  "respawn", attempt,
                                                  block_ids)
                        telemetry.record_bytes(len(pickle.dumps(
                            payload, pickle.HIGHEST_PROTOCOL)))
                    if obs is not None:
                        obs.metrics.counter(
                            "repro_recoveries_total",
                            "Recovery actions taken by the coordinator.",
                            labels=("kind",)).inc(kind="respawn")
                    try:
                        future = pools[slot].submit(
                            _solve_blocks_task,
                            (block_ids, previous, local_tol,
                             local_max_iter, superstep, attempt,
                             trace_ctx))
                    except BrokenProcessPool:  # pragma: no cover
                        # The replacement died before accepting work;
                        # loop around as if the dispatch itself had
                        # crashed.
                        future = Future()
                        future.set_exception(
                            BrokenProcessPool("respawned pool broken"))
