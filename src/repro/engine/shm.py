"""Zero-copy shared-memory IPC for the parallel block engine.

Process-pool dispatch pays for every array it ships twice: once to
pickle it in the coordinator and once to unpickle it in the worker.
For the block-centric engine those arrays are *immutable* (the CSR
block operators) or *single-writer per superstep* (the score frontier),
so Pregel-style systems put them in shared address space and ship only
control messages. This module provides the minimal machinery for that
on one machine, on top of :mod:`multiprocessing.shared_memory`:

* :class:`ArraySpec` / :class:`SegmentLayout` — a picklable manifest
  describing where each named numpy array lives inside one segment
  (dtype, shape, byte offset). The manifest is the only thing that
  still crosses the process boundary by value.
* :func:`pack_arrays` — coordinator side: lay out named arrays into a
  freshly created segment (16-byte aligned) and return the live
  ``SharedMemory`` handle plus its layout.
* :func:`attach_arrays` — worker side: map an existing segment and
  rebuild zero-copy numpy views from its layout. Attachments are
  unregistered from the ``resource_tracker`` so ownership (and the
  single ``unlink``) stays with the coordinator — a worker dying must
  not tear the segment down under everyone else.

Lifecycle contract: the coordinator creates segments, workers attach
and only ever ``close`` (implicitly, at process exit); the coordinator
``close`` + ``unlink``\\ s every segment in a ``finally`` block, so no
named segment survives either a clean or a crashed run.
"""

from __future__ import annotations

import secrets
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

try:  # pragma: no cover - exercised implicitly on every import
    from multiprocessing import resource_tracker
    from multiprocessing.shared_memory import SharedMemory
    SHARED_MEMORY_AVAILABLE = True
except ImportError:  # pragma: no cover - platform without shm support
    SharedMemory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]
    SHARED_MEMORY_AVAILABLE = False

#: Segment offsets are rounded up to this many bytes so every view is
#: safely aligned for any dtype we store (float64/int64 need 8).
_ALIGN = 16


class StaleFrontierError(RuntimeError):
    """A worker observed an epoch other than the one it was dispatched.

    Raised by the seqlock-style frontier read: the coordinator bumps the
    shared epoch counter *after* fully writing a superstep's frontier
    buffer and *before* dispatching, so a legitimate worker can never
    see a mismatch. Only an abandoned (timed-out, still-running) zombie
    task can — its exception dies with its abandoned future instead of
    letting it read a half-written frontier.
    """


@dataclass(frozen=True)
class ArraySpec:
    """Where one named array lives inside a segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class SegmentLayout:
    """Picklable manifest of one shared-memory segment."""

    segment: str
    total_bytes: int
    arrays: Tuple[ArraySpec, ...]


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def new_segment_name(prefix: str = "repro") -> str:
    """A collision-resistant segment name (``/dev/shm`` is global)."""
    return f"{prefix}-{secrets.token_hex(8)}"


def pack_arrays(arrays: Dict[str, np.ndarray],
                prefix: str = "repro"
                ) -> Tuple["SharedMemory", SegmentLayout]:
    """Create one segment holding every given array, copied in once.

    Returns the owning ``SharedMemory`` handle (close + unlink it when
    the run ends) and the :class:`SegmentLayout` workers need to attach.
    Raises ``OSError`` when the platform cannot provide the segment —
    callers in ``"auto"`` mode catch that and fall back to pickling.
    """
    if not SHARED_MEMORY_AVAILABLE:  # pragma: no cover - platform guard
        raise OSError("multiprocessing.shared_memory is unavailable")
    specs = []
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _aligned(offset)
        specs.append(ArraySpec(name=name, dtype=array.dtype.str,
                               shape=tuple(array.shape), offset=offset))
        offset += array.nbytes
    # A zero-byte segment is invalid; keep a minimal one so the layout
    # machinery works uniformly for degenerate (empty) payloads.
    total = max(offset, _ALIGN)
    segment = SharedMemory(name=new_segment_name(prefix), create=True,
                           size=total)
    layout = SegmentLayout(segment=segment.name, total_bytes=total,
                           arrays=tuple(specs))
    for spec in layout.arrays:
        view = np.ndarray(spec.shape, dtype=spec.dtype,
                          buffer=segment.buf, offset=spec.offset)
        view[...] = np.ascontiguousarray(arrays[spec.name])
    return segment, layout


def attach_arrays(layout: SegmentLayout
                  ) -> Tuple["SharedMemory", Dict[str, np.ndarray]]:
    """Map an existing segment and return zero-copy views per array.

    The returned handle must stay referenced as long as any view is
    used. The attachment is untracked: only the creating coordinator
    unlinks the segment.
    """
    if not SHARED_MEMORY_AVAILABLE:  # pragma: no cover - platform guard
        raise OSError("multiprocessing.shared_memory is unavailable")
    try:
        segment = SharedMemory(name=layout.segment, track=False)
    except TypeError:  # Python < 3.13: no track keyword
        with _registration_suppressed():
            segment = SharedMemory(name=layout.segment)
    views = {
        spec.name: np.ndarray(spec.shape, dtype=spec.dtype,
                              buffer=segment.buf, offset=spec.offset)
        for spec in layout.arrays
    }
    return segment, views


def map_views(segment: "SharedMemory",
              layout: SegmentLayout) -> Dict[str, np.ndarray]:
    """Views over a segment already held open (coordinator side).

    Unlike :func:`attach_arrays` this maps no new handle — the caller
    keeps the one :func:`pack_arrays` returned — so it is safe for the
    process that owns the segment and will later unlink it.
    """
    return {
        spec.name: np.ndarray(spec.shape, dtype=spec.dtype,
                              buffer=segment.buf, offset=spec.offset)
        for spec in layout.arrays
    }


@contextmanager
def _registration_suppressed():
    """Attach without telling the resource tracker (Python < 3.13).

    Older ``SharedMemory`` registers *attachments* too, which is wrong
    for a non-owning worker twice over: the tracker would warn about
    and unlink the segment when the worker exits, and — because forked
    workers share the coordinator's tracker process — a post-hoc
    ``unregister`` would instead erase the *coordinator's* registration
    (and a second worker's unregister then crashes the tracker with a
    ``KeyError``). Suppressing the register call entirely sends the
    shared tracker no message at all.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None
    try:
        yield
    finally:
        resource_tracker.register = original


def destroy_segment(segment: "SharedMemory") -> None:
    """Coordinator-side teardown: close and unlink, tolerant of races.

    Safe to call on a segment that was already unlinked (e.g. cleanup
    running again after a partially failed run).
    """
    try:
        segment.close()
    except (OSError, BufferError):  # pragma: no cover - exported views
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
