"""Zero-copy shared-memory IPC for the parallel block engine.

Process-pool dispatch pays for every array it ships twice: once to
pickle it in the coordinator and once to unpickle it in the worker.
For the block-centric engine those arrays are *immutable* (the CSR
block operators) or *single-writer per superstep* (the score frontier),
so Pregel-style systems put them in shared address space and ship only
control messages. This module provides the minimal machinery for that
on one machine, on top of :mod:`multiprocessing.shared_memory`:

* :class:`ArraySpec` / :class:`SegmentLayout` — a picklable manifest
  describing where each named numpy array lives inside one segment
  (dtype, shape, byte offset). The manifest is the only thing that
  still crosses the process boundary by value.
* :func:`pack_arrays` — coordinator side: lay out named arrays into a
  freshly created segment (16-byte aligned) and return the live
  ``SharedMemory`` handle plus its layout.
* :func:`attach_arrays` — worker side: map an existing segment and
  rebuild zero-copy numpy views from its layout. Attachments are
  unregistered from the ``resource_tracker`` so ownership (and the
  single ``unlink``) stays with the coordinator — a worker dying must
  not tear the segment down under everyone else.

Lifecycle contract: the coordinator creates segments, workers attach
and only ever ``close`` (implicitly, at process exit); the coordinator
``close`` + ``unlink``\\ s every segment in a ``finally`` block, so no
named segment survives either a clean or a crashed run.
"""

from __future__ import annotations

import secrets
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

try:  # pragma: no cover - exercised implicitly on every import
    from multiprocessing import resource_tracker
    from multiprocessing.shared_memory import SharedMemory
    SHARED_MEMORY_AVAILABLE = True
except ImportError:  # pragma: no cover - platform without shm support
    SharedMemory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]
    SHARED_MEMORY_AVAILABLE = False

#: Segment offsets are rounded up to this many bytes so every view is
#: safely aligned for any dtype we store (float64/int64 need 8).
_ALIGN = 16


class StaleFrontierError(RuntimeError):
    """A worker observed an epoch other than the one it was dispatched.

    Raised by the seqlock-style frontier read: the coordinator bumps the
    shared epoch counter *after* fully writing a superstep's frontier
    buffer and *before* dispatching, so a legitimate worker can never
    see a mismatch. Only an abandoned (timed-out, still-running) zombie
    task can — its exception dies with its abandoned future instead of
    letting it read a half-written frontier.
    """


@dataclass(frozen=True)
class ArraySpec:
    """Where one named array lives inside a segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class SegmentLayout:
    """Picklable manifest of one shared-memory segment."""

    segment: str
    total_bytes: int
    arrays: Tuple[ArraySpec, ...]


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def new_segment_name(prefix: str = "repro") -> str:
    """A collision-resistant segment name (``/dev/shm`` is global)."""
    return f"{prefix}-{secrets.token_hex(8)}"


def pack_arrays(arrays: Dict[str, np.ndarray],
                prefix: str = "repro"
                ) -> Tuple["SharedMemory", SegmentLayout]:
    """Create one segment holding every given array, copied in once.

    Returns the owning ``SharedMemory`` handle (close + unlink it when
    the run ends) and the :class:`SegmentLayout` workers need to attach.
    Raises ``OSError`` when the platform cannot provide the segment —
    callers in ``"auto"`` mode catch that and fall back to pickling.
    """
    if not SHARED_MEMORY_AVAILABLE:  # pragma: no cover - platform guard
        raise OSError("multiprocessing.shared_memory is unavailable")
    specs = []
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _aligned(offset)
        specs.append(ArraySpec(name=name, dtype=array.dtype.str,
                               shape=tuple(array.shape), offset=offset))
        offset += array.nbytes
    # A zero-byte segment is invalid; keep a minimal one so the layout
    # machinery works uniformly for degenerate (empty) payloads.
    total = max(offset, _ALIGN)
    segment = SharedMemory(name=new_segment_name(prefix), create=True,
                           size=total)
    layout = SegmentLayout(segment=segment.name, total_bytes=total,
                           arrays=tuple(specs))
    for spec in layout.arrays:
        view = np.ndarray(spec.shape, dtype=spec.dtype,
                          buffer=segment.buf, offset=spec.offset)
        view[...] = np.ascontiguousarray(arrays[spec.name])
    return segment, layout


def attach_arrays(layout: SegmentLayout
                  ) -> Tuple["SharedMemory", Dict[str, np.ndarray]]:
    """Map an existing segment and return zero-copy views per array.

    The returned handle must stay referenced as long as any view is
    used. The attachment is untracked: only the creating coordinator
    unlinks the segment.
    """
    if not SHARED_MEMORY_AVAILABLE:  # pragma: no cover - platform guard
        raise OSError("multiprocessing.shared_memory is unavailable")
    try:
        segment = SharedMemory(name=layout.segment, track=False)
    except TypeError:  # Python < 3.13: no track keyword
        with _registration_suppressed():
            segment = SharedMemory(name=layout.segment)
    views = {
        spec.name: np.ndarray(spec.shape, dtype=spec.dtype,
                              buffer=segment.buf, offset=spec.offset)
        for spec in layout.arrays
    }
    return segment, views


def map_views(segment: "SharedMemory",
              layout: SegmentLayout) -> Dict[str, np.ndarray]:
    """Views over a segment already held open (coordinator side).

    Unlike :func:`attach_arrays` this maps no new handle — the caller
    keeps the one :func:`pack_arrays` returned — so it is safe for the
    process that owns the segment and will later unlink it.
    """
    return {
        spec.name: np.ndarray(spec.shape, dtype=spec.dtype,
                              buffer=segment.buf, offset=spec.offset)
        for spec in layout.arrays
    }


# ----------------------------------------------------------------------
# serving score board: the cross-process publish/read protocol that the
# sharded serving tier (repro.serve.shard / repro.serve.gateway) runs on.

#: Tolerance contract of the ``float32`` score-board mode: a publish is
#: accepted only when the float32 round-trip of every score agrees with
#: the float64 original under ``np.allclose`` with these bounds.
#: float32 rounding introduces at most ``2**-24`` (~6e-8) relative
#: error, so ``rtol=1e-6`` passes every representable score with an
#: order-of-magnitude margin while still rejecting genuine corruption
#: (wrong dtype reinterpretation, truncated writes). ``atol`` only
#: matters for scores near zero, far below any real PageRank mass.
FLOAT32_PARITY_RTOL = 1e-6
FLOAT32_PARITY_ATOL = 1e-12


class ScoreBoardWriter:
    """Publish side of the shared-memory serving score board.

    The board holds the full ranked id/score state behind the same
    seqlock-epoch discipline the parallel engine's frontier uses:

    * ``ids`` — append-only ``int64[capacity]`` article ids (the corpus
      only ever grows under arrival batches);
    * ``scores`` — double-buffered ``[2, capacity]`` in the board's
      ``dtype`` (``float64`` default; opt-in ``float32`` halves the
      serving lanes' bytes under the publish-time parity guardrail,
      and readers transparently receive float64 either way); epoch
      ``e`` is written into buffer ``e % 2``, which is then left
      untouched until epoch ``e + 2``;
    * ``count`` — ``int64[2]`` articles valid per buffer;
    * ``epoch`` — ``int64[1]``, bumped *after* the buffer is fully
      written, so a reader seeing a stable epoch across its copy has
      proven the copy torn-free.

    Single-writer by contract (the gateway's publish path); any number
    of reader processes attach via :class:`ScoreBoardReader` with the
    picklable :attr:`layout`. The creator owns the segment: call
    :meth:`close` (idempotent) when serving ends.
    """

    def __init__(self, capacity: int, prefix: str = "repro-serve",
                 dtype: "np.dtype" = np.float64) -> None:
        if capacity <= 0:
            raise ValueError(
                f"score board capacity must be positive, got {capacity}")
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(
                f"score board dtype must be float64 or float32, "
                f"got {self.dtype}")
        self.capacity = int(capacity)
        self._segment, self.layout = pack_arrays(
            {"epoch": np.full(1, -1, dtype=np.int64),
             "count": np.zeros(2, dtype=np.int64),
             "ids": np.zeros(self.capacity, dtype=np.int64),
             "scores": np.zeros((2, self.capacity), dtype=self.dtype)},
            prefix=prefix)
        views = map_views(self._segment, self.layout)
        self._epoch = views["epoch"]
        self._count = views["count"]
        self._ids = views["ids"]
        self._scores = views["scores"]
        self._ids_written = 0
        self._closed = False

    @property
    def epoch(self) -> int:
        """The last published epoch (-1 before the first publish)."""
        return int(self._epoch[0])

    def publish(self, ids: np.ndarray, scores: np.ndarray,
                epoch: int) -> None:
        """Publish one ``(ids, scores)`` state as ``epoch``.

        ``ids`` must extend the previously published ids (append-only:
        articles are never removed), ``epoch`` must be exactly the last
        published epoch plus one, and the state must fit the board's
        capacity — violations raise ``ValueError`` before any shared
        write happens, so a rejected publish can never tear the board.

        On a ``dtype=float32`` board the scores are narrowed at the
        publish boundary, guarded by the documented parity contract:
        the float32 round-trip must satisfy ``np.allclose`` against the
        float64 input with :data:`FLOAT32_PARITY_RTOL` /
        :data:`FLOAT32_PARITY_ATOL`, else the publish is rejected (also
        before any shared write).
        """
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        scores = np.ascontiguousarray(scores, dtype=np.float64)
        if ids.shape != scores.shape or ids.ndim != 1:
            raise ValueError("ids and scores must be aligned 1-d arrays")
        if ids.size > self.capacity:
            raise ValueError(
                f"score board capacity exceeded: {ids.size} articles "
                f"> capacity {self.capacity}")
        if epoch != int(self._epoch[0]) + 1:
            raise ValueError(
                f"epochs must be published consecutively: board is at "
                f"{int(self._epoch[0])}, got {epoch}")
        if ids.size < self._ids_written or not np.array_equal(
                ids[:self._ids_written], self._ids[:self._ids_written]):
            raise ValueError(
                "ids must extend the previously published ids "
                "(the board's id prefix is append-only)")
        if self.dtype != np.float64:
            with np.errstate(over="ignore"):
                # Overflow to inf is fine here: the parity check below
                # rejects it with a clear error instead of a warning.
                narrowed = scores.astype(self.dtype)
            if not np.allclose(narrowed.astype(np.float64), scores,
                               rtol=FLOAT32_PARITY_RTOL,
                               atol=FLOAT32_PARITY_ATOL):
                raise ValueError(
                    f"float32 parity guardrail violated: narrowed "
                    f"scores drift beyond rtol={FLOAT32_PARITY_RTOL}, "
                    f"atol={FLOAT32_PARITY_ATOL} from their float64 "
                    f"originals")
            scores = narrowed
        # Only the tail of ``ids`` is new; the stable prefix is never
        # rewritten, so concurrent readers of older epochs see no
        # mutation at all.
        self._ids[self._ids_written:ids.size] = ids[self._ids_written:]
        self._ids_written = ids.size
        buffer = epoch % 2
        self._scores[buffer, :ids.size] = scores
        self._count[buffer] = ids.size
        # The epoch bump is the commit point: everything above must be
        # fully written before readers can observe the new epoch.
        self._epoch[0] = epoch

    def close(self) -> None:
        """Tear the segment down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._epoch = self._count = self._ids = self._scores = None
            destroy_segment(self._segment)


class ScoreBoardReader:
    """Reader side of the serving score board (any process).

    Attach with the writer's picklable layout; :meth:`read` returns a
    torn-free ``(epoch, ids, scores)`` copy via the seqlock check.
    """

    #: Consistency-check retries before a read gives up.
    MAX_RETRIES = 64

    def __init__(self, layout: SegmentLayout) -> None:
        self._segment, views = attach_arrays(layout)
        self._epoch = views["epoch"]
        self._count = views["count"]
        self._ids = views["ids"]
        self._scores = views["scores"]

    def epoch(self) -> int:
        """The currently published epoch (cheap shared read)."""
        return int(self._epoch[0])

    def read(self) -> Tuple[int, np.ndarray, np.ndarray]:
        """One consistent published state, newest available.

        Seqlock read: buffer ``epoch % 2`` of epoch ``e`` stays
        untouched until epoch ``e + 2`` commits, so observing an epoch
        advance of less than two across the copy proves the copy is
        torn-free. Raises :class:`StaleFrontierError` after
        ``MAX_RETRIES`` racing publishes (pathological churn) and
        ``ValueError`` before the first publish.
        """
        for _ in range(self.MAX_RETRIES):
            before = int(self._epoch[0])
            if before < 0:
                raise ValueError("score board has no published epoch yet")
            buffer = before % 2
            count = int(self._count[buffer])
            ids = np.array(self._ids[:count])
            # Readers always see float64 — a float32 board widens here,
            # so the board dtype is invisible to every consumer.
            scores = np.array(self._scores[buffer, :count],
                              dtype=np.float64)
            if int(self._epoch[0]) - before < 2:
                return before, ids, scores
        raise StaleFrontierError(
            f"score board read raced {self.MAX_RETRIES} consecutive "
            f"publishes")

    def close(self) -> None:
        """Drop this attachment (the writer still owns the segment)."""
        self._epoch = self._count = self._ids = self._scores = None
        try:
            self._segment.close()
        except (OSError, BufferError):  # pragma: no cover - exported views
            pass


@contextmanager
def _registration_suppressed():
    """Attach without telling the resource tracker (Python < 3.13).

    Older ``SharedMemory`` registers *attachments* too, which is wrong
    for a non-owning worker twice over: the tracker would warn about
    and unlink the segment when the worker exits, and — because forked
    workers share the coordinator's tracker process — a post-hoc
    ``unregister`` would instead erase the *coordinator's* registration
    (and a second worker's unregister then crashes the tracker with a
    ``KeyError``). Suppressing the register call entirely sends the
    shared tracker no message at all.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None
    try:
        yield
    finally:
        resource_tracker.register = original


def destroy_segment(segment: "SharedMemory") -> None:
    """Coordinator-side teardown: close and unlink, tolerant of races.

    Safe to call on a segment that was already unlinked (e.g. cleanup
    running again after a partially failed run).
    """
    try:
        segment.close()
    except (OSError, BufferError):  # pragma: no cover - exported views
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
