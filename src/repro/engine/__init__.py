"""Execution engines: batch, block-centric parallel, and incremental.

* :mod:`repro.engine.batch` — one-shot whole-graph computation plus the
  solver comparison used by the batch-efficiency experiment (E4).
* :mod:`repro.engine.blocks` — block-centric (graph-centric) superstep
  engine and the vertex-centric baseline, with superstep/message
  accounting (E5).
* :mod:`repro.engine.parallel` — multiprocessing executor for the block
  engine (E5 speedup curves).
* :mod:`repro.engine.incremental` — dynamic ranking: affected-area
  discovery and boundary-fixed re-iteration (E6/E7).
"""

from repro.engine.batch import BatchRanker, SolverComparison, compare_solvers
from repro.engine.blocks import (
    BlockEngine,
    BlockRankResult,
    vertex_centric_pagerank,
)
from repro.engine.incremental import (
    AffectedArea,
    IncrementalEngine,
    IncrementalReport,
)
from repro.engine.live import LiveRanker
from repro.engine.state import load_engine, save_engine
from repro.engine.parallel import ParallelBlockEngine
from repro.engine.updates import (
    UpdateBatch,
    apply_update,
    fraction_update,
    yearly_updates,
)

__all__ = [
    "BatchRanker",
    "SolverComparison",
    "compare_solvers",
    "BlockEngine",
    "BlockRankResult",
    "vertex_centric_pagerank",
    "ParallelBlockEngine",
    "AffectedArea",
    "IncrementalEngine",
    "IncrementalReport",
    "LiveRanker",
    "load_engine",
    "save_engine",
    "UpdateBatch",
    "apply_update",
    "fraction_update",
    "yearly_updates",
]
