"""The single opt-in observability handle threaded through the system.

:class:`Observability` bundles the recorders — span tracer, metrics
registry, solver telemetry, optional JSONL event log, optional flight
recorder — behind one object that rides the same keyword path
``SolverTelemetry`` always has. Engines accept ``obs=None`` (default: zero overhead, zero
behaviour change) and guard every record with ``if obs is not None``;
the math never reads anything back, so fixed points are bit-identical
with observability on or off.

Call-site helpers:

* :func:`maybe_span` — a span context manager that degrades to
  ``nullcontext`` when ``obs`` is ``None``, so hot paths need no
  branching beyond the guard they already have;
* :func:`resolve_telemetry` — engines that take both ``telemetry=``
  (the historical keyword) and ``obs=`` use the explicit telemetry if
  given, else the handle's.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import ContextManager, Optional

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.telemetry import SolverTelemetry
from repro.obs.trace import Tracer


class Observability:
    """Tracer + metrics + telemetry (+ optional sinks), one handle."""

    def __init__(self, name: str = "run",
                 telemetry: Optional[SolverTelemetry] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 events: Optional[EventLog] = None,
                 recorder: Optional[FlightRecorder] = None) -> None:
        self.name = name
        self.telemetry = telemetry if telemetry is not None \
            else SolverTelemetry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self.events = events
        self.recorder = recorder
        if recorder is not None:
            recorder.bind(self)

    # ------------------------------------------------------------------

    def span(self, name: str, **attributes):
        """Open a child span (see :meth:`repro.obs.trace.Tracer.span`)."""
        return self.tracer.span(name, **attributes)

    def event(self, kind: str, **fields) -> None:
        """Record one event on the span, event log and flight recorder."""
        self.tracer.event(kind, **fields)
        record: dict = {"kind": str(kind)}
        record.update(fields)
        if self.events is not None:
            record = self.events.emit(kind, **fields)
        if self.recorder is not None:
            self.recorder.record_event(record)

    def report(self, name: Optional[str] = None):
        """Bundle everything recorded so far into a v2 ``RunReport``."""
        from repro.obs.report import RunReport

        report = RunReport(name if name is not None else self.name,
                           timings=self.telemetry.timings,
                           telemetry=self.telemetry)
        report.spans = self.tracer.export()
        report.metrics_registry = self.metrics.snapshot()
        return report

    def close(self) -> None:
        """Close the event log, if one is attached."""
        if self.events is not None:
            self.events.close()

    def __enter__(self) -> "Observability":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def maybe_span(obs: Optional[Observability], name: str,
               **attributes) -> ContextManager:
    """``obs.span(...)`` or an inert context when observability is off."""
    if obs is None:
        return nullcontext()
    return obs.span(name, **attributes)


def resolve_telemetry(obs: Optional[Observability],
                      telemetry: Optional[SolverTelemetry]
                      ) -> Optional[SolverTelemetry]:
    """The telemetry recorder a call site should write into."""
    if telemetry is not None:
        return telemetry
    return obs.telemetry if obs is not None else None
