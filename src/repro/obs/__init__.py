"""Observability: timers, solver telemetry, machine-readable reports.

Everything here is passive and opt-in — solvers and engines accept a
``telemetry=`` keyword (default ``None``) and record into it without
ever changing the math, so fixed points are identical with telemetry
on or off.

* :mod:`repro.obs.timers` — :class:`Timer` / :class:`StageTimings`,
  nestable ``perf_counter`` stopwatches.
* :mod:`repro.obs.telemetry` — :class:`SolverTelemetry`: residual
  trajectories, superstep/message accounting, bytes shipped,
  affected-area batches, worker/block attribution.
* :mod:`repro.obs.report` — :class:`RunReport`: one run serialized to
  JSON with host/python/time provenance.
"""

from repro.obs.report import RunReport, run_metadata
from repro.obs.telemetry import (
    BatchRecord,
    RecoveryRecord,
    SolverTelemetry,
    SuperstepRecord,
)
from repro.obs.timers import StageTimings, Timer

__all__ = [
    "BatchRecord",
    "RecoveryRecord",
    "RunReport",
    "SolverTelemetry",
    "StageTimings",
    "SuperstepRecord",
    "Timer",
    "run_metadata",
]
