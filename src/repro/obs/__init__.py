"""Observability: tracing, metrics, convergence streams, reports.

Everything here is passive and opt-in — solvers and engines accept a
``telemetry=`` keyword (default ``None``) and, since format v2, an
``obs=`` :class:`Observability` handle that bundles all four recorders.
Nothing here ever changes the math: fixed points are bit-identical with
observability on or off.

* :mod:`repro.obs.timers` — :class:`Timer` / :class:`StageTimings`,
  nestable ``perf_counter`` stopwatches.
* :mod:`repro.obs.telemetry` — :class:`SolverTelemetry`: residual
  trajectories, superstep/message accounting, bytes shipped,
  affected-area batches, worker/block attribution, recovery events.
* :mod:`repro.obs.trace` — hierarchical span tracing with
  cross-process propagation (:class:`Tracer`, :class:`Span`,
  :class:`TraceContext`, :func:`render_trace`, :func:`critical_path`).
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms with JSON and Prometheus export.
* :mod:`repro.obs.convergence` — :class:`ConvergenceStream`:
  per-iteration residual / delta / active-node records.
* :mod:`repro.obs.events` — :class:`EventLog`, a line-buffered JSONL
  sink with size-based rotation.
* :mod:`repro.obs.handle` — :class:`Observability`, the single handle
  threaded where ``SolverTelemetry`` already goes.
* :mod:`repro.obs.slo` — declarative :class:`SLOSpec`\\ s evaluated by
  an :class:`SLOMonitor` with multi-window burn-rate alerting.
* :mod:`repro.obs.recorder` — :class:`FlightRecorder` ring buffers
  frozen into :class:`IncidentBundle`\\ s on breach/trip.
* :mod:`repro.obs.expose` — :class:`MetricsServer`, Prometheus text
  exposition over stdlib HTTP (``repro metrics --serve``).
* :mod:`repro.obs.report` — :class:`RunReport`: one run serialized to
  JSON (format v2) with host/python/git/time provenance.

See ``docs/OBSERVABILITY.md`` for span names, metric names, and the
serialized schemas.
"""

from repro.obs.convergence import ConvergencePoint, ConvergenceStream
from repro.obs.events import EventLog
from repro.obs.expose import MetricsServer
from repro.obs.handle import Observability, maybe_span, resolve_telemetry
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import FlightRecorder, IncidentBundle
from repro.obs.report import REPORT_FORMAT_VERSION, RunReport, run_metadata
from repro.obs.slo import (
    SLOMonitor,
    SLOSpec,
    SLOStatus,
    default_slos,
    render_slo_table,
)
from repro.obs.telemetry import (
    BatchRecord,
    RecoveryRecord,
    SolverTelemetry,
    SuperstepRecord,
)
from repro.obs.timers import StageTimings, Timer
from repro.obs.trace import (
    Span,
    SpanEvent,
    TraceContext,
    Tracer,
    critical_path,
    render_trace,
)

__all__ = [
    "BatchRecord",
    "ConvergencePoint",
    "ConvergenceStream",
    "Counter",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "IncidentBundle",
    "MetricsRegistry",
    "MetricsServer",
    "Observability",
    "REPORT_FORMAT_VERSION",
    "RecoveryRecord",
    "RunReport",
    "SLOMonitor",
    "SLOSpec",
    "SLOStatus",
    "SolverTelemetry",
    "Span",
    "SpanEvent",
    "StageTimings",
    "SuperstepRecord",
    "TraceContext",
    "Timer",
    "Tracer",
    "critical_path",
    "default_slos",
    "maybe_span",
    "render_slo_table",
    "render_trace",
    "resolve_telemetry",
    "run_metadata",
]
