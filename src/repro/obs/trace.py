"""Hierarchical span tracing (zero-dependency, cross-process capable).

A *trace* is one logical operation — "rank this dataset", "run this
parallel solve" — and a *span* is one timed step inside it. Spans nest:
every span records its parent, so a finished trace is a tree whose
shape explains *where* the time went, not just how much was spent.

Three pieces:

* :class:`Span` — trace id, span id, parent id, wall-clock start,
  monotonic duration, free-form attributes, timestamped events, and an
  ``ok``/``error`` status.
* :class:`Tracer` — a process-local context stack. ``tracer.span(...)``
  opens a child of whatever span is currently open; finished spans
  accumulate on the tracer for export.
* :class:`TraceContext` — the picklable ``(trace_id, span_id)`` pair a
  coordinator ships to worker processes. A worker builds its own
  ``Tracer`` around the context, opens spans under the remote parent,
  and returns the finished spans with its results; the coordinator
  :meth:`Tracer.adopt`\\ s them, so one trace covers dispatch, the
  per-worker solve, recovery, and the merge.

Durations are measured with ``time.perf_counter`` (monotonic); span
*starts* are wall-clock ``time.time`` so spans from different processes
on the same machine order sensibly in one tree.

:func:`render_trace` pretty-prints the tree with per-span durations and
marks the **critical path** — the chain of spans that actually bounded
the run's wall-clock — with ``*``.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Union


def _new_id() -> str:
    """A 16-hex-char random span/trace id."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The picklable propagation token: which span to parent under."""

    trace_id: str
    span_id: str


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span."""

    name: str
    #: seconds since the owning span's start.
    offset: float
    attributes: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "offset": self.offset,
                "attributes": dict(self.attributes)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SpanEvent":
        return cls(name=str(payload["name"]),
                   offset=float(payload.get("offset", 0.0)),
                   attributes=dict(payload.get("attributes", {})))


@dataclass
class Span:
    """One timed step of a trace."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    #: wall-clock start (``time.time()``), comparable across processes.
    start: float
    duration: float = 0.0
    attributes: Dict[str, object] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    status: str = "ok"

    @property
    def end(self) -> float:
        return self.start + self.duration

    def add_event(self, name: str, **attributes) -> SpanEvent:
        event = SpanEvent(name=name, offset=time.time() - self.start,
                          attributes=attributes)
        self.events.append(event)
        return event

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.events:
            payload["events"] = [event.as_dict() for event in self.events]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Span":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            name=str(payload["name"]),
            start=float(payload["start"]),
            duration=float(payload.get("duration", 0.0)),
            attributes=dict(payload.get("attributes", {})),
            events=[SpanEvent.from_dict(e)
                    for e in payload.get("events", [])],
            status=str(payload.get("status", "ok")))


class Tracer:
    """Process-local span stack; finished spans accumulate for export.

    ``parent`` seeds the tracer with a remote :class:`TraceContext`:
    root spans opened here become children of the remote span, which is
    how worker processes join the coordinator's trace.
    """

    def __init__(self, trace_id: Optional[str] = None,
                 parent: Optional[TraceContext] = None) -> None:
        if parent is not None and trace_id is not None \
                and parent.trace_id != trace_id:
            raise ValueError("parent context belongs to a different trace")
        self.trace_id = parent.trace_id if parent is not None \
            else (trace_id if trace_id is not None else _new_id())
        self._parent = parent
        self._stack: List[Span] = []
        self.finished: List[Span] = []

    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[Span]:
        """Open a child span of the current context for the duration of
        the ``with`` block. Exceptions mark the span ``error`` (with an
        ``exception`` event) and propagate."""
        if self._stack:
            parent_id: Optional[str] = self._stack[-1].span_id
        elif self._parent is not None:
            parent_id = self._parent.span_id
        else:
            parent_id = None
        span = Span(trace_id=self.trace_id, span_id=_new_id(),
                    parent_id=parent_id, name=name, start=time.time(),
                    attributes=dict(attributes))
        started = time.perf_counter()
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.add_event("exception", type=type(exc).__name__,
                           message=str(exc))
            raise
        finally:
            span.duration = time.perf_counter() - started
            self._stack.pop()
            self.finished.append(span)

    def event(self, name: str, **attributes) -> Optional[SpanEvent]:
        """Annotate the currently open span (no-op without one)."""
        if not self._stack:
            return None
        return self._stack[-1].add_event(name, **attributes)

    def current_context(self) -> Optional[TraceContext]:
        """The propagation token for the innermost open span."""
        if self._stack:
            return TraceContext(self.trace_id, self._stack[-1].span_id)
        return self._parent

    # ------------------------------------------------------------------

    def adopt(self, spans: Sequence[Union[Span, Dict[str, object]]]
              ) -> None:
        """Fold spans finished elsewhere (e.g. a worker process) in."""
        for span in spans:
            if not isinstance(span, Span):
                span = Span.from_dict(span)
            self.finished.append(span)

    def export(self) -> List[Dict[str, object]]:
        """All finished spans as JSON-serializable dicts."""
        return [span.as_dict() for span in self.finished]

    def __len__(self) -> int:
        return len(self.finished)


# ----------------------------------------------------------------------
# rendering

def _tree(spans: Sequence[Span]):
    """``(roots, children_by_id)`` with children in start order.

    A span whose parent never finished — a worker that crashed
    mid-span, a trace exported while still open — is *orphaned*: it
    names a parent id that is not in the span set. Orphans are
    promoted to roots so the tree always renders; :func:`render_trace`
    flags them instead of crashing on the missing edge.
    """
    by_id = {span.span_id: span for span in spans}
    children: Dict[str, List[Span]] = {}
    roots: List[Span] = []
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.start)
    roots.sort(key=lambda s: s.start)
    return roots, children


def critical_path(spans: Sequence[Union[Span, Dict[str, object]]]
                  ) -> Set[str]:
    """Span ids on the critical path of each root.

    Within each span, walk *backwards* from its end: the child that
    finished last bounded the wall-clock; before that child started,
    the latest-finishing remaining child bounded it; and so on. Spans
    off this chain overlapped with it and could have been slower for
    free. Sequential children all land on the path; of parallel
    children only the one that gated the merge does.
    """
    spans = [span if isinstance(span, Span) else Span.from_dict(span)
             for span in spans]
    roots, children = _tree(spans)
    path: Set[str] = set()

    def _walk(span: Span) -> None:
        path.add(span.span_id)
        remaining = list(children.get(span.span_id, []))
        horizon = span.end
        while remaining:
            candidates = [c for c in remaining if c.start < horizon]
            if not candidates:
                break
            gating = max(candidates, key=lambda c: c.end)
            remaining.remove(gating)
            _walk(gating)
            horizon = gating.start

    for root in roots:
        _walk(root)
    return path


def render_trace(spans: Sequence[Union[Span, Dict[str, object]]],
                 title: str = "trace",
                 show_events: bool = True) -> str:
    """A fixed-width span tree with durations, attributes and ``*``
    marking the critical path."""
    spans = [span if isinstance(span, Span) else Span.from_dict(span)
             for span in spans]
    if not spans:
        return f"# {title}\n(no spans recorded)"
    roots, children = _tree(spans)
    on_path = critical_path(spans)
    known = {span.span_id for span in spans}
    lines = [f"# {title} (trace {spans[0].trace_id}, "
             f"{len(spans)} spans, * = critical path)"]

    def _attrs(span: Span) -> str:
        if not span.attributes:
            return ""
        inner = " ".join(f"{k}={v}" for k, v in span.attributes.items())
        return f"  {{{inner}}}"

    def _walk(span: Span, depth: int) -> None:
        mark = "*" if span.span_id in on_path else " "
        flag = "" if span.status == "ok" else f"  [{span.status}]"
        if span.parent_id is not None and span.parent_id not in known:
            flag += "  (orphaned)"
        label = "  " * depth + span.name
        lines.append(f"{mark} {label:<36} {span.duration * 1e3:10.2f} ms"
                     f"{flag}{_attrs(span)}")
        if show_events:
            for event in span.events:
                detail = " ".join(f"{k}={v}" for k, v
                                  in event.attributes.items())
                lines.append(
                    "  " + "  " * (depth + 1)
                    + f"· {event.name} @{event.offset * 1e3:.1f}ms"
                    + (f" {detail}" if detail else ""))
        for child in children.get(span.span_id, []):
            _walk(child, depth + 1)

    for root in roots:
        _walk(root, 0)
    return "\n".join(lines)
