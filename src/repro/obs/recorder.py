"""Flight recorder: bounded recent history, dumped on incident.

Post-hoc debugging of a serving incident usually fails for one reason:
by the time someone looks, the interesting state is gone — the spans
rotated out, the health rung recovered, the metrics counters only say
*how many*, not *when*. A flight recorder fixes that the way aircraft
do: continuously record the last N of everything into cheap ring
buffers, and when something trips — an SLO breach, a circuit-breaker
open, an injected crash — freeze the rings into one self-contained
:class:`IncidentBundle` that renders offline.

The recorder is passive plumbing:

* :meth:`FlightRecorder.record_event` — every
  :meth:`repro.obs.Observability.event` lands here too (the handle
  forwards when a recorder is attached);
* :meth:`FlightRecorder.record_health` — periodic
  ``ShardedGateway.health()`` / ``RankingService.health()`` dicts,
  forming the health *timeline* a single snapshot can't show;
* :meth:`FlightRecorder.capture` — freeze everything (recent events,
  health timeline, current metrics, the span tail from the bound
  tracer, optional SLO statuses and quarantine reports) into a bundle,
  optionally auto-saved as ``incident-NNN.json``.

``capture_on`` lists event kinds that trigger a capture automatically
(default: breaker trips and quarantines), so the bundle exists even
when nobody was polling an :class:`~repro.obs.slo.SLOMonitor`.

Bundles are plain JSON: ``repro trace --bundle x.json`` renders the
span tree, ``repro watch --bundle x.json`` the health/SLO tables —
triage without access to the box that had the incident.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Union

PathLike = Union[str, Path]

#: Event kinds that trigger an automatic capture when seen.
DEFAULT_CAPTURE_ON = ("serve.breaker_trip", "serve.quarantine")


@dataclass
class IncidentBundle:
    """One frozen, self-contained incident record (plain JSON on disk)."""

    trigger: str
    captured_at: float = 0.0
    #: recent event records, oldest first.
    events: List[Dict[str, object]] = field(default_factory=list)
    #: ``(ts, health-dict)`` pairs, oldest first.
    health_timeline: List[Dict[str, object]] = field(default_factory=list)
    #: the metrics registry snapshot at capture time.
    metrics: Dict[str, object] = field(default_factory=dict)
    #: span-tree tail (``Span.as_dict`` payloads).
    spans: List[Dict[str, object]] = field(default_factory=list)
    #: SLO statuses at capture time (``SLOStatus.as_dict`` payloads).
    slo: List[Dict[str, object]] = field(default_factory=list)
    #: quarantine reports (``QuarantinedBatch``-shaped dicts).
    quarantined: List[Dict[str, object]] = field(default_factory=list)
    #: environment fingerprint (``run_metadata()``).
    meta: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro.incident/1",
            "trigger": self.trigger,
            "captured_at": self.captured_at,
            "events": self.events,
            "health_timeline": self.health_timeline,
            "metrics": self.metrics,
            "spans": self.spans,
            "slo": self.slo,
            "quarantined": self.quarantined,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "IncidentBundle":
        return cls(
            trigger=str(payload.get("trigger", "unknown")),
            captured_at=float(payload.get("captured_at", 0.0)),
            events=list(payload.get("events", [])),
            health_timeline=list(payload.get("health_timeline", [])),
            metrics=dict(payload.get("metrics", {})),
            spans=list(payload.get("spans", [])),
            slo=list(payload.get("slo", [])),
            quarantined=list(payload.get("quarantined", [])),
            meta=dict(payload.get("meta", {})))

    def save(self, path: PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2,
                                   default=str) + "\n",
                        encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: PathLike) -> "IncidentBundle":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # ------------------------------------------------------------------

    def render(self) -> str:
        """Triage summary: trigger, breaching SLOs, health, last events."""
        lines = [f"# incident: {self.trigger}",
                 f"captured_at: {self.captured_at:.3f}  "
                 f"spans: {len(self.spans)}  events: {len(self.events)}  "
                 f"quarantined: {len(self.quarantined)}"]
        breaching = [s for s in self.slo if s.get("breaching")]
        if self.slo:
            lines.append(f"slo: {len(breaching)}/{len(self.slo)} breaching")
            for status in breaching:
                burns = ", ".join(
                    f"{window}s={rate}" for window, rate
                    in sorted(status.get("burn_rates", {}).items(),
                              key=lambda kv: float(kv[0])))
                lines.append(f"  BREACH {status.get('name')} "
                             f"({status.get('kind')}) burn: {burns}")
        if self.health_timeline:
            latest = self.health_timeline[-1]
            lines.append(f"health ({len(self.health_timeline)} samples, "
                         f"latest):")
            lines.append("  " + json.dumps(latest.get("health", latest),
                                           default=str))
        if self.quarantined:
            lines.append("quarantined:")
            for entry in self.quarantined[-5:]:
                lines.append("  " + json.dumps(entry, default=str))
        if self.events:
            lines.append(f"last events ({min(10, len(self.events))} of "
                         f"{len(self.events)}):")
            for record in self.events[-10:]:
                lines.append("  " + json.dumps(record, default=str))
        return "\n".join(lines)


class FlightRecorder:
    """Bounded rings of recent events/health/metrics; frozen on demand.

    Attach via ``Observability(recorder=...)`` — the handle binds
    itself, so :meth:`capture` can pull the span tail and metrics
    without extra wiring. All buffers are bounded deques: recording is
    O(1) and the recorder never grows with run length.

    Args:
        max_events / max_health / max_spans: ring sizes.
        bundle_dir: when set, every capture auto-saves as
            ``incident-NNN.json`` (deterministic names, so CI can
            collect them as artifacts).
        capture_on: event kinds that trigger an automatic capture.
    """

    def __init__(self, max_events: int = 256, max_health: int = 128,
                 max_spans: int = 512,
                 bundle_dir: Optional[PathLike] = None,
                 capture_on: Sequence[str] = DEFAULT_CAPTURE_ON) -> None:
        self._events: Deque[Dict[str, object]] = deque(maxlen=max_events)
        self._health: Deque[Dict[str, object]] = deque(maxlen=max_health)
        self.max_spans = int(max_spans)
        self.bundle_dir = Path(bundle_dir) if bundle_dir is not None \
            else None
        self.capture_on = frozenset(capture_on)
        self.captures: List[IncidentBundle] = []
        self.saved_paths: List[Path] = []
        self._obs = None
        self._capturing = False

    # ------------------------------------------------------------------
    # recording (cheap, called from hot-ish paths)

    def bind(self, obs) -> None:
        """Called by :class:`~repro.obs.handle.Observability` on attach."""
        self._obs = obs

    def record_event(self, record: Dict[str, object]) -> None:
        """Ring-buffer one event; auto-capture if its kind is armed."""
        self._events.append(dict(record))
        kind = str(record.get("kind", ""))
        if kind in self.capture_on and not self._capturing:
            self.capture(trigger=f"event:{kind}")

    def record_health(self, health: Dict[str, object],
                      ts: Optional[float] = None) -> None:
        """Append one health sample to the timeline."""
        self._health.append({
            "ts": time.time() if ts is None else float(ts),
            "health": dict(health)})

    # ------------------------------------------------------------------
    # capture

    def capture(self, trigger: str,
                slo_statuses: Optional[Sequence[Dict[str, object]]] = None,
                quarantined: Optional[Sequence[Dict[str, object]]] = None,
                ) -> IncidentBundle:
        """Freeze the rings (plus bound tracer/metrics) into a bundle."""
        from repro.obs.report import run_metadata

        # An armed event emitted *during* capture (e.g. while pulling
        # health) must not recurse into a second capture.
        self._capturing = True
        try:
            bundle = IncidentBundle(trigger=trigger,
                                    captured_at=time.time(),
                                    events=list(self._events),
                                    health_timeline=list(self._health),
                                    meta=run_metadata())
            if self._obs is not None:
                bundle.metrics = self._obs.metrics.snapshot()
                spans = self._obs.tracer.export()
                bundle.spans = spans[-self.max_spans:]
            if slo_statuses is not None:
                bundle.slo = [dict(s) for s in slo_statuses]
            if quarantined is not None:
                bundle.quarantined = [dict(q) for q in quarantined]
            self.captures.append(bundle)
            if self.bundle_dir is not None:
                path = self.bundle_dir \
                    / f"incident-{len(self.captures):03d}.json"
                self.saved_paths.append(bundle.save(path))
            return bundle
        finally:
            self._capturing = False

    def __len__(self) -> int:
        return len(self.captures)
