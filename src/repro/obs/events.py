"""Line-buffered JSONL event sink with size-based rotation.

:class:`EventLog` appends one JSON object per line — timestamp, kind,
free-form fields — flushing per line so a crash loses at most the line
being written. When the active file exceeds ``max_bytes`` it is rotated
shift-style (``events.jsonl`` → ``events.jsonl.1`` → … up to
``backups``; the oldest falls off), the scheme log collectors already
understand.

The log is deliberately dumb: no levels, no formatting, no global
state. Engines emit through :meth:`repro.obs.Observability.event`, so
an event lands both here (durable) and on the currently open trace
span (contextual).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

PathLike = Union[str, Path]


class EventLog:
    """Append-only JSONL sink with shift rotation."""

    def __init__(self, path: PathLike,
                 max_bytes: int = 10 * 1024 * 1024,
                 backups: int = 3) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if backups < 0:
            raise ValueError("backups must be >= 0")
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8", buffering=1)
        self.emitted = 0
        # Serializes write + rotate: a rotation swaps the handle out
        # from under concurrent emitters, and two writers interleaving
        # inside one line would corrupt the JSONL stream.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def emit(self, kind: str, **fields) -> Dict[str, object]:
        """Write one event line; returns the record written.

        Thread-safe: concurrent emitters serialize on an internal
        lock, so rotation never strands a writer on a closed handle
        and lines never interleave.
        """
        record: Dict[str, object] = {"ts": time.time(), "kind": str(kind)}
        record.update(fields)
        line = json.dumps(record, sort_keys=False, default=str)
        with self._lock:
            if self._handle is None:
                raise ValueError("event log is closed")
            if self._handle.tell() + len(line) + 1 > self.max_bytes:
                self._rotate()
            self._handle.write(line + "\n")
            self.emitted += 1
        return record

    def _rotate(self) -> None:
        # Caller holds self._lock.
        self._handle.close()
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
        else:
            oldest = self.path.with_name(
                f"{self.path.name}.{self.backups}")
            oldest.unlink(missing_ok=True)
            for index in range(self.backups - 1, 0, -1):
                source = self.path.with_name(f"{self.path.name}.{index}")
                if source.exists():
                    os.replace(source,
                               self.path.with_name(
                                   f"{self.path.name}.{index + 1}"))
            if self.path.exists():
                os.replace(self.path,
                           self.path.with_name(f"{self.path.name}.1"))
        self._handle = open(self.path, "a", encoding="utf-8",
                            buffering=1)

    # ------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def read(path: PathLike) -> List[Dict[str, object]]:
        """Parse one JSONL event file back into records."""
        records = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records
