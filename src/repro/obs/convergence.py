"""Convergence streams: how the fixed point was actually reached.

A :class:`ConvergenceStream` is an append-only series of
:class:`ConvergencePoint` records — one per solver iteration, engine
superstep, or incremental batch — capturing the residual, the largest
per-node change (``delta``), and how many nodes/blocks were still
moving (``active``). Solvers feed a stream through their
:class:`repro.obs.SolverTelemetry` (``telemetry.open_stream``), and the
whole set serializes into :class:`repro.obs.report.RunReport` so a
saved artifact answers "how did the residual decay?" without rerunning.

``kind`` names the record granularity by convention:

* ``"iteration"`` — one solver iteration/sweep (TWPR power,
  Gauss–Seidel, level sweeps, affected-area re-solves);
* ``"superstep"`` — one block/vertex-centric superstep;
* ``"batch"`` — one incremental update batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ConvergencePoint:
    """One observation of an iterative process."""

    index: int
    residual: float
    #: largest single-node absolute change this step (0 if untracked).
    delta: float = 0.0
    #: nodes (or blocks) still moving beyond tolerance this step.
    active: int = 0
    seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"index": self.index, "residual": self.residual,
                "delta": self.delta, "active": self.active,
                "seconds": self.seconds}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ConvergencePoint":
        return cls(index=int(payload["index"]),
                   residual=float(payload["residual"]),
                   delta=float(payload.get("delta", 0.0)),
                   active=int(payload.get("active", 0)),
                   seconds=float(payload.get("seconds", 0.0)))


@dataclass
class ConvergenceStream:
    """Append-only per-step convergence series for one solve."""

    name: str
    kind: str = "iteration"
    points: List[ConvergencePoint] = field(default_factory=list)

    def record(self, residual: float, delta: float = 0.0,
               active: int = 0, seconds: float = 0.0
               ) -> ConvergencePoint:
        point = ConvergencePoint(
            index=len(self.points), residual=float(residual),
            delta=float(delta), active=int(active),
            seconds=float(seconds))
        self.points.append(point)
        return point

    @property
    def residuals(self) -> List[float]:
        return [point.residual for point in self.points]

    @property
    def final_residual(self) -> float:
        return self.points[-1].residual if self.points else float("inf")

    def __len__(self) -> int:
        return len(self.points)

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "kind": self.kind,
                "points": [point.as_dict() for point in self.points]}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ConvergenceStream":
        return cls(name=str(payload["name"]),
                   kind=str(payload.get("kind", "iteration")),
                   points=[ConvergencePoint.from_dict(p)
                           for p in payload.get("points", [])])
