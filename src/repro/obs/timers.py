"""Nestable wall-clock timers (``time.perf_counter``-based, zero deps).

Two layers:

* :class:`Timer` — a single context-managed stopwatch.
* :class:`StageTimings` — a named collection of stages; stages opened
  inside an open stage get a ``outer/inner`` compound key, so one object
  can hold an entire run's breakdown without the call sites knowing
  about each other.

Both are cheap enough to leave in hot paths behind an
``if telemetry is not None`` guard; neither allocates per iteration.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class Timer:
    """A context-managed stopwatch.

    Usage::

        with Timer("solve") as t:
            ...
        print(t.seconds)

    ``seconds`` is the accumulated duration after exit; :attr:`elapsed`
    also works while the timer is still running. A stopped timer can be
    re-``start()``\\ ed: further run time *accumulates* onto ``seconds``
    (a restart never silently discards the prior duration), so one
    timer can meter a stop-and-go activity. :meth:`reset` zeroes it.
    """

    def __init__(self, name: str = "timer") -> None:
        self.name = name
        self.seconds: float = 0.0
        self._start: Optional[float] = None

    def start(self) -> "Timer":
        """Start (or resume) the timer; no-op while already running."""
        if self._start is None:
            self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop and return the accumulated duration (idempotent after
        the first call)."""
        if self._start is not None:
            self.seconds += time.perf_counter() - self._start
            self._start = None
        return self.seconds

    def reset(self) -> "Timer":
        """Zero the accumulated duration and stop the clock."""
        self.seconds = 0.0
        self._start = None
        return self

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Accumulated duration, including the in-flight segment."""
        if self._start is not None:
            return self.seconds + (time.perf_counter() - self._start)
        return self.seconds

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else f"{self.seconds:.6f}s"
        return f"Timer({self.name!r}, {state})"


class StageTimings:
    """Accumulates named stage durations, with nesting.

    ``stage()`` is a re-entrant context manager: opening a stage while
    another is open records the inner one under ``"outer/inner"``.
    Repeated stages accumulate (their durations add up) and their
    invocation count is tracked.

    >>> timings = StageTimings()
    >>> with timings.stage("solve"):
    ...     with timings.stage("sweep"):
    ...         pass
    >>> sorted(timings.as_dict())
    ['solve', 'solve/sweep']
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._stack: List[str] = []

    @contextmanager
    def stage(self, name: str) -> Iterator[Timer]:
        """Time one (possibly nested) stage."""
        if "/" in name:
            raise ValueError("stage names must not contain '/' "
                             "(reserved for nesting)")
        key = "/".join(self._stack + [name])
        self._stack.append(name)
        timer = Timer(key).start()
        try:
            yield timer
        finally:
            timer.stop()
            self._stack.pop()
            self.add(key, timer.seconds)

    def add(self, key: str, seconds: float) -> None:
        """Record ``seconds`` against ``key`` directly (no context)."""
        self._seconds[key] = self._seconds.get(key, 0.0) + float(seconds)
        self._counts[key] = self._counts.get(key, 0) + 1

    def as_dict(self) -> Dict[str, float]:
        """``{stage_key: accumulated_seconds}`` in first-seen order."""
        return dict(self._seconds)

    def counts(self) -> Dict[str, int]:
        """``{stage_key: times_entered}``."""
        return dict(self._counts)

    def total(self) -> float:
        """Sum of *top-level* stages (nested time is already inside)."""
        return sum(seconds for key, seconds in self._seconds.items()
                   if "/" not in key)

    def merge(self, other: "StageTimings", prefix: str = "") -> None:
        """Fold another collection in (optionally under ``prefix/``)."""
        for key, seconds in other._seconds.items():
            merged = f"{prefix}/{key}" if prefix else key
            self._seconds[merged] = self._seconds.get(merged, 0.0) + seconds
            self._counts[merged] = (self._counts.get(merged, 0)
                                    + other._counts[key])

    def render(self, title: str = "stage timings") -> str:
        """A fixed-width breakdown table (for CLI / log output)."""
        lines = [f"# {title}"]
        total = self.total()
        for key, seconds in self._seconds.items():
            depth = key.count("/")
            label = "  " * depth + key.rsplit("/", 1)[-1]
            share = f"{100.0 * seconds / total:5.1f}%" if total > 0 \
                and "/" not in key else "      "
            lines.append(f"{label:<28} {seconds * 1e3:10.2f} ms  {share}")
        lines.append(f"{'total':<28} {total * 1e3:10.2f} ms")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._seconds)
