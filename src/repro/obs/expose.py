"""Prometheus text exposition over stdlib HTTP.

:class:`MetricsServer` wraps a :class:`~repro.obs.metrics
.MetricsRegistry` in a tiny ``http.server`` endpoint — ``GET /metrics``
returns :meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus`
exactly as a real scraper expects it, ``GET /healthz`` returns ``ok``.
No dependencies, no background machinery beyond one daemon thread, so
``repro metrics --serve`` can stand in for a real exporter in demos,
load tests and CI smoke runs.

The registry is read at scrape time (instruments are process-local and
append-only), so whatever the run records between scrapes is visible at
the next one. Port ``0`` binds an ephemeral port — the actual address
is on :attr:`MetricsServer.port` — which is what the tests use.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.metrics import MetricsRegistry


class _Handler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # injected via the handler subclass

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path.rstrip("/") in ("", "/metrics"):
            body = self.registry.to_prometheus().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path.rstrip("/") == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_response(404)
            self.end_headers()

    def log_message(self, format: str, *args) -> None:
        # Scrape traffic is periodic noise; stay silent.
        pass


class MetricsServer:
    """Serve a registry's Prometheus exposition on ``host:port``."""

    def __init__(self, registry: MetricsRegistry, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        handler = type("_BoundHandler", (_Handler,),
                       {"registry": registry})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with 0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Serve in a daemon thread; returns self for chaining."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-metrics",
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (Ctrl-C to stop)."""
        try:
            self._server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
