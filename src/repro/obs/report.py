"""Machine-readable run reports (the JSON artifact of one measured run).

:class:`RunReport` bundles what a benchmark or profiled run produced —
stage timings, solver telemetry, convergence streams, trace spans, a
metrics-registry snapshot, free-form metrics — together with enough
provenance (host, python, git SHA, timestamp) that two artifacts can be
compared honestly. ``save()`` writes canonical JSON; ``load()`` reads
it back, so perf trajectories (``BENCH_*.json``) can be diffed across
commits (see ``benchmarks/compare.py``).

Format history:

* **v1** — name, meta (host/python/time), timings, telemetry, metrics.
* **v2** — adds ``spans`` (finished trace spans, see
  :mod:`repro.obs.trace`), ``metrics_registry`` (a
  :meth:`repro.obs.metrics.MetricsRegistry.snapshot`), a ``git_sha``
  provenance field, and telemetry ``convergence`` streams. v1 files
  load unchanged under the v2 reader — every v2 section is optional.
"""

from __future__ import annotations

import datetime
import functools
import json
import platform
import subprocess
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import StorageError
from repro.obs.telemetry import SolverTelemetry
from repro.obs.timers import StageTimings

PathLike = Union[str, Path]

REPORT_FORMAT_VERSION = 2


@functools.lru_cache(maxsize=1)
def _git_sha() -> str:
    """HEAD commit of the working tree, or ``"unknown"`` outside git."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True,
            text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else "unknown"


def run_metadata() -> Dict[str, str]:
    """Provenance stamped into every report."""
    return {
        "host": platform.platform(),
        "python": platform.python_version(),
        "time": datetime.datetime.now().isoformat(timespec="seconds"),
        "git_sha": _git_sha(),
    }


class RunReport:
    """One run's measurements, serializable to JSON."""

    def __init__(self, name: str,
                 timings: Optional[StageTimings] = None,
                 telemetry: Optional[SolverTelemetry] = None) -> None:
        self.name = name
        self.timings = timings if timings is not None else StageTimings()
        self.telemetry = telemetry
        self.metrics: Dict[str, object] = {}
        #: finished trace spans (list of span dicts), v2 section.
        self.spans: List[Dict[str, object]] = []
        #: a :meth:`MetricsRegistry.snapshot` dict, v2 section.
        self.metrics_registry: Dict[str, object] = {}
        self.meta = run_metadata()

    def record_metric(self, name: str, value) -> None:
        """Attach one named scalar/structure to the report."""
        self.metrics[name] = value

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "format_version": REPORT_FORMAT_VERSION,
            "name": self.name,
            "meta": dict(self.meta),
        }
        if len(self.timings):
            payload["timings"] = self.timings.as_dict()
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry.as_dict()
        if self.metrics:
            payload["metrics"] = dict(self.metrics)
        if self.spans:
            payload["spans"] = list(self.spans)
        if self.metrics_registry:
            payload["metrics_registry"] = dict(self.metrics_registry)
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def save(self, path: PathLike) -> Path:
        """Write the report as JSON and return the path."""
        target = Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @staticmethod
    def load(path: PathLike) -> Dict[str, object]:
        """Read a saved report back as a plain dict.

        Accepts every format version up to the current one (v1 files
        simply lack the v2 sections — readers treat them as empty);
        rejects files from a *newer* format than this reader knows.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(
                f"cannot read run report {path}: {exc}") from exc
        if not isinstance(payload, dict):
            raise StorageError(
                f"run report {path} is not a JSON object")
        version = int(payload.get("format_version", 1))
        if version > REPORT_FORMAT_VERSION:
            raise StorageError(
                f"run report {path} has format_version {version}; this "
                f"reader understands <= {REPORT_FORMAT_VERSION}")
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RunReport(name={self.name!r}, "
                f"stages={len(self.timings)}, "
                f"spans={len(self.spans)}, "
                f"metrics={sorted(self.metrics)})")
