"""Machine-readable run reports (the JSON artifact of one measured run).

:class:`RunReport` bundles what a benchmark or profiled run produced —
stage timings, solver telemetry, free-form metrics — together with
enough provenance (host, python, timestamp) that two artifacts can be
compared honestly. ``save()`` writes canonical JSON; ``load()`` reads
it back, so perf trajectories (``BENCH_*.json``) can be diffed across
commits.
"""

from __future__ import annotations

import datetime
import json
import platform
from pathlib import Path
from typing import Dict, Optional, Union

from repro.obs.telemetry import SolverTelemetry
from repro.obs.timers import StageTimings

PathLike = Union[str, Path]

REPORT_FORMAT_VERSION = 1


def run_metadata() -> Dict[str, str]:
    """Provenance stamped into every report."""
    return {
        "host": platform.platform(),
        "python": platform.python_version(),
        "time": datetime.datetime.now().isoformat(timespec="seconds"),
    }


class RunReport:
    """One run's measurements, serializable to JSON."""

    def __init__(self, name: str,
                 timings: Optional[StageTimings] = None,
                 telemetry: Optional[SolverTelemetry] = None) -> None:
        self.name = name
        self.timings = timings if timings is not None else StageTimings()
        self.telemetry = telemetry
        self.metrics: Dict[str, object] = {}
        self.meta = run_metadata()

    def record_metric(self, name: str, value) -> None:
        """Attach one named scalar/structure to the report."""
        self.metrics[name] = value

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "format_version": REPORT_FORMAT_VERSION,
            "name": self.name,
            "meta": dict(self.meta),
        }
        if len(self.timings):
            payload["timings"] = self.timings.as_dict()
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry.as_dict()
        if self.metrics:
            payload["metrics"] = dict(self.metrics)
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def save(self, path: PathLike) -> Path:
        """Write the report as JSON and return the path."""
        target = Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @staticmethod
    def load(path: PathLike) -> Dict[str, object]:
        """Read a saved report back as a plain dict."""
        return json.loads(Path(path).read_text(encoding="utf-8"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RunReport(name={self.name!r}, "
                f"stages={len(self.timings)}, "
                f"metrics={sorted(self.metrics)})")
