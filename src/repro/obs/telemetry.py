"""Solver/engine telemetry: what happened on the way to the fixed point.

:class:`SolverTelemetry` is a passive recorder handed into a solver or
engine via its ``telemetry=`` keyword (always optional, default off).
Call sites guard every record with ``if telemetry is not None`` so the
hot loops pay a single pointer comparison when telemetry is disabled —
and, crucially, telemetry never participates in the math: fixed points
are bit-identical with it on or off.

What it captures (each section filled only by the components that have
it):

* per-iteration/sweep residual trajectory (+ dangling mass for solvers
  that track it);
* per-superstep records for the block engines: wall-clock, boundary
  messages, residual, and per-block/worker inner-iteration attribution;
* bytes shipped to worker processes (payloads and per-superstep score
  exchanges);
* per-batch affected-area records for the incremental engine;
* recovery events (worker crashes/timeouts, respawns, degradations)
  from the resilient parallel engine;
* free-form named counters and nested stage timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.convergence import ConvergenceStream
from repro.obs.timers import StageTimings


@dataclass
class SuperstepRecord:
    """One superstep of a block-centric engine."""

    index: int
    seconds: float
    messages: int
    residual: float
    local_iterations: int = 0
    #: inner iterations per block id (worker attribution lives in
    #: :attr:`SolverTelemetry.worker_blocks`).
    block_iterations: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "seconds": self.seconds,
            "messages": self.messages,
            "residual": self.residual,
            "local_iterations": self.local_iterations,
            "block_iterations": {str(k): v
                                 for k, v in self.block_iterations.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SuperstepRecord":
        return cls(
            index=int(payload["index"]),
            seconds=float(payload["seconds"]),
            messages=int(payload["messages"]),
            residual=float(payload["residual"]),
            local_iterations=int(payload.get("local_iterations", 0)),
            block_iterations={int(k): int(v) for k, v
                              in payload.get("block_iterations",
                                             {}).items()})


@dataclass
class BatchRecord:
    """One update batch applied by the incremental engine."""

    index: int
    affected_nodes: int
    affected_fraction: float
    seeds: int
    iterations: int
    residual: float
    seconds: float
    num_nodes: int
    num_edges: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "affected_nodes": self.affected_nodes,
            "affected_fraction": self.affected_fraction,
            "seeds": self.seeds,
            "iterations": self.iterations,
            "residual": self.residual,
            "seconds": self.seconds,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "BatchRecord":
        return cls(**{key: (int(payload[key]) if key in
                            ("index", "affected_nodes", "seeds",
                             "iterations", "num_nodes", "num_edges")
                            else float(payload[key]))
                      for key in ("index", "affected_nodes",
                                  "affected_fraction", "seeds",
                                  "iterations", "residual", "seconds",
                                  "num_nodes", "num_edges")})


@dataclass
class RecoveryRecord:
    """One fault-handling event in a resilient engine.

    ``kind`` is one of ``"crash"`` (a worker process died),
    ``"timeout"`` (a task blew its :class:`repro.resilience.Deadline`),
    ``"respawn"`` (a replacement worker pool was started and the blocks
    re-dispatched) or ``"degrade"`` (retries exhausted; the coordinator
    took the worker's blocks inline for the rest of the run).
    """

    index: int
    superstep: int
    worker: int
    kind: str
    attempt: int = 0
    blocks: List[int] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "superstep": self.superstep,
            "worker": self.worker,
            "kind": self.kind,
            "attempt": self.attempt,
            "blocks": list(self.blocks),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RecoveryRecord":
        return cls(index=int(payload["index"]),
                   superstep=int(payload["superstep"]),
                   worker=int(payload["worker"]),
                   kind=str(payload["kind"]),
                   attempt=int(payload.get("attempt", 0)),
                   blocks=[int(b) for b in payload.get("blocks", [])])


class SolverTelemetry:
    """Recorder for one solver/engine run (or one live session)."""

    def __init__(self, solver: str = "") -> None:
        self.solver = solver
        self.residuals: List[float] = []
        self.dangling_mass: List[float] = []
        self.supersteps: List[SuperstepRecord] = []
        self.batches: List[BatchRecord] = []
        self.recoveries: List[RecoveryRecord] = []
        self.worker_blocks: Dict[int, List[int]] = {}
        self.bytes_shipped: int = 0
        self.counters: Dict[str, float] = {}
        self.timings = StageTimings()
        self.convergence: Dict[str, ConvergenceStream] = {}

    # ------------------------------------------------------------------
    # recording (call sites guard with `if telemetry is not None`)

    def record_iteration(self, residual: float,
                         dangling_mass: Optional[float] = None) -> None:
        """One iteration/sweep of an iterative solver."""
        self.residuals.append(float(residual))
        if dangling_mass is not None:
            self.dangling_mass.append(float(dangling_mass))

    def record_superstep(self, seconds: float, messages: int,
                         residual: float, local_iterations: int = 0,
                         block_iterations: Optional[Dict[int, int]] = None
                         ) -> SuperstepRecord:
        """One superstep of a block/vertex-centric engine."""
        record = SuperstepRecord(
            index=len(self.supersteps), seconds=float(seconds),
            messages=int(messages), residual=float(residual),
            local_iterations=int(local_iterations),
            block_iterations=dict(block_iterations or {}))
        self.supersteps.append(record)
        return record

    def record_batch(self, affected_nodes: int, affected_fraction: float,
                     seeds: int, iterations: int, residual: float,
                     seconds: float, num_nodes: int,
                     num_edges: int) -> BatchRecord:
        """One incremental update batch."""
        record = BatchRecord(
            index=len(self.batches), affected_nodes=int(affected_nodes),
            affected_fraction=float(affected_fraction), seeds=int(seeds),
            iterations=int(iterations), residual=float(residual),
            seconds=float(seconds), num_nodes=int(num_nodes),
            num_edges=int(num_edges))
        self.batches.append(record)
        return record

    def record_recovery(self, superstep: int, worker: int, kind: str,
                        attempt: int = 0,
                        blocks: Optional[List[int]] = None
                        ) -> RecoveryRecord:
        """One fault-handling event (crash/timeout/respawn/degrade).

        Also bumps the matching ``resilience.<kind>s`` counter so cheap
        aggregate checks don't need to walk the event list.
        """
        record = RecoveryRecord(
            index=len(self.recoveries), superstep=int(superstep),
            worker=int(worker), kind=str(kind), attempt=int(attempt),
            blocks=[int(b) for b in (blocks or [])])
        self.recoveries.append(record)
        counter = "resilience.crashes" if kind == "crash" \
            else f"resilience.{kind}s"
        self.incr(counter)
        return record

    def record_worker(self, worker: int, blocks: List[int]) -> None:
        """Which blocks a worker owns (parallel-engine attribution)."""
        self.worker_blocks[int(worker)] = [int(b) for b in blocks]

    def record_bytes(self, count: int) -> None:
        """Bytes serialized toward worker processes."""
        self.bytes_shipped += int(count)

    def open_stream(self, name: str,
                    kind: str = "iteration") -> ConvergenceStream:
        """Get or create the named :class:`ConvergenceStream`.

        Solvers open one stream per solve (e.g. ``"twpr/levels"``) and
        append a point per iteration; engines open ``"superstep"`` /
        ``"batch"`` streams. All streams serialize with the telemetry.
        """
        stream = self.convergence.get(name)
        if stream is None:
            stream = ConvergenceStream(name=name, kind=kind)
            self.convergence[name] = stream
        return stream

    def incr(self, name: str, value: float = 1.0) -> None:
        """Bump a named counter."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_counter(self, name: str, value: float) -> None:
        """Set a named counter to an absolute value."""
        self.counters[name] = float(value)

    # ------------------------------------------------------------------
    # views

    @property
    def iterations(self) -> int:
        return len(self.residuals)

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def total_messages(self) -> int:
        return sum(record.messages for record in self.supersteps)

    def as_dict(self) -> Dict[str, object]:
        """A JSON-serializable snapshot of everything recorded."""
        payload: Dict[str, object] = {
            "solver": self.solver,
            "iterations": self.iterations,
            "residuals": list(self.residuals),
        }
        if self.dangling_mass:
            payload["dangling_mass"] = list(self.dangling_mass)
        if self.supersteps:
            payload["supersteps"] = [r.as_dict() for r in self.supersteps]
            payload["total_messages"] = self.total_messages
        if self.batches:
            payload["batches"] = [r.as_dict() for r in self.batches]
        if self.recoveries:
            payload["recoveries"] = [r.as_dict() for r in self.recoveries]
        if self.worker_blocks:
            payload["worker_blocks"] = {str(w): blocks for w, blocks
                                        in self.worker_blocks.items()}
        if self.bytes_shipped:
            payload["bytes_shipped"] = self.bytes_shipped
        if self.counters:
            payload["counters"] = dict(self.counters)
        if len(self.timings):
            payload["timings"] = self.timings.as_dict()
        if self.convergence:
            payload["convergence"] = [stream.as_dict() for stream
                                      in self.convergence.values()]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SolverTelemetry":
        """Rebuild a telemetry snapshot saved by :meth:`as_dict`.

        Inverse up to what ``as_dict`` serializes: ``timings`` come back
        flat (compound stage keys preserved, per-stage entry counts
        reset to 1), which keeps ``as_dict`` → ``from_dict`` →
        ``as_dict`` a fixed point.
        """
        telemetry = cls(solver=str(payload.get("solver", "")))
        telemetry.residuals = [float(r) for r
                               in payload.get("residuals", [])]
        telemetry.dangling_mass = [float(m) for m
                                   in payload.get("dangling_mass", [])]
        telemetry.supersteps = [SuperstepRecord.from_dict(r)
                                for r in payload.get("supersteps", [])]
        telemetry.batches = [BatchRecord.from_dict(r)
                             for r in payload.get("batches", [])]
        telemetry.recoveries = [RecoveryRecord.from_dict(r)
                                for r in payload.get("recoveries", [])]
        telemetry.worker_blocks = {
            int(worker): [int(b) for b in blocks]
            for worker, blocks in payload.get("worker_blocks",
                                              {}).items()}
        telemetry.bytes_shipped = int(payload.get("bytes_shipped", 0))
        telemetry.counters = {str(k): float(v) for k, v
                              in payload.get("counters", {}).items()}
        for key, seconds in payload.get("timings", {}).items():
            telemetry.timings.add(key, seconds)
        for stream in payload.get("convergence", []):
            parsed = ConvergenceStream.from_dict(stream)
            telemetry.convergence[parsed.name] = parsed
        return telemetry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SolverTelemetry(solver={self.solver!r}, "
                f"iterations={self.iterations}, "
                f"supersteps={self.num_supersteps}, "
                f"batches={len(self.batches)})")
