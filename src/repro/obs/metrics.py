"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the single handle engines record into.
Instruments are get-or-create (``registry.counter("x")`` twice returns
the same object), optionally labelled, and everything is plain Python —
no background threads, no sockets. Export paths:

* :meth:`MetricsRegistry.snapshot` — a JSON-serializable dict (what
  :class:`repro.obs.report.RunReport` embeds);
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  format, suitable for the node-exporter *textfile collector* or a
  ``curl``-able file (``repro metrics --format prom``).

Metric and label names follow Prometheus rules and are validated at
registration so a bad name fails at the call site, not at scrape time.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds): spans per-iteration kernels up
#: to multi-minute batch runs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)

#: Buckets (seconds) for the arrival→served freshness histogram. Every
#: layer that observes ``repro_freshness_served_seconds`` must use
#: these — the registry is get-or-create, so the first caller's
#: buckets win and mismatched call sites would silently diverge.
FRESHNESS_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 15.0, 60.0)

#: The shared freshness histogram's name/help, for the same reason.
FRESHNESS_METRIC = "repro_freshness_served_seconds"
FRESHNESS_HELP = ("Wall-clock seconds from record arrival to the "
                  "apply/publish/refresh that made it visible, by stage.")

#: Label naming an ingest partition on per-partition instruments. The
#: single-worker pipeline is partition "0" of 1, so dashboards written
#: against the label work unchanged at K=1.
PARTITION_LABEL = "partition"

#: Per-partition arrival→visible freshness, in *records* (deterministic
#: record-clock lag, one series per partition — a stalled partition
#: shows up as one hot series instead of skewing the global histogram).
PARTITION_FRESHNESS_METRIC = "repro_ingest_partition_visible_latency_records"
PARTITION_FRESHNESS_HELP = (
    "Records pulled between a record's arrival and the batch apply "
    "that made it visible, by ingest partition.")

#: Journal compaction counters (ISSUE: segment archival must be
#: observable). "Archived" counts segments moved out of the hot journal
#: tier — into ``archive/`` or deleted outright under retention.
SEGMENTS_ARCHIVED_METRIC = "repro_ingest_segments_archived"
SEGMENTS_ARCHIVED_HELP = (
    "Sealed journal segments reclaimed by compaction (moved to the "
    "archive tier or deleted under retention).")
SEGMENTS_RECLAIMED_METRIC = "repro_ingest_segments_reclaimed_bytes"
SEGMENTS_RECLAIMED_HELP = (
    "Bytes removed from the hot journal tier by compaction.")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote and newline are the three characters the
    format requires escaping inside ``label="value"`` — an unescaped
    quote or newline silently corrupts the whole scrape.
    """
    return (value.replace("\\", r"\\")
            .replace('"', r'\"')
            .replace("\n", r"\n"))


class _Instrument:
    """Shared bookkeeping: name/help/label validation and label keying."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ConfigError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ConfigError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labels = tuple(labels)

    def _key(self, label_values: Dict[str, object]) -> Tuple[str, ...]:
        if set(label_values) != set(self.labels):
            raise ConfigError(
                f"metric {self.name!r} takes labels {self.labels}, "
                f"got {tuple(sorted(label_values))}")
        return tuple(str(label_values[label]) for label in self.labels)

    def _label_str(self, key: Tuple[str, ...],
                   extra: Optional[Tuple[str, str]] = None) -> str:
        pairs = list(zip(self.labels, key))
        if extra is not None:
            pairs.append(extra)
        if not pairs:
            return ""
        inner = ",".join(
            f'{label}="{_escape_label_value(value)}"'
            for label, value in pairs)
        return "{" + inner + "}"


class Counter(_Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, value: float = 1.0, **label_values) -> None:
        if value < 0:
            raise ConfigError("counters can only increase")
        key = self._key(label_values)
        self._values[key] = self._values.get(key, 0.0) + float(value)

    def value(self, **label_values) -> float:
        return self._values.get(self._key(label_values), 0.0)

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind, "help": self.help,
            "labels": list(self.labels),
            "values": [{"labels": dict(zip(self.labels, key)),
                        "value": value}
                       for key, value in self._values.items()],
        }

    def expose(self) -> List[str]:
        return [f"{self.name}{self._label_str(key)} {_format_value(value)}"
                for key, value in self._values.items()]


class Gauge(_Instrument):
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **label_values) -> None:
        self._values[self._key(label_values)] = float(value)

    def inc(self, value: float = 1.0, **label_values) -> None:
        key = self._key(label_values)
        self._values[key] = self._values.get(key, 0.0) + float(value)

    def value(self, **label_values) -> float:
        return self._values.get(self._key(label_values), 0.0)

    snapshot = Counter.snapshot

    def expose(self) -> List[str]:
        return [f"{self.name}{self._label_str(key)} {_format_value(value)}"
                for key, value in self._values.items()]


class Histogram(_Instrument):
    """Fixed-bucket histogram with Prometheus cumulative semantics."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS,
                 labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigError(
                "histogram buckets must be non-empty, sorted, unique")
        if any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise ConfigError("histogram buckets must be finite "
                              "(+Inf is implicit)")
        self.buckets = bounds
        # per label set: [count per finite bucket] + overflow, sum, count
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}
        self._totals: Dict[Tuple[str, ...], int] = {}

    def observe(self, value: float, **label_values) -> None:
        """Record one observation.

        Bucket assignment is deterministic at the edges: bounds are
        *inclusive upper* bounds (Prometheus ``le`` semantics), so an
        observation exactly equal to a bucket bound always lands in
        that bucket — ``observe(0.1)`` with a ``0.1`` bucket counts in
        ``le="0.1"``, never the next one up. NaN compares false
        against every bound, so it deterministically lands in the
        implicit ``+Inf`` overflow bucket (as does ``+Inf`` itself;
        ``-Inf`` sorts below everything and lands in the first bucket).
        """
        key = self._key(label_values)
        counts = self._counts.setdefault(
            key, [0] * (len(self.buckets) + 1))
        slot = len(self.buckets)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                slot = index
                break
        counts[slot] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **label_values) -> int:
        return self._totals.get(self._key(label_values), 0)

    def sum(self, **label_values) -> float:
        return self._sums.get(self._key(label_values), 0.0)

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind, "help": self.help,
            "labels": list(self.labels),
            "buckets": list(self.buckets),
            "values": [{"labels": dict(zip(self.labels, key)),
                        "counts": list(counts),
                        "sum": self._sums[key],
                        "count": self._totals[key]}
                       for key, counts in self._counts.items()],
        }

    def expose(self) -> List[str]:
        lines: List[str] = []
        for key, counts in self._counts.items():
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                lines.append(
                    f"{self.name}_bucket"
                    f"{self._label_str(key, ('le', _format_value(bound)))}"
                    f" {cumulative}")
            cumulative += counts[-1]
            lines.append(
                f"{self.name}_bucket"
                f"{self._label_str(key, ('le', '+Inf'))} {cumulative}")
            lines.append(f"{self.name}_sum{self._label_str(key)} "
                         f"{_format_value(self._sums[key])}")
            lines.append(f"{self.name}_count{self._label_str(key)} "
                         f"{self._totals[key]}")
        return lines


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Sequence[str], **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}")
            if tuple(labels) != existing.labels:
                raise ConfigError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.labels}, not {tuple(labels)}")
            return existing
        instrument = cls(name, help, labels=labels, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  labels: Sequence[str] = ()) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    # ------------------------------------------------------------------
    # export

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> Dict[str, object]:
        """``{metric_name: instrument snapshot}`` (JSON-serializable)."""
        return {name: instrument.snapshot()
                for name, instrument in self._instruments.items()}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus(self) -> str:
        """Prometheus text exposition (textfile-collector compatible)."""
        lines: List[str] = []
        for name, instrument in self._instruments.items():
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            lines.extend(instrument.expose())
        return "\n".join(lines) + "\n" if lines else ""
