"""Declarative SLOs with multi-window burn-rate alerting.

An SLO says "over time, at least *objective* of events must be good" —
99% of reads under 100 ms, 95% of records served within 5 s of
arrival, 99.9% of requests not shed. The interesting signal is not the
instantaneous error rate but the **burn rate**: how fast the error
budget (``1 - objective``) is being consumed. A burn rate of 1 spends
exactly the budget over the SLO period; 14 spends a month's budget in
two days. Alerting on burn rates over *two* windows at once (a short
one for responsiveness, a long one to ride out blips) is the standard
way to page on real incidents without flapping — the alert fires only
when **both** windows burn hot.

Everything here evaluates over plain
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` dicts:
:class:`SLOMonitor` keeps a bounded history of timestamped snapshots
and diffs cumulative counters/histogram buckets between the window
anchor and now. The clock is injectable, so the whole state machine —
including breach transitions — is unit-testable without sleeping.

Three spec kinds cover the serving tier's surface:

* ``histogram_under`` — good events are observations at or under
  ``threshold`` in a histogram (read latency, served freshness);
* ``ratio`` — ``metric`` counts bad events, ``total_metric`` all
  events (shed rate / availability);
* ``gauge_max`` — the gauge must not exceed ``threshold`` (gateway
  degradation rungs); violation burns at ``inf``.

On a breach *transition* the monitor notifies its callbacks and asks
the attached :class:`~repro.obs.recorder.FlightRecorder` (if any) to
capture an incident bundle — see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import (Callable, Deque, Dict, List, Optional, Sequence,
                    Tuple)

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective, declaratively.

    Args:
        name: stable identifier (shows up in alerts and bundles).
        kind: ``histogram_under`` | ``ratio`` | ``gauge_max``.
        objective: target good fraction, e.g. ``0.99`` (ignored for
            ``gauge_max``, which is a hard bound).
        metric: the histogram (``histogram_under``), the *bad-event*
            counter (``ratio``), or the gauge (``gauge_max``).
        total_metric: the all-events counter (``ratio`` only).
        threshold: the good/bad boundary — seconds for
            ``histogram_under``, the max allowed value for
            ``gauge_max``.
        windows: (short, long) burn-rate windows in seconds; an alert
            needs **both** to burn past ``burn_threshold``.
        burn_threshold: burn rate at which the alert fires.
        min_events: ignore windows with fewer total events (a cold
            service has no error rate worth alerting on).
    """

    name: str
    kind: str
    objective: float = 0.99
    metric: str = ""
    total_metric: str = ""
    threshold: float = 0.0
    windows: Tuple[float, float] = (60.0, 300.0)
    burn_threshold: float = 1.0
    min_events: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("histogram_under", "ratio", "gauge_max"):
            raise ConfigError(
                f"unknown SLO kind {self.kind!r} for {self.name!r}")
        if not 0.0 < self.objective < 1.0 and self.kind != "gauge_max":
            raise ConfigError(
                f"objective must be in (0, 1), got {self.objective}")
        if not self.metric:
            raise ConfigError(f"SLO {self.name!r} names no metric")
        if self.kind == "ratio" and not self.total_metric:
            raise ConfigError(
                f"ratio SLO {self.name!r} needs total_metric")
        if not self.windows or any(w <= 0 for w in self.windows):
            raise ConfigError(
                f"SLO {self.name!r} windows must be positive")

    @property
    def error_budget(self) -> float:
        return max(1e-12, 1.0 - self.objective)


@dataclass
class SLOStatus:
    """One spec's evaluation at one tick."""

    name: str
    kind: str
    objective: float
    breaching: bool = False
    #: burn rate per window (seconds -> rate); inf for a violated gauge.
    burn_rates: Dict[float, float] = field(default_factory=dict)
    #: total events observed over the long window (0 for gauges).
    events: int = 0
    #: current gauge value (``gauge_max`` only).
    value: float = 0.0
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name, "kind": self.kind,
            "objective": self.objective, "breaching": self.breaching,
            "burn_rates": {str(window): rate for window, rate
                           in self.burn_rates.items()},
            "events": self.events, "value": self.value,
            "detail": self.detail,
        }


def default_slos() -> Tuple[SLOSpec, ...]:
    """The serving tier's standing objectives (see OBSERVABILITY.md)."""
    return (
        SLOSpec(name="read-latency", kind="histogram_under",
                objective=0.99, metric="repro_serve_read_latency_seconds",
                threshold=0.1,
                description="99% of service reads under 100 ms"),
        SLOSpec(name="served-freshness", kind="histogram_under",
                objective=0.95, metric="repro_freshness_served_seconds",
                threshold=5.0,
                description="95% of records served within 5 s of "
                            "arrival"),
        SLOSpec(name="availability", kind="ratio", objective=0.99,
                metric="repro_serve_shed_total",
                total_metric="repro_serve_requests_total",
                description="99% of read requests admitted (not shed)"),
        SLOSpec(name="gateway-degradation", kind="gauge_max",
                metric="repro_gateway_degraded_shards", threshold=0.0,
                description="no shard off the current board epoch"),
    )


# ----------------------------------------------------------------------
# snapshot readers

def _counter_total(snapshot: Dict[str, object], name: str) -> float:
    """Sum of a counter/gauge across all label sets (0 when absent)."""
    instrument = snapshot.get(name)
    if not instrument:
        return 0.0
    return float(sum(entry["value"]
                     for entry in instrument.get("values", ())))


def _histogram_good_total(snapshot: Dict[str, object], name: str,
                          threshold: float) -> Tuple[float, float]:
    """``(good, total)`` observations: good means ``value <= threshold``.

    Uses the per-bucket counts, so "good" is exact whenever
    ``threshold`` coincides with a bucket bound (the natural way to
    write a spec) and conservative (rounded down to the nearest bound)
    otherwise.
    """
    instrument = snapshot.get(name)
    if not instrument:
        return 0.0, 0.0
    bounds = instrument.get("buckets", ())
    good = 0.0
    total = 0.0
    for entry in instrument.get("values", ()):
        counts = entry["counts"]
        for bound, count in zip(bounds, counts):
            if bound <= threshold:
                good += count
        total += entry["count"]
    return good, total


class SLOMonitor:
    """Evaluates SLO specs over a rolling window of metric snapshots.

    Call :meth:`tick` periodically (a sim loop, ``repro watch``, a
    test); each tick snapshots the registry, evaluates every spec over
    its burn windows, and — on a transition *into* breach — notifies
    ``on_breach`` callbacks and the attached flight recorder.

    Args:
        metrics: the registry to snapshot.
        specs: objectives to evaluate (default :func:`default_slos`).
        clock: monotonic time source (injectable for tests).
        recorder: optional :class:`~repro.obs.recorder.FlightRecorder`;
            breach transitions trigger ``recorder.capture``.
        max_samples: bound on retained snapshots.
    """

    def __init__(self, metrics: MetricsRegistry,
                 specs: Optional[Sequence[SLOSpec]] = None,
                 clock: Callable[[], float] = time.monotonic,
                 recorder=None, max_samples: int = 512) -> None:
        if max_samples < 2:
            raise ConfigError("max_samples must be >= 2")
        self.metrics = metrics
        self.specs: Tuple[SLOSpec, ...] = tuple(
            specs if specs is not None else default_slos())
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate SLO names: {sorted(names)}")
        self._clock = clock
        self._recorder = recorder
        self._samples: Deque[Tuple[float, Dict[str, object]]] = deque(
            maxlen=max_samples)
        self._breaching: Dict[str, bool] = {
            spec.name: False for spec in self.specs}
        self._callbacks: List[Callable[[SLOStatus], None]] = []
        self._last: List[SLOStatus] = []
        self.breaches_total = 0

    # ------------------------------------------------------------------

    def on_breach(self, callback: Callable[[SLOStatus], None]) -> None:
        """Register a callback fired on each transition into breach."""
        self._callbacks.append(callback)

    def statuses(self) -> List[SLOStatus]:
        """The most recent :meth:`tick`'s evaluations."""
        return list(self._last)

    # ------------------------------------------------------------------

    def tick(self) -> List[SLOStatus]:
        """Snapshot, evaluate every spec, fire breach transitions."""
        now = self._clock()
        snapshot = self.metrics.snapshot()
        self._samples.append((now, snapshot))
        statuses = [self._evaluate(spec, now, snapshot)
                    for spec in self.specs]
        for status in statuses:
            was = self._breaching[status.name]
            self._breaching[status.name] = status.breaching
            if status.breaching and not was:
                self.breaches_total += 1
                for callback in self._callbacks:
                    callback(status)
                if self._recorder is not None:
                    self._recorder.capture(
                        trigger=f"slo:{status.name}",
                        slo_statuses=[s.as_dict() for s in statuses])
        self._last = statuses
        return statuses

    # ------------------------------------------------------------------

    def _anchor(self, now: float, window: float) -> Dict[str, object]:
        """The newest sample at least ``window`` old (else the oldest).

        Falling back to the oldest sample makes a young monitor
        evaluate over the history it *has* — a run shorter than the
        window still detects a hot burn instead of staying silent.
        """
        anchor = self._samples[0][1]
        for ts, snapshot in self._samples:
            if now - ts >= window:
                anchor = snapshot
            else:
                break
        return anchor

    def _evaluate(self, spec: SLOSpec, now: float,
                  snapshot: Dict[str, object]) -> SLOStatus:
        status = SLOStatus(name=spec.name, kind=spec.kind,
                           objective=spec.objective,
                           detail=spec.description)
        if spec.kind == "gauge_max":
            value = _counter_total(snapshot, spec.metric)
            status.value = value
            violated = value > spec.threshold
            for window in spec.windows:
                status.burn_rates[window] = float("inf") if violated \
                    else 0.0
            status.breaching = violated
            return status

        hot = 0
        for window in spec.windows:
            anchor = self._anchor(now, window)
            if spec.kind == "histogram_under":
                good_then, total_then = _histogram_good_total(
                    anchor, spec.metric, spec.threshold)
                good_now, total_now = _histogram_good_total(
                    snapshot, spec.metric, spec.threshold)
                total = total_now - total_then
                errors = total - (good_now - good_then)
            else:  # ratio
                bad = (_counter_total(snapshot, spec.metric)
                       - _counter_total(anchor, spec.metric))
                total = (_counter_total(snapshot, spec.total_metric)
                         - _counter_total(anchor, spec.total_metric))
                errors = bad
            if total < spec.min_events:
                status.burn_rates[window] = 0.0
                continue
            error_rate = max(0.0, errors) / total
            burn = error_rate / spec.error_budget
            status.burn_rates[window] = burn
            if burn >= spec.burn_threshold:
                hot += 1
        status.events = int(max(
            0.0, self._window_events(spec, now, snapshot)))
        status.breaching = hot == len(spec.windows)
        return status

    def _window_events(self, spec: SLOSpec, now: float,
                       snapshot: Dict[str, object]) -> float:
        window = max(spec.windows)
        anchor = self._anchor(now, window)
        if spec.kind == "histogram_under":
            _, total_then = _histogram_good_total(anchor, spec.metric,
                                                  spec.threshold)
            _, total_now = _histogram_good_total(snapshot, spec.metric,
                                                 spec.threshold)
            return total_now - total_then
        return (_counter_total(snapshot, spec.total_metric)
                - _counter_total(anchor, spec.total_metric))


def render_slo_table(statuses: Sequence[SLOStatus]) -> str:
    """Fixed-width SLO table for ``repro watch`` and bundle triage."""
    if not statuses:
        return "(no SLOs evaluated)"
    lines = [f"{'slo':<22} {'state':<8} {'objective':>9} "
             f"{'burn(short)':>11} {'burn(long)':>10} {'events':>7}"]
    for status in statuses:
        windows = sorted(status.burn_rates)
        short = status.burn_rates.get(windows[0], 0.0) if windows else 0.0
        long_ = status.burn_rates.get(windows[-1], 0.0) if windows else 0.0
        state = "BREACH" if status.breaching else "ok"
        objective = f"{status.objective:.3g}" \
            if status.kind != "gauge_max" else f"val={status.value:g}"

        def _fmt(rate: float) -> str:
            return "inf" if rate == float("inf") else f"{rate:.2f}"

        lines.append(f"{status.name:<22} {state:<8} {objective:>9} "
                     f"{_fmt(short):>11} {_fmt(long_):>10} "
                     f"{status.events:>7}")
    return "\n".join(lines)
