"""Mutable directed graph with weighted edges.

:class:`DiGraph` is the construction-time representation of a citation
network: node ids are arbitrary integers (article ids from a dataset),
edges are weighted, and both forward and reverse adjacency are maintained
so successor and predecessor queries are O(degree).

The iterative solvers never run on a ``DiGraph`` directly — they consume an
immutable :class:`~repro.graph.csr.CSRGraph` snapshot via :meth:`DiGraph.to_csr`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError


class DiGraph:
    """A mutable directed graph with float edge weights.

    Parallel edges are not allowed: re-adding an existing edge overwrites
    its weight (or accumulates, with ``accumulate=True``), which matches how
    aggregated graphs such as venue citation graphs are built.
    """

    def __init__(self) -> None:
        self._succ: Dict[int, Dict[int, float]] = {}
        self._pred: Dict[int, Dict[int, float]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction

    def add_node(self, node: int) -> None:
        """Add ``node`` to the graph. Adding an existing node is a no-op."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_nodes(self, nodes: Iterable[int]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, src: int, dst: int, weight: float = 1.0,
                 accumulate: bool = False) -> None:
        """Add the edge ``src -> dst``.

        Missing endpoints are created. If the edge already exists its weight
        is overwritten, or added to when ``accumulate`` is true.
        """
        if weight < 0:
            raise GraphError(f"edge weight must be non-negative, got {weight}")
        self.add_node(src)
        self.add_node(dst)
        existing = self._succ[src].get(dst)
        if existing is None:
            self._num_edges += 1
            new_weight = weight
        else:
            new_weight = existing + weight if accumulate else weight
        self._succ[src][dst] = new_weight
        self._pred[dst][src] = new_weight

    def add_edges(self, edges: Iterable[Tuple[int, int]],
                  accumulate: bool = False) -> None:
        """Add unweighted (weight 1.0) edges from an iterable of pairs."""
        for src, dst in edges:
            self.add_edge(src, dst, 1.0, accumulate=accumulate)

    def remove_edge(self, src: int, dst: int) -> None:
        """Remove the edge ``src -> dst``; raise if it does not exist."""
        try:
            del self._succ[src][dst]
            del self._pred[dst][src]
        except KeyError:
            raise EdgeNotFoundError(src, dst) from None
        self._num_edges -= 1

    def remove_node(self, node: int) -> None:
        """Remove ``node`` and every incident edge."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        for dst in list(self._succ[node]):
            self.remove_edge(node, dst)
        for src in list(self._pred[node]):
            self.remove_edge(src, node)
        del self._succ[node]
        del self._pred[node]

    # ------------------------------------------------------------------
    # queries

    @property
    def num_nodes(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: int) -> bool:
        return node in self._succ

    def has_edge(self, src: int, dst: int) -> bool:
        return src in self._succ and dst in self._succ[src]

    def edge_weight(self, src: int, dst: int) -> float:
        """Return the weight of ``src -> dst``; raise if absent."""
        try:
            return self._succ[src][dst]
        except KeyError:
            raise EdgeNotFoundError(src, dst) from None

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids in insertion order."""
        return iter(self._succ)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over ``(src, dst, weight)`` triples."""
        for src, targets in self._succ.items():
            for dst, weight in targets.items():
                yield src, dst, weight

    def successors(self, node: int) -> Iterator[int]:
        """Iterate over nodes that ``node`` points to (its references)."""
        try:
            return iter(self._succ[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def predecessors(self, node: int) -> Iterator[int]:
        """Iterate over nodes pointing to ``node`` (its citers)."""
        try:
            return iter(self._pred[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def out_degree(self, node: int) -> int:
        try:
            return len(self._succ[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def in_degree(self, node: int) -> int:
        try:
            return len(self._pred[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def out_weight(self, node: int) -> float:
        """Sum of outgoing edge weights of ``node``."""
        try:
            return sum(self._succ[node].values())
        except KeyError:
            raise NodeNotFoundError(node) from None

    # ------------------------------------------------------------------
    # derived graphs

    def copy(self) -> "DiGraph":
        """Return an independent deep copy."""
        clone = DiGraph()
        for node in self._succ:
            clone.add_node(node)
        for src, dst, weight in self.edges():
            clone.add_edge(src, dst, weight)
        return clone

    def reverse(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped."""
        rev = DiGraph()
        for node in self._succ:
            rev.add_node(node)
        for src, dst, weight in self.edges():
            rev.add_edge(dst, src, weight)
        return rev

    def subgraph(self, nodes: Iterable[int]) -> "DiGraph":
        """Return the induced subgraph on ``nodes``.

        Unknown ids raise :class:`NodeNotFoundError`.
        """
        keep = set(nodes)
        sub = DiGraph()
        for node in keep:
            if node not in self._succ:
                raise NodeNotFoundError(node)
            sub.add_node(node)
        for node in keep:
            for dst, weight in self._succ[node].items():
                if dst in keep:
                    sub.add_edge(node, dst, weight)
        return sub

    def to_csr(self) -> "CSRGraph":
        """Snapshot this graph as an immutable :class:`CSRGraph`."""
        from repro.graph.csr import CSRGraph

        return CSRGraph.from_digraph(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(nodes={self.num_nodes}, edges={self.num_edges})"
