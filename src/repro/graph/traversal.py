"""Graph traversal utilities: BFS distances, reachability, components.

Used by the analysis layer (citation-depth studies, affected-area
inspection) and by the sampling module. All routines are iterative and
vectorize the frontier expansion, so million-edge graphs are fine.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.errors import NodeNotFoundError
from repro.graph.csr import CSRGraph
from repro.graph.toposort import ragged_offsets, topological_levels


def _check_sources(graph: CSRGraph, sources: Iterable[int]) -> np.ndarray:
    array = np.asarray(list(sources), dtype=np.int64)
    if len(array) and (array.min() < 0 or array.max() >= graph.num_nodes):
        bad = int(array[(array < 0) | (array >= graph.num_nodes)][0])
        raise NodeNotFoundError(bad)
    return array


def bfs_distances(graph: CSRGraph, sources: Iterable[int],
                  reverse: bool = False) -> np.ndarray:
    """Hop distance from the nearest source (-1 = unreachable).

    ``reverse=True`` walks in-edges instead (distance *to* the sources
    along citation direction — e.g. "how many hops of citers away").
    """
    work_graph = graph.reverse() if reverse else graph
    n = work_graph.num_nodes
    distances = np.full(n, -1, dtype=np.int64)
    frontier = np.unique(_check_sources(graph, sources))
    distances[frontier] = 0
    depth = 0
    while len(frontier):
        depth += 1
        starts = work_graph.indptr[frontier]
        counts = work_graph.indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        gather = np.repeat(starts, counts) + ragged_offsets(counts)
        targets = np.unique(work_graph.indices[gather])
        fresh = targets[distances[targets] == -1]
        distances[fresh] = depth
        frontier = fresh
    return distances


def reachable_set(graph: CSRGraph, sources: Iterable[int],
                  reverse: bool = False) -> np.ndarray:
    """Node indices reachable from ``sources`` (including them)."""
    distances = bfs_distances(graph, sources, reverse=reverse)
    return np.flatnonzero(distances >= 0)


def weakly_connected_components(graph: CSRGraph) -> List[np.ndarray]:
    """Components of the undirected view, largest first."""
    n = graph.num_nodes
    reverse = graph.reverse()
    unvisited = np.ones(n, dtype=bool)
    components: List[np.ndarray] = []
    for start in range(n):
        if not unvisited[start]:
            continue
        members = [start]
        unvisited[start] = False
        frontier = np.asarray([start], dtype=np.int64)
        while len(frontier):
            neighbors = np.concatenate(
                [graph.indices[graph.indptr[f]:graph.indptr[f + 1]]
                 for f in frontier]
                + [reverse.indices[reverse.indptr[f]:
                                   reverse.indptr[f + 1]]
                   for f in frontier]) if len(frontier) else \
                np.zeros(0, dtype=np.int64)
            neighbors = np.unique(neighbors)
            fresh = neighbors[unvisited[neighbors]]
            unvisited[fresh] = False
            members.extend(int(x) for x in fresh)
            frontier = fresh
        components.append(np.asarray(sorted(members), dtype=np.int64))
    components.sort(key=len, reverse=True)
    return components


def citation_depth(graph: CSRGraph) -> int:
    """Length of the longest citation chain (levels - 1).

    The quantity that governs how fast iterative solvers converge on
    (near-)acyclic citation graphs — see EXPERIMENTS.md notes on E4.
    """
    if graph.num_nodes == 0:
        return 0
    return topological_levels(graph).num_levels - 1
