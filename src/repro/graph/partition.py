"""Graph partitioners for the block-centric parallel engine.

A :class:`Partition` assigns every node index to exactly one block. Three
strategies are provided, mirroring what distributed graph systems offer:

* :func:`hash_partition` — stateless hash of the node index (baseline;
  maximal edge cut).
* :func:`range_partition` — contiguous index ranges; with year-sorted node
  ids this approximates time-range partitioning, which keeps most citation
  edges (which point backward in time) near the block diagonal.
* :func:`bfs_partition` — greedy BFS region growing, a cheap locality-aware
  partitioner in the spirit of what graph-centric systems ship.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class Partition:
    """An assignment of node indices to ``num_blocks`` blocks.

    Attributes:
        assignment: ``int64[n]`` — block id of every node index.
        num_blocks: number of blocks (block ids are ``0..num_blocks-1``).
    """

    assignment: np.ndarray
    num_blocks: int
    _members: List[np.ndarray] = field(default=None, compare=False,
                                       repr=False, hash=False)

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise PartitionError(f"num_blocks must be positive, "
                                 f"got {self.num_blocks}")
        assignment = np.asarray(self.assignment, dtype=np.int64)
        if assignment.ndim != 1:
            raise PartitionError("assignment must be one-dimensional")
        if len(assignment) and (assignment.min() < 0
                                or assignment.max() >= self.num_blocks):
            raise PartitionError("assignment references block id outside "
                                 f"[0, {self.num_blocks})")
        object.__setattr__(self, "assignment", assignment)

    @property
    def num_nodes(self) -> int:
        return len(self.assignment)

    def members(self, block: int) -> np.ndarray:
        """Node indices assigned to ``block``."""
        if not 0 <= block < self.num_blocks:
            raise PartitionError(f"block {block} out of range")
        if self._members is None:
            order = np.argsort(self.assignment, kind="stable")
            bounds = np.searchsorted(self.assignment[order],
                                     np.arange(self.num_blocks + 1))
            members = [order[bounds[b]:bounds[b + 1]]
                       for b in range(self.num_blocks)]
            object.__setattr__(self, "_members", members)
        return self._members[block]

    def block_sizes(self) -> np.ndarray:
        """``int64[num_blocks]`` node count per block."""
        return np.bincount(self.assignment, minlength=self.num_blocks)

    def edge_cut(self, graph: CSRGraph) -> int:
        """Number of edges whose endpoints lie in different blocks."""
        src_idx, dst_idx, _ = graph.edge_array()
        return int(np.count_nonzero(
            self.assignment[src_idx] != self.assignment[dst_idx]))

    def cut_fraction(self, graph: CSRGraph) -> float:
        """Edge cut as a fraction of all edges (0 for an empty graph)."""
        if graph.num_edges == 0:
            return 0.0
        return self.edge_cut(graph) / graph.num_edges


def hash_partition(graph: CSRGraph, num_blocks: int,
                   seed: int = 0) -> Partition:
    """Assign nodes to blocks by a salted multiplicative hash of the index."""
    if num_blocks <= 0:
        raise PartitionError("num_blocks must be positive")
    idx = np.arange(graph.num_nodes, dtype=np.uint64)
    salt = np.uint64(0x9E3779B97F4A7C15 + 2 * seed + 1)
    hashed = (idx + np.uint64(seed)) * salt
    hashed ^= hashed >> np.uint64(31)
    assignment = (hashed % np.uint64(num_blocks)).astype(np.int64)
    return Partition(assignment, num_blocks)


def range_partition(graph: CSRGraph, num_blocks: int) -> Partition:
    """Split node indices into ``num_blocks`` near-equal contiguous ranges."""
    if num_blocks <= 0:
        raise PartitionError("num_blocks must be positive")
    n = graph.num_nodes
    assignment = np.minimum(
        (np.arange(n, dtype=np.int64) * num_blocks) // max(n, 1),
        num_blocks - 1,
    )
    return Partition(assignment, num_blocks)


def bfs_partition(graph: CSRGraph, num_blocks: int,
                  seed: int = 0) -> Partition:
    """Grow ``num_blocks`` regions by breadth-first search.

    Seeds are drawn deterministically from ``seed``; regions grow in
    round-robin over an undirected view of the graph until capacity
    ``ceil(n / num_blocks)`` is reached, then spill to the emptiest block.
    """
    if num_blocks <= 0:
        raise PartitionError("num_blocks must be positive")
    n = graph.num_nodes
    if n == 0:
        return Partition(np.empty(0, dtype=np.int64), num_blocks)

    rng = np.random.default_rng(seed)
    reverse = graph.reverse()
    assignment = np.full(n, -1, dtype=np.int64)
    capacity = -(-n // num_blocks)  # ceil division
    sizes = np.zeros(num_blocks, dtype=np.int64)

    seeds = rng.choice(n, size=min(num_blocks, n), replace=False)
    frontiers = [deque() for _ in range(num_blocks)]
    for block, node in enumerate(seeds):
        assignment[node] = block
        sizes[block] += 1
        frontiers[block].append(int(node))

    unvisited = deque(int(i) for i in rng.permutation(n))
    active = True
    while active:
        active = False
        for block in range(num_blocks):
            frontier = frontiers[block]
            while frontier and sizes[block] < capacity:
                node = frontier.popleft()
                grew = False
                for neighbor in np.concatenate(
                        [graph.neighbors(node), reverse.neighbors(node)]):
                    neighbor = int(neighbor)
                    if assignment[neighbor] == -1:
                        assignment[neighbor] = block
                        sizes[block] += 1
                        frontier.append(neighbor)
                        grew = True
                        if sizes[block] >= capacity:
                            break
                if grew:
                    active = True
                    break

    # Unreached nodes (disconnected or capacity-blocked) go to the
    # emptiest block, keeping balance.
    while unvisited:
        node = unvisited.popleft()
        if assignment[node] == -1:
            block = int(np.argmin(sizes))
            assignment[node] = block
            sizes[block] += 1
    return Partition(assignment, num_blocks)
