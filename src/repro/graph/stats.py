"""Summary statistics of citation graphs (dataset-statistics table, E9)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.toposort import dag_violations, is_dag


@dataclass(frozen=True)
class GraphStats:
    """Structural summary of a directed graph.

    ``powerlaw_alpha`` is a continuous maximum-likelihood estimate of the
    in-degree power-law exponent (Clauset-style with ``xmin=1``), ``nan``
    when there are no nodes with positive in-degree.
    """

    num_nodes: int
    num_edges: int
    density: float
    num_dangling: int
    num_isolated: int
    max_in_degree: int
    max_out_degree: int
    mean_in_degree: float
    acyclic: bool
    forward_edges: Optional[int]
    powerlaw_alpha: float

    def as_row(self) -> dict:
        """Flatten to a dict suitable for table rendering."""
        return {
            "|V|": self.num_nodes,
            "|E|": self.num_edges,
            "density": f"{self.density:.2e}",
            "dangling": self.num_dangling,
            "isolated": self.num_isolated,
            "max in-deg": self.max_in_degree,
            "mean in-deg": f"{self.mean_in_degree:.2f}",
            "DAG": "yes" if self.acyclic else "no",
            "fwd edges": "-" if self.forward_edges is None
                         else self.forward_edges,
            "alpha": f"{self.powerlaw_alpha:.2f}",
        }


def powerlaw_mle(degrees: np.ndarray, xmin: int = 1) -> float:
    """Continuous MLE of a power-law exponent for ``degrees >= xmin``.

    ``alpha = 1 + n / sum(ln(x / (xmin - 0.5)))`` — the standard discrete
    approximation from Clauset, Shalizi & Newman (2009).
    """
    tail = degrees[degrees >= xmin].astype(np.float64)
    if len(tail) == 0:
        return float("nan")
    denom = np.sum(np.log(tail / (xmin - 0.5)))
    if denom <= 0:
        return float("nan")
    return float(1.0 + len(tail) / denom)


def compute_stats(graph: CSRGraph,
                  years: Optional[np.ndarray] = None) -> GraphStats:
    """Compute a :class:`GraphStats` summary for ``graph``.

    When publication ``years`` (aligned with node indices) are supplied, the
    count of forward-in-time citation edges is included.
    """
    n = graph.num_nodes
    m = graph.num_edges
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    density = m / (n * (n - 1)) if n > 1 else 0.0
    forward = None
    if years is not None:
        forward = dag_violations(graph, np.asarray(years))
    return GraphStats(
        num_nodes=n,
        num_edges=m,
        density=density,
        num_dangling=int(np.count_nonzero(out_deg == 0)),
        num_isolated=int(np.count_nonzero((out_deg == 0) & (in_deg == 0))),
        max_in_degree=int(in_deg.max()) if n else 0,
        max_out_degree=int(out_deg.max()) if n else 0,
        mean_in_degree=float(in_deg.mean()) if n else 0.0,
        acyclic=is_dag(graph),
        forward_edges=forward,
        powerlaw_alpha=powerlaw_mle(in_deg),
    )
