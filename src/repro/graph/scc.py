"""Strongly connected components (iterative Tarjan) and condensation.

Citation graphs are *nearly* acyclic — cycles appear only through mutual
citations between near-simultaneous articles. The batch TWPR optimization
sweeps nodes in reverse topological order of the condensation, so SCCs must
be found without recursion (real citation graphs easily exceed Python's
recursion limit).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.graph.csr import CSRGraph


def strongly_connected_components(graph: CSRGraph) -> List[List[int]]:
    """Return SCCs of ``graph`` as lists of node *indices*.

    Components are emitted in reverse topological order of the condensation
    (a component appears before any component it points to appears... more
    precisely, Tarjan emits a component only after all components reachable
    from it): iterating the returned list forward visits "sinks first".
    """
    n = graph.num_nodes
    index_of: np.ndarray = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        # Explicit DFS stack of (node, iterator position into its edges).
        work: List[List[int]] = [[root, int(graph.indptr[root])]]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, pos = work[-1]
            if pos < graph.indptr[node + 1]:
                work[-1][1] += 1
                child = int(graph.indices[pos])
                if index_of[child] == -1:
                    index_of[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack[child] = True
                    work.append([child, int(graph.indptr[child])])
                elif on_stack[child]:
                    lowlink[node] = min(lowlink[node], index_of[child])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component: List[int] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
    return components


def condensation(graph: CSRGraph):
    """Condense ``graph`` into its DAG of SCCs.

    Returns ``(dag, membership)`` where ``dag`` is a :class:`CSRGraph` whose
    node ``c`` is the ``c``-th component from
    :func:`strongly_connected_components`, and ``membership[i]`` is the
    component index of graph node ``i``.
    """
    components = strongly_connected_components(graph)
    n = graph.num_nodes
    membership = np.empty(n, dtype=np.int64)
    for comp_id, members in enumerate(components):
        for node in members:
            membership[node] = comp_id

    edges: Dict[tuple, float] = {}
    src_idx, dst_idx, weights = graph.edge_array()
    for u, v, w in zip(membership[src_idx], membership[dst_idx], weights):
        if u != v:
            key = (int(u), int(v))
            edges[key] = edges.get(key, 0.0) + float(w)

    dag = CSRGraph.from_edges(
        list(edges.keys()),
        nodes=range(len(components)),
        weights=list(edges.values()),
    )
    return dag, membership
