"""K-core decomposition of the undirected view of a graph.

The core number of an article (the largest ``k`` such that it survives
in the subgraph where every node keeps degree >= ``k``) is a robust
density-based importance signal, used here for corpus analysis and as a
structural feature in dataset statistics.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def core_numbers(graph: CSRGraph) -> np.ndarray:
    """``int64[n]`` core number of every node (undirected degrees).

    Standard peeling (Batagelj–Zaveršnik): repeatedly remove the
    minimum-degree node; its degree at removal is its core number.
    Self-loops count once per endpoint, parallel edges each time —
    matching the undirected multigraph view of the CSR.
    """
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    reverse = graph.reverse()
    degree = (graph.out_degrees() + graph.in_degrees()).astype(np.int64)

    # Bucket peeling in O(n + m).
    max_degree = int(degree.max()) if n else 0
    order = np.argsort(degree, kind="stable")
    position_of = np.empty(n, dtype=np.int64)
    position_of[order] = np.arange(n)
    bucket_start = np.zeros(max_degree + 2, dtype=np.int64)
    np.cumsum(np.bincount(degree, minlength=max_degree + 1),
              out=bucket_start[1:])
    bucket_start = bucket_start[:-1].copy()

    core = degree.copy()
    current = degree.copy()
    removed = np.zeros(n, dtype=bool)
    order = order.copy()
    for step in range(n):
        node = order[step]
        removed[node] = True
        core[node] = current[node]
        neighbors = np.concatenate([
            graph.indices[graph.indptr[node]:graph.indptr[node + 1]],
            reverse.indices[reverse.indptr[node]:
                            reverse.indptr[node + 1]]])
        for neighbor in neighbors:
            neighbor = int(neighbor)
            if removed[neighbor] or current[neighbor] <= current[node]:
                continue
            # Swap neighbor to the front of its degree bucket, then
            # decrement its degree (classic O(1) bucket update).
            degree_n = current[neighbor]
            front = bucket_start[degree_n]
            front_node = order[front]
            pos_n = position_of[neighbor]
            order[front], order[pos_n] = neighbor, front_node
            position_of[neighbor] = front
            position_of[front_node] = pos_n
            bucket_start[degree_n] += 1
            current[neighbor] -= 1
    return core


def max_core(graph: CSRGraph) -> int:
    """The graph's degeneracy (largest core number)."""
    if graph.num_nodes == 0:
        return 0
    return int(core_numbers(graph).max())
