"""Topological ordering (Kahn's algorithm) over CSR snapshots.

Used by the batch TWPR optimization: on an acyclic citation graph the
prestige linear system is triangular when swept in topological order, so a
single Gauss–Seidel pass per direction converges dramatically faster than
blind power iteration.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

from repro.graph.csr import CSRGraph


def topological_sort(graph: CSRGraph) -> Optional[List[int]]:
    """Return node indices in topological order, or ``None`` if cyclic.

    An edge ``u -> v`` places ``u`` before ``v`` in the returned order.
    Ties (nodes whose in-degree reaches zero together) are broken by index,
    making the order deterministic.
    """
    n = graph.num_nodes
    in_deg = graph.in_degrees().copy()
    ready = deque(int(i) for i in np.flatnonzero(in_deg == 0))
    order: List[int] = []
    while ready:
        node = ready.popleft()
        order.append(node)
        for child in graph.neighbors(node):
            in_deg[child] -= 1
            if in_deg[child] == 0:
                ready.append(int(child))
    if len(order) != n:
        return None
    return order


def is_dag(graph: CSRGraph) -> bool:
    """True when ``graph`` contains no directed cycle."""
    return topological_sort(graph) is not None


def dag_violations(graph: CSRGraph, years: np.ndarray) -> int:
    """Count edges pointing *forward* in time (``t(src) < t(dst)``).

    A citation normally points backward in time; forward edges come from
    in-press cross-citations and data noise. The count feeds the dataset
    statistics table (experiment E9).
    """
    src_idx, dst_idx, _ = graph.edge_array()
    return int(np.count_nonzero(years[src_idx] < years[dst_idx]))
