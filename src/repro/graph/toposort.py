"""Topological ordering (Kahn's algorithm) and level decomposition.

Used by the batch TWPR optimization: on an acyclic citation graph the
prestige linear system is triangular when swept in topological order, so a
single Gauss–Seidel pass per direction converges dramatically faster than
blind power iteration.

:func:`topological_levels` is the vectorized form the CSR solver kernels
run on: it groups nodes into *levels* such that every edge crosses from a
strictly lower level to a strictly higher one — so all nodes of one level
can be updated as a single sparse matvec / segment reduction instead of a
per-node Python loop. On cyclic graphs levels are computed on the SCC
condensation; members of a non-trivial SCC share a level (they are the
only nodes with intra-level edges, flagged by ``cyclic_mask``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.graph.csr import CSRGraph


def topological_sort(graph: CSRGraph) -> Optional[List[int]]:
    """Return node indices in topological order, or ``None`` if cyclic.

    An edge ``u -> v`` places ``u`` before ``v`` in the returned order.
    Ties (nodes whose in-degree reaches zero together) are broken by index,
    making the order deterministic.
    """
    n = graph.num_nodes
    in_deg = graph.in_degrees().copy()
    ready = deque(int(i) for i in np.flatnonzero(in_deg == 0))
    order: List[int] = []
    while ready:
        node = ready.popleft()
        order.append(node)
        for child in graph.neighbors(node):
            in_deg[child] -= 1
            if in_deg[child] == 0:
                ready.append(int(child))
    if len(order) != n:
        return None
    return order


def is_dag(graph: CSRGraph) -> bool:
    """True when ``graph`` contains no directed cycle."""
    return topological_sort(graph) is not None


def ragged_offsets(counts: np.ndarray) -> np.ndarray:
    """``[0..c0-1, 0..c1-1, ...]`` for slice gathering (vectorized).

    Given per-group element counts, returns the within-group offset of
    every element — the standard trick for gathering many CSR segments
    in one shot: ``np.repeat(starts, counts) + ragged_offsets(counts)``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.ones(total, dtype=np.int64)
    offsets[0] = 0
    boundaries = np.cumsum(counts)[:-1]
    valid = boundaries < total
    # subtract.at handles repeated boundaries from zero-length groups.
    np.subtract.at(offsets, boundaries[valid],
                   np.asarray(counts[:-1])[valid])
    return np.cumsum(offsets)


@dataclass(frozen=True)
class LevelDecomposition:
    """Topological levels of a graph, suitable for batched sweeps.

    ``levels[v]`` is the length of the longest path reaching ``v`` (0 =
    no in-edges). Every edge ``u -> v`` satisfies
    ``levels[u] < levels[v]`` — except intra-SCC edges on cyclic graphs,
    where all members of one SCC share the level of their component in
    the condensation DAG and are flagged in ``cyclic_mask``. Nodes with
    ``cyclic_mask[v] == False`` therefore have *no* in-edges from their
    own level: a solver may update a whole level of them as one
    vectorized kernel without changing Gauss–Seidel sweep semantics.
    """

    levels: np.ndarray
    num_levels: int
    acyclic: bool
    #: ``True`` for nodes inside a strongly connected component of size
    #: > 1 (the only nodes that can have intra-level edges).
    cyclic_mask: np.ndarray


def topological_levels(graph: CSRGraph) -> LevelDecomposition:
    """Group nodes into topological levels (vectorized Kahn waves).

    Wave ``k`` removes exactly the nodes whose longest incoming path has
    length ``k``, so the whole decomposition costs a handful of numpy
    passes over the edge arrays. Cyclic graphs fall back to levels of
    the SCC condensation (all members of one SCC share a level).
    """
    n = graph.num_nodes
    if n == 0:
        return LevelDecomposition(np.zeros(0, dtype=np.int64), 0, True,
                                  np.zeros(0, dtype=bool))
    levels = _kahn_wave_levels(graph)
    if levels is not None:
        return LevelDecomposition(levels, int(levels.max()) + 1, True,
                                  np.zeros(n, dtype=bool))
    # Cycles present: condense and lift the condensation's levels.
    from repro.graph.scc import condensation

    dag, membership = condensation(graph)
    dag_levels = _kahn_wave_levels(dag)
    if dag_levels is None:  # pragma: no cover - condensation is a DAG
        raise ValueError("condensation was not acyclic")
    levels = dag_levels[membership]
    cyclic = (np.bincount(membership, minlength=dag.num_nodes)
              > 1)[membership]
    return LevelDecomposition(levels, int(dag_levels.max()) + 1, False,
                              cyclic)


def _kahn_wave_levels(graph: CSRGraph) -> Optional[np.ndarray]:
    """Longest-path levels of a DAG, or ``None`` when cyclic."""
    n = graph.num_nodes
    in_degree = graph.in_degrees().copy()
    levels = np.zeros(n, dtype=np.int64)
    frontier = np.flatnonzero(in_degree == 0)
    removed = len(frontier)
    level = 0
    while len(frontier):
        levels[frontier] = level
        # Gather all out-edges of the frontier in one shot.
        starts = graph.indptr[frontier]
        counts = graph.indptr[frontier + 1] - starts
        if counts.sum() == 0:
            break
        gather = np.repeat(starts, counts) + ragged_offsets(counts)
        targets = graph.indices[gather]
        decrements = np.bincount(targets, minlength=n)
        in_degree -= decrements
        frontier = np.flatnonzero((in_degree == 0) & (decrements > 0))
        removed += len(frontier)
        level += 1
    if removed != n:
        return None
    return levels


def dag_violations(graph: CSRGraph, years: np.ndarray) -> int:
    """Count edges pointing *forward* in time (``t(src) < t(dst)``).

    A citation normally points backward in time; forward edges come from
    in-press cross-citations and data noise. The count feeds the dataset
    statistics table (experiment E9).
    """
    src_idx, dst_idx, _ = graph.edge_array()
    return int(np.count_nonzero(years[src_idx] < years[dst_idx]))
