"""Directed-graph kernel used by every other subsystem.

The kernel has two complementary representations:

* :class:`~repro.graph.digraph.DiGraph` — a mutable adjacency-map graph used
  while building or updating a citation network.
* :class:`~repro.graph.csr.CSRGraph` — an immutable, numpy-backed compressed
  sparse row snapshot used by all iterative solvers.

Plus structural algorithms: Tarjan strongly-connected components,
Kahn topological sort, partitioners and summary statistics.
"""

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.kcore import core_numbers, max_core
from repro.graph.partition import (
    Partition,
    bfs_partition,
    hash_partition,
    range_partition,
)
from repro.graph.scc import condensation, strongly_connected_components
from repro.graph.stats import GraphStats, compute_stats
from repro.graph.toposort import is_dag, topological_sort
from repro.graph.traversal import (
    bfs_distances,
    citation_depth,
    reachable_set,
    weakly_connected_components,
)

__all__ = [
    "CSRGraph",
    "DiGraph",
    "Partition",
    "GraphStats",
    "bfs_partition",
    "hash_partition",
    "range_partition",
    "condensation",
    "strongly_connected_components",
    "compute_stats",
    "is_dag",
    "topological_sort",
    "core_numbers",
    "max_core",
    "bfs_distances",
    "citation_depth",
    "reachable_set",
    "weakly_connected_components",
]
