"""Immutable compressed-sparse-row graph snapshot.

:class:`CSRGraph` is the representation every iterative solver runs on.
Nodes are re-indexed to the contiguous range ``0..n-1``; the original ids
are kept in :attr:`CSRGraph.node_ids` and the inverse mapping is available
through :meth:`CSRGraph.index_of`.

The forward CSR stores *out*-edges (``u``'s references); the lazily built
reverse CSR stores *in*-edges (``u``'s citers) and is cached because both
PageRank-style pull iterations and popularity sums consume it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError, NodeNotFoundError


class CSRGraph:
    """A frozen directed graph in CSR form.

    Attributes:
        indptr: ``int64[n+1]`` — out-edge slice boundaries per node index.
        indices: ``int64[m]`` — destination node *indices* of out-edges.
        weights: ``float64[m]`` — edge weights aligned with ``indices``.
        node_ids: ``int64[n]`` — original node id of each index.
    """

    __slots__ = ("indptr", "indices", "weights", "node_ids",
                 "_id_to_index", "_reverse")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 weights: np.ndarray, node_ids: np.ndarray) -> None:
        if indptr.ndim != 1 or indices.ndim != 1 or weights.ndim != 1:
            raise GraphError("CSR arrays must be one-dimensional")
        if len(indices) != len(weights):
            raise GraphError("indices and weights must have equal length")
        if len(indptr) != len(node_ids) + 1:
            raise GraphError("indptr length must be num_nodes + 1")
        if len(indptr) > 0 and indptr[-1] != len(indices):
            raise GraphError("indptr[-1] must equal the edge count")
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        self.node_ids = np.ascontiguousarray(node_ids, dtype=np.int64)
        self._id_to_index: Optional[Dict[int, int]] = None
        self._reverse: Optional["CSRGraph"] = None

    # ------------------------------------------------------------------
    # constructors

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int]],
                   nodes: Optional[Sequence[int]] = None,
                   weights: Optional[Sequence[float]] = None) -> "CSRGraph":
        """Build from ``(src, dst)`` pairs over arbitrary integer ids.

        ``nodes`` may list ids explicitly (to include isolated nodes and fix
        index order); otherwise ids are collected from the edges in sorted
        order. ``weights`` aligns with ``edges`` and defaults to all ones.
        """
        edge_list = list(edges)
        if weights is not None:
            weight_list = [float(w) for w in weights]
            if len(weight_list) != len(edge_list):
                raise GraphError("weights must align one-to-one with edges")
        else:
            weight_list = [1.0] * len(edge_list)

        if nodes is not None:
            node_ids = np.asarray(list(nodes), dtype=np.int64)
            if len(np.unique(node_ids)) != len(node_ids):
                raise GraphError("duplicate ids in explicit node list")
        else:
            seen = {u for u, _ in edge_list} | {v for _, v in edge_list}
            node_ids = np.asarray(sorted(seen), dtype=np.int64)

        id_to_index = {int(node): i for i, node in enumerate(node_ids)}
        n = len(node_ids)
        src_idx = np.empty(len(edge_list), dtype=np.int64)
        dst_idx = np.empty(len(edge_list), dtype=np.int64)
        for k, (u, v) in enumerate(edge_list):
            try:
                src_idx[k] = id_to_index[u]
                dst_idx[k] = id_to_index[v]
            except KeyError as exc:
                raise NodeNotFoundError(int(exc.args[0])) from None
        return cls._from_indexed(n, src_idx, dst_idx,
                                 np.asarray(weight_list), node_ids)

    @classmethod
    def from_digraph(cls, graph) -> "CSRGraph":
        """Snapshot a :class:`~repro.graph.digraph.DiGraph`."""
        node_ids = np.asarray(sorted(graph.nodes()), dtype=np.int64)
        id_to_index = {int(node): i for i, node in enumerate(node_ids)}
        m = graph.num_edges
        src_idx = np.empty(m, dtype=np.int64)
        dst_idx = np.empty(m, dtype=np.int64)
        weights = np.empty(m, dtype=np.float64)
        for k, (u, v, w) in enumerate(graph.edges()):
            src_idx[k] = id_to_index[u]
            dst_idx[k] = id_to_index[v]
            weights[k] = w
        return cls._from_indexed(len(node_ids), src_idx, dst_idx,
                                 weights, node_ids)

    @classmethod
    def _from_indexed(cls, n: int, src_idx: np.ndarray, dst_idx: np.ndarray,
                      weights: np.ndarray, node_ids: np.ndarray) -> "CSRGraph":
        """Assemble CSR arrays from pre-indexed edge endpoints."""
        counts = np.bincount(src_idx, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(src_idx, kind="stable")
        indices = dst_idx[order]
        data = np.asarray(weights, dtype=np.float64)[order]
        return cls(indptr, indices, data, node_ids)

    # ------------------------------------------------------------------
    # basic queries

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def index_of(self, node_id: int) -> int:
        """Map an original node id to its contiguous index."""
        if self._id_to_index is None:
            self._id_to_index = {int(v): i for i, v in enumerate(self.node_ids)}
        try:
            return self._id_to_index[int(node_id)]
        except KeyError:
            raise NodeNotFoundError(int(node_id)) from None

    def neighbors(self, index: int) -> np.ndarray:
        """Out-neighbour *indices* of the node at ``index``."""
        if not 0 <= index < self.num_nodes:
            raise NodeNotFoundError(index)
        return self.indices[self.indptr[index]:self.indptr[index + 1]]

    def neighbor_weights(self, index: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors`."""
        if not 0 <= index < self.num_nodes:
            raise NodeNotFoundError(index)
        return self.weights[self.indptr[index]:self.indptr[index + 1]]

    def out_degrees(self) -> np.ndarray:
        """``int64[n]`` out-degree of every node."""
        return np.diff(self.indptr)

    def in_degrees(self) -> np.ndarray:
        """``int64[n]`` in-degree of every node."""
        return np.bincount(self.indices, minlength=self.num_nodes)

    def out_strengths(self) -> np.ndarray:
        """``float64[n]`` sum of outgoing edge weights per node."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64),
                        np.diff(self.indptr))
        return np.bincount(src, weights=self.weights,
                           minlength=self.num_nodes)

    # ------------------------------------------------------------------
    # derived structures

    def reverse(self) -> "CSRGraph":
        """Edge-reversed snapshot (cached). Node indexing is preserved."""
        if self._reverse is None:
            n = self.num_nodes
            src_of_edge = np.repeat(np.arange(n, dtype=np.int64),
                                    np.diff(self.indptr))
            rev = CSRGraph._from_indexed(n, self.indices, src_of_edge,
                                         self.weights, self.node_ids)
            rev._reverse = self
            self._reverse = rev
        return self._reverse

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(src_idx, dst_idx, weights)`` arrays for all edges."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64),
                        np.diff(self.indptr))
        return src, self.indices.copy(), self.weights.copy()

    def to_scipy(self):
        """Return the adjacency as a ``scipy.sparse.csr_matrix``."""
        from scipy.sparse import csr_matrix

        n = self.num_nodes
        return csr_matrix((self.weights, self.indices, self.indptr),
                          shape=(n, n))

    def edges(self) -> Iterable[Tuple[int, int, float]]:
        """Iterate ``(src_index, dst_index, weight)`` triples."""
        for u in range(self.num_nodes):
            start, stop = self.indptr[u], self.indptr[u + 1]
            for k in range(start, stop):
                yield u, int(self.indices[k]), float(self.weights[k])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(nodes={self.num_nodes}, edges={self.num_edges})"
