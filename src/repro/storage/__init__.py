"""SQLite-backed persistent store for scholarly datasets and rankings."""

from repro.storage.store import DatasetStore

__all__ = ["DatasetStore"]
