"""SQLite persistence for datasets and computed rankings.

Parsing a multi-gigabyte AMiner/MAG dump is far slower than reading rows
back out of SQLite, so the store lets a pipeline ingest once and re-rank
many times. Rankings are stored per ``(dataset, method)`` so experiment
sweeps can cache and compare methods.

The store keeps everything in a single database file; ``:memory:`` works
for tests. Connections are used as context managers so every write is
transactional. File-backed stores run in WAL journal mode with a busy
timeout, so a reader and a writer (a ranking sweep next to an ingest)
can share the file without "database is locked" crashes; and every raw
``sqlite3`` exception is re-raised as :class:`StorageError`, so callers
deal with exactly one error taxonomy.
"""

from __future__ import annotations

import functools
import sqlite3
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import StorageError
from repro.data.schema import Article, Author, ScholarlyDataset, Venue

PathLike = Union[str, Path]


def _guarded(method):
    """Re-raise raw sqlite3 errors as :class:`StorageError`."""
    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        try:
            return method(self, *args, **kwargs)
        except sqlite3.Error as exc:
            raise StorageError(
                f"sqlite failure in {method.__name__}: {exc}") from exc
    return wrapper

# v2: citations carry a ``position`` column (the index of the reference
# inside the article's reference tuple) so repeated citations round-trip
# with their multiplicity and order — v1's (citing, cited) primary key
# silently collapsed duplicates. v1 files are migrated in place on open.
_SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS datasets (
    name TEXT PRIMARY KEY,
    num_articles INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS articles (
    dataset TEXT NOT NULL REFERENCES datasets(name) ON DELETE CASCADE,
    id INTEGER NOT NULL,
    title TEXT NOT NULL,
    year INTEGER NOT NULL,
    venue_id INTEGER,
    quality REAL,
    PRIMARY KEY (dataset, id)
);
CREATE TABLE IF NOT EXISTS citations (
    dataset TEXT NOT NULL,
    citing INTEGER NOT NULL,
    position INTEGER NOT NULL,
    cited INTEGER NOT NULL,
    PRIMARY KEY (dataset, citing, position)
);
CREATE TABLE IF NOT EXISTS authorship (
    dataset TEXT NOT NULL,
    article_id INTEGER NOT NULL,
    author_id INTEGER NOT NULL,
    position INTEGER NOT NULL,
    PRIMARY KEY (dataset, article_id, position)
);
CREATE TABLE IF NOT EXISTS venues (
    dataset TEXT NOT NULL,
    id INTEGER NOT NULL,
    name TEXT NOT NULL,
    prestige REAL,
    PRIMARY KEY (dataset, id)
);
CREATE TABLE IF NOT EXISTS authors (
    dataset TEXT NOT NULL,
    id INTEGER NOT NULL,
    name TEXT NOT NULL,
    PRIMARY KEY (dataset, id)
);
CREATE TABLE IF NOT EXISTS rankings (
    dataset TEXT NOT NULL,
    method TEXT NOT NULL,
    article_id INTEGER NOT NULL,
    score REAL NOT NULL,
    PRIMARY KEY (dataset, method, article_id)
);
CREATE INDEX IF NOT EXISTS idx_articles_year
    ON articles(dataset, year);
CREATE INDEX IF NOT EXISTS idx_citations_cited
    ON citations(dataset, cited);
CREATE INDEX IF NOT EXISTS idx_rankings_score
    ON rankings(dataset, method, score DESC);
"""


class DatasetStore:
    """A SQLite store for datasets and per-method ranking scores."""

    def __init__(self, path: PathLike = ":memory:",
                 busy_timeout_ms: int = 5000) -> None:
        self._path = str(path)
        try:
            self._conn = sqlite3.connect(self._path)
            self._conn.execute("PRAGMA foreign_keys = ON")
            if self._path != ":memory:":
                # WAL lets one writer proceed under concurrent readers
                # (an ingest next to a ranking sweep) and survives
                # crashes without half-applied transactions; the busy
                # timeout turns brief lock contention into a short wait
                # instead of an immediate "database is locked" error.
                self._conn.execute("PRAGMA journal_mode = WAL")
                self._conn.execute(
                    f"PRAGMA busy_timeout = {int(busy_timeout_ms)}")
            with self._conn:
                stored = self._stored_schema_version()
                self._conn.executescript(_SCHEMA)
                if stored is not None and stored < _SCHEMA_VERSION:
                    self._migrate(stored)
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta(key, value) VALUES(?, ?)",
                    ("schema_version", str(_SCHEMA_VERSION)))
        except sqlite3.Error as exc:
            raise StorageError(
                f"cannot open dataset store at {self._path!r}: {exc}"
            ) from exc

    def _stored_schema_version(self) -> Optional[int]:
        """Schema version already in the file (None for a fresh store)."""
        has_meta = self._conn.execute(
            "SELECT 1 FROM sqlite_master WHERE type = 'table' "
            "AND name = 'meta'").fetchone()
        if not has_meta:
            return None
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        return int(row[0]) if row else None

    def _migrate(self, stored: int) -> None:
        """Upgrade an existing file's tables to the current schema."""
        if stored < 2:
            # v1 citations had PRIMARY KEY (dataset, citing, cited) and
            # no position column; rebuild with synthesized positions
            # (duplicates were already lost at v1 save time).
            self._conn.executescript("""
                ALTER TABLE citations RENAME TO citations_v1;
                CREATE TABLE citations (
                    dataset TEXT NOT NULL,
                    citing INTEGER NOT NULL,
                    position INTEGER NOT NULL,
                    cited INTEGER NOT NULL,
                    PRIMARY KEY (dataset, citing, position)
                );
                INSERT INTO citations(dataset, citing, position, cited)
                    SELECT dataset, citing,
                           ROW_NUMBER() OVER (
                               PARTITION BY dataset, citing
                               ORDER BY cited) - 1,
                           cited
                    FROM citations_v1;
                DROP TABLE citations_v1;
                CREATE INDEX IF NOT EXISTS idx_citations_cited
                    ON citations(dataset, cited);
            """)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "DatasetStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # datasets

    @_guarded
    def list_datasets(self) -> List[str]:
        """Names of stored datasets, sorted."""
        rows = self._conn.execute(
            "SELECT name FROM datasets ORDER BY name").fetchall()
        return [row[0] for row in rows]

    @_guarded
    def has_dataset(self, name: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM datasets WHERE name = ?", (name,)).fetchone()
        return row is not None

    @_guarded
    def save_dataset(self, dataset: ScholarlyDataset,
                     overwrite: bool = False) -> None:
        """Persist ``dataset`` under its own name."""
        if self.has_dataset(dataset.name):
            if not overwrite:
                raise StorageError(
                    f"dataset {dataset.name!r} already stored "
                    "(pass overwrite=True to replace)")
            self.delete_dataset(dataset.name)
        name = dataset.name
        with self._conn:
            self._conn.execute(
                "INSERT INTO datasets(name, num_articles) VALUES(?, ?)",
                (name, dataset.num_articles))
            self._conn.executemany(
                "INSERT INTO venues VALUES(?, ?, ?, ?)",
                ((name, v.id, v.name, v.prestige)
                 for v in dataset.venues.values()))
            self._conn.executemany(
                "INSERT INTO authors VALUES(?, ?, ?)",
                ((name, a.id, a.name) for a in dataset.authors.values()))
            self._conn.executemany(
                "INSERT INTO articles VALUES(?, ?, ?, ?, ?, ?)",
                ((name, a.id, a.title, a.year, a.venue_id, a.quality)
                 for a in dataset.articles.values()))
            # Positions preserve reference order *and* multiplicity, so
            # repeated citations survive the round-trip (duplicates are
            # legal in the schema and carry weight in the CSR graph).
            self._conn.executemany(
                "INSERT INTO citations VALUES(?, ?, ?, ?)",
                ((name, a.id, position, ref)
                 for a in dataset.articles.values()
                 for position, ref in enumerate(a.references)))
            self._conn.executemany(
                "INSERT INTO authorship VALUES(?, ?, ?, ?)",
                ((name, a.id, author_id, position)
                 for a in dataset.articles.values()
                 for position, author_id in enumerate(a.author_ids)))

    @_guarded
    def load_dataset(self, name: str) -> ScholarlyDataset:
        """Reconstruct a stored dataset."""
        if not self.has_dataset(name):
            raise StorageError(f"no stored dataset named {name!r}")
        dataset = ScholarlyDataset(name=name)
        for venue_id, venue_name, prestige in self._conn.execute(
                "SELECT id, name, prestige FROM venues WHERE dataset = ?",
                (name,)):
            dataset.add_venue(Venue(id=venue_id, name=venue_name,
                                    prestige=prestige))
        for author_id, author_name in self._conn.execute(
                "SELECT id, name FROM authors WHERE dataset = ?", (name,)):
            dataset.add_author(Author(id=author_id, name=author_name))

        references: Dict[int, List[int]] = {}
        for citing, cited in self._conn.execute(
                "SELECT citing, cited FROM citations WHERE dataset = ?"
                " ORDER BY citing, position", (name,)):
            references.setdefault(citing, []).append(cited)
        teams: Dict[int, List[int]] = {}
        for article_id, author_id in self._conn.execute(
                "SELECT article_id, author_id FROM authorship "
                "WHERE dataset = ? ORDER BY article_id, position", (name,)):
            teams.setdefault(article_id, []).append(author_id)
        for article_id, title, year, venue_id, quality in self._conn.execute(
                "SELECT id, title, year, venue_id, quality FROM articles "
                "WHERE dataset = ? ORDER BY id", (name,)):
            dataset.add_article(Article(
                id=article_id, title=title, year=year, venue_id=venue_id,
                author_ids=tuple(teams.get(article_id, ())),
                references=tuple(references.get(article_id, ())),
                quality=quality))
        return dataset

    @_guarded
    def delete_dataset(self, name: str) -> None:
        """Remove a dataset and everything attached to it."""
        if not self.has_dataset(name):
            raise StorageError(f"no stored dataset named {name!r}")
        with self._conn:
            for table in ("rankings", "authorship", "citations",
                          "articles", "venues", "authors"):
                self._conn.execute(
                    f"DELETE FROM {table} WHERE dataset = ?", (name,))
            self._conn.execute("DELETE FROM datasets WHERE name = ?",
                               (name,))

    # ------------------------------------------------------------------
    # rankings

    @_guarded
    def save_ranking(self, dataset: str, method: str,
                     scores: Dict[int, float],
                     overwrite: bool = False) -> None:
        """Persist per-article ``scores`` of one ranking ``method``.

        Every scored id must exist in the stored dataset — a ranking of
        articles the store does not know would poison
        :meth:`top_articles` and downstream index construction.
        """
        if not self.has_dataset(dataset):
            raise StorageError(f"no stored dataset named {dataset!r}")
        known = {row[0] for row in self._conn.execute(
            "SELECT id FROM articles WHERE dataset = ?", (dataset,))}
        unknown = sorted(set(scores) - known)
        if unknown:
            preview = ", ".join(str(i) for i in unknown[:5])
            raise StorageError(
                f"ranking {method!r} scores {len(unknown)} article id(s) "
                f"not in dataset {dataset!r}: {preview}"
                + ("..." if len(unknown) > 5 else ""))
        existing = self._conn.execute(
            "SELECT 1 FROM rankings WHERE dataset = ? AND method = ? "
            "LIMIT 1", (dataset, method)).fetchone()
        if existing and not overwrite:
            raise StorageError(
                f"ranking {method!r} for {dataset!r} already stored")
        with self._conn:
            self._conn.execute(
                "DELETE FROM rankings WHERE dataset = ? AND method = ?",
                (dataset, method))
            self._conn.executemany(
                "INSERT INTO rankings VALUES(?, ?, ?, ?)",
                ((dataset, method, article_id, float(score))
                 for article_id, score in scores.items()))

    @_guarded
    def load_ranking(self, dataset: str, method: str) -> Dict[int, float]:
        """Load a stored ranking as ``{article_id: score}``."""
        rows = self._conn.execute(
            "SELECT article_id, score FROM rankings "
            "WHERE dataset = ? AND method = ?", (dataset, method)).fetchall()
        if not rows:
            raise StorageError(
                f"no ranking {method!r} stored for {dataset!r}")
        return {article_id: score for article_id, score in rows}

    @_guarded
    def list_rankings(self, dataset: str) -> List[str]:
        """Method names with stored rankings for ``dataset``."""
        rows = self._conn.execute(
            "SELECT DISTINCT method FROM rankings WHERE dataset = ? "
            "ORDER BY method", (dataset,)).fetchall()
        return [row[0] for row in rows]

    @_guarded
    def top_articles(self, dataset: str, method: str,
                     limit: int = 10) -> List[Tuple[int, float]]:
        """Highest-scored ``(article_id, score)`` pairs for a ranking."""
        rows = self._conn.execute(
            "SELECT article_id, score FROM rankings "
            "WHERE dataset = ? AND method = ? "
            "ORDER BY score DESC, article_id ASC LIMIT ?",
            (dataset, method, limit)).fetchall()
        if not rows:
            raise StorageError(
                f"no ranking {method!r} stored for {dataset!r}")
        return [(article_id, score) for article_id, score in rows]

    # ------------------------------------------------------------------
    # analytics helpers

    @_guarded
    def citation_counts(self, dataset: str,
                        limit: Optional[int] = None
                        ) -> List[Tuple[int, int]]:
        """``(article_id, citations)`` sorted by citations descending."""
        if not self.has_dataset(dataset):
            raise StorageError(f"no stored dataset named {dataset!r}")
        query = ("SELECT cited, COUNT(*) AS c FROM citations "
                 "WHERE dataset = ? GROUP BY cited ORDER BY c DESC, cited")
        if limit is not None:
            query += " LIMIT ?"
            rows = self._conn.execute(query, (dataset, limit)).fetchall()
        else:
            rows = self._conn.execute(query, (dataset,)).fetchall()
        return [(cited, count) for cited, count in rows]

    @_guarded
    def articles_per_year(self, dataset: str) -> Dict[int, int]:
        """Publication counts keyed by year."""
        if not self.has_dataset(dataset):
            raise StorageError(f"no stored dataset named {dataset!r}")
        rows = self._conn.execute(
            "SELECT year, COUNT(*) FROM articles WHERE dataset = ? "
            "GROUP BY year ORDER BY year", (dataset,)).fetchall()
        return {year: count for year, count in rows}
