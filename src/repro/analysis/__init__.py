"""Temporal analysis of citation dynamics.

Built on top of the ranking stack: per-article citation trajectories,
sleeping-beauty detection (Ke et al., 2015) and rising-star detection
from score trajectories across snapshots.
"""

from repro.analysis.temporal import (
    citation_history,
    rising_stars,
    score_trajectories,
    sleeping_beauty_coefficient,
)

__all__ = [
    "citation_history",
    "rising_stars",
    "score_trajectories",
    "sleeping_beauty_coefficient",
]
