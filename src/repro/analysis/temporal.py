"""Citation trajectories, sleeping beauties and rising stars.

Three classic temporal analyses of scholarly impact, implemented on the
repository's data model:

* :func:`citation_history` — per-year citation counts of each article.
* :func:`sleeping_beauty_coefficient` — Ke et al. (PNAS 2015): how far a
  citation trajectory sags *below* the line from publication to its
  peak year. High values = long-dormant work awakened late, precisely
  the articles static popularity misses and prestige keeps.
* :func:`rising_stars` — articles whose ranking score grows fastest
  across consecutive snapshots (the dynamic engine's natural readout).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, DatasetError
from repro.data.schema import ScholarlyDataset


def citation_history(dataset: ScholarlyDataset, article_id: int
                     ) -> Dict[int, int]:
    """Citations received per citing-publication year.

    Years with zero citations inside the article's lifetime are included
    (so trajectories are dense), from the publication year through the
    dataset's newest year.
    """
    if article_id not in dataset.articles:
        raise DatasetError(f"unknown article {article_id}")
    start = dataset.articles[article_id].year
    _, stop = dataset.year_range()
    history = {year: 0 for year in range(start, stop + 1)}
    for article in dataset.articles.values():
        if article_id in article.references:
            year = max(article.year, start)
            history[year] = history.get(year, 0) + 1
    return history


def sleeping_beauty_coefficient(history: Dict[int, int]) -> float:
    """Ke et al.'s beauty coefficient ``B`` of a citation trajectory.

    With ``c_t`` citations in year ``t`` after publication (t=0) and the
    peak at ``t_m``:  ``B = sum_{t=0..t_m} ((l_t - c_t) / max(1, c_t))``
    where ``l_t`` is the straight line from ``c_0`` to ``c_{t_m}``.
    ``B = 0`` for trajectories that never sag below the line (or peak
    immediately); large ``B`` means deep, long dormancy before the peak.
    """
    if not history:
        raise ConfigError("empty citation history")
    years = sorted(history)
    counts = np.asarray([history[year] for year in years],
                        dtype=np.float64)
    peak = int(np.argmax(counts))
    if peak == 0:
        return 0.0
    c0, cm = counts[0], counts[peak]
    t = np.arange(peak + 1, dtype=np.float64)
    line = c0 + (cm - c0) * t / peak
    sag = (line - counts[:peak + 1]) / np.maximum(counts[:peak + 1], 1.0)
    return float(np.sum(sag))


def score_trajectories(snapshots: Sequence[Dict[int, float]]
                       ) -> Dict[int, List[float]]:
    """Align per-snapshot score maps into per-article trajectories.

    Articles absent from a snapshot (not yet published) get ``nan`` for
    that snapshot, so trajectories stay index-aligned with the snapshot
    sequence.
    """
    if not snapshots:
        raise ConfigError("need at least one snapshot")
    all_ids = set()
    for snapshot in snapshots:
        all_ids.update(snapshot)
    trajectories: Dict[int, List[float]] = {}
    for article_id in sorted(all_ids):
        trajectories[article_id] = [
            float(snapshot[article_id]) if article_id in snapshot
            else float("nan")
            for snapshot in snapshots]
    return trajectories


def rising_stars(snapshots: Sequence[Dict[int, float]], k: int = 10,
                 min_presence: int = 2) -> List[Tuple[int, float]]:
    """Articles with the largest *relative* score growth.

    Growth is measured between the first and last snapshot an article
    appears in (requiring at least ``min_presence`` appearances), as
    ``(last - first) / first``. Returns the top ``k`` as
    ``(article_id, growth)``.
    """
    if k <= 0:
        raise ConfigError("k must be positive")
    if min_presence < 2:
        raise ConfigError("min_presence must be at least 2")
    trajectories = score_trajectories(snapshots)
    growth: List[Tuple[int, float]] = []
    for article_id, values in trajectories.items():
        present = [v for v in values if not np.isnan(v)]
        if len(present) < min_presence or present[0] <= 0:
            continue
        growth.append((article_id,
                       (present[-1] - present[0]) / present[0]))
    growth.sort(key=lambda item: (-item[1], item[0]))
    return growth[:k]
