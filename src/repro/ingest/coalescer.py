"""The backpressure-aware coalescer: parsed records -> UpdateBatches.

Applying one :class:`~repro.engine.updates.UpdateBatch` per feed record
would waste the incremental engine (every apply pays a full blend
recompute); buffering the whole feed would be unbounded memory. The
coalescer is the bounded buffer in between: parsed items queue in
arrival order, and the pipeline cuts a contiguous prefix into one batch
whenever enough has accumulated — batch size scales with the queue
depth (the engine's lag behind the feed), so a backlog drains in a few
big batches instead of many small ones.

Backpressure is a typed signal, not an exception:

* :data:`Backpressure.OK` — keep pulling from the source;
* :data:`Backpressure.PAUSE` — the high watermark is crossed; stop
  pulling and cut a batch first;
* :data:`Backpressure.SHED` — the queue is at capacity; *nothing* may
  be offered until a cut drains it (offers at capacity raise
  :class:`repro.errors.IngestError` — with a pull-based pipeline that
  is a sequencing bug, never a reason to drop a record).
"""

from __future__ import annotations

import enum
from typing import Deque, Dict, List, Optional, Set, Tuple

from collections import deque

from repro.errors import ConfigError, IngestError
from repro.data.schema import Article
from repro.engine.updates import BatchProvenance, UpdateBatch
from repro.ingest.source import ParsedItem


class Backpressure(enum.Enum):
    """What the pipeline should do before offering the next record."""

    OK = "ok"
    PAUSE = "pause"
    SHED = "shed"


class Coalescer:
    """Bounded FIFO of parsed items, cut into right-sized batches."""

    def __init__(self, max_queue: int = 512, min_batch: int = 16,
                 max_batch: int = 128,
                 high_watermark: float = 0.75) -> None:
        if max_queue < 1:
            raise ConfigError(f"max_queue must be >= 1, got {max_queue}")
        if not 1 <= min_batch <= max_batch <= max_queue:
            raise ConfigError(
                f"need 1 <= min_batch <= max_batch <= max_queue, got "
                f"{min_batch}/{max_batch}/{max_queue}")
        if not 0.0 < high_watermark <= 1.0:
            raise ConfigError(
                f"high_watermark must be in (0, 1], got {high_watermark}")
        self.max_queue = max_queue
        self.min_batch = min_batch
        self.max_batch = max_batch
        self.high_watermark = high_watermark
        self.peak = 0
        self._items: Deque[Tuple[ParsedItem, float, float]] = deque()
        # Admission-time lookups: articles still queued (id -> item) and
        # citation pairs still queued.
        self._queued_articles: Dict[int, ParsedItem] = {}
        self._queued_pairs: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # state the pipeline reads

    def __len__(self) -> int:
        return len(self._items)

    @property
    def oldest_offset(self) -> Optional[int]:
        """Journal offset of the oldest queued item (commit barrier)."""
        return self._items[0][0].offset if self._items else None

    def pressure(self) -> Backpressure:
        depth = len(self._items)
        if depth >= self.max_queue:
            return Backpressure.SHED
        if depth >= self.high_watermark * self.max_queue:
            return Backpressure.PAUSE
        return Backpressure.OK

    def queued_article(self, article_id: int) -> Optional[Article]:
        item = self._queued_articles.get(article_id)
        return item.article if item is not None else None

    def queued_fingerprint(self, article_id: int) -> Optional[int]:
        item = self._queued_articles.get(article_id)
        return item.fingerprint if item is not None else None

    def has_pair(self, citation: Tuple[int, int]) -> bool:
        return citation in self._queued_pairs

    def ready(self) -> bool:
        """Enough queued for a batch of at least ``min_batch``?"""
        return len(self._items) >= self.min_batch

    def batch_size(self) -> int:
        """How many items the next cut should take.

        The engine's lag *is* the queue depth, so the cut grows with
        it: at least ``min_batch``, at most ``max_batch``, everything
        queued when in between. A deep backlog therefore drains in
        ``max_batch``-sized strides — latency degrades smoothly under
        pressure instead of the queue growing without bound.
        """
        return min(self.max_batch, max(self.min_batch,
                                       len(self._items)))

    # ------------------------------------------------------------------
    # mutation

    def offer(self, item: ParsedItem, arrived_at: float = 0.0,
              arrived_wall: float = 0.0) -> None:
        """Enqueue one admitted item (pipeline has already deduped it).

        ``arrived_at`` is the pull-time *record clock* (deterministic,
        used for arrival-to-visible freshness in records);
        ``arrived_wall`` is the pull-time wall clock, stamped onto the
        cut batch's :class:`~repro.engine.updates.BatchProvenance` so
        downstream layers can measure arrival-to-served seconds.
        """
        if len(self._items) >= self.max_queue:
            # The rejected offer is real demand at the bound: register
            # the depth it found so the peak gauge reflects saturation
            # even though nothing was enqueued — otherwise a producer
            # that only ever collides with a full queue leaves no trace
            # in the peak accounting.
            self.peak = max(self.peak, len(self._items))
            raise IngestError(
                f"coalescer queue is full ({self.max_queue} items); "
                f"cut a batch before offering more")
        self._items.append((item, arrived_at, arrived_wall))
        self.peak = max(self.peak, len(self._items))
        if item.kind == "article":
            self._queued_articles[item.article.id] = item
        else:
            self._queued_pairs.add(item.citation)

    def cut(self, size: Optional[int] = None
            ) -> Tuple[UpdateBatch, int, List[float]]:
        """Drain the oldest ``size`` items into one batch.

        Returns ``(batch, last_offset, arrival_times)`` where
        ``last_offset`` is the highest journal offset the batch covers
        (the commit cursor may advance past it once the batch is
        durably applied). Cutting a *prefix* is what keeps commit
        coverage contiguous — items never jump the queue.

        The batch is stamped with a
        :class:`~repro.engine.updates.BatchProvenance` covering the
        journal offset range it drains and the per-record wall-clock
        arrival stamps, so every downstream layer can tie its work back
        to the feed without extra side-channels.
        """
        if not self._items:
            raise IngestError("cannot cut a batch from an empty queue")
        if size is None:
            size = self.batch_size()
        size = min(size, len(self._items))
        articles: List[Article] = []
        citations: List[Tuple[int, int]] = []
        arrivals: List[float] = []
        walls: List[float] = []
        first_offset = self._items[0][0].offset
        last_offset = -1
        for _ in range(size):
            item, arrived_at, arrived_wall = self._items.popleft()
            arrivals.append(arrived_at)
            walls.append(arrived_wall)
            last_offset = item.offset
            if item.kind == "article":
                articles.append(item.article)
                del self._queued_articles[item.article.id]
            else:
                citations.append(item.citation)
                self._queued_pairs.discard(item.citation)
        provenance = BatchProvenance(first_offset=first_offset,
                                     last_offset=last_offset,
                                     arrivals=tuple(walls))
        return (UpdateBatch(articles=tuple(articles),
                            citations=tuple(citations),
                            provenance=provenance),
                last_offset, arrivals)
