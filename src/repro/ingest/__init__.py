"""Streaming ingestion: a raw record feed -> right-sized UpdateBatches.

The serving layer (:mod:`repro.serve`) assumes batches arrive from
somewhere; this package is the somewhere. It turns a continuous,
unreliable feed of raw article/citation records into validated
:class:`~repro.engine.updates.UpdateBatch` objects applied to a
:class:`~repro.engine.live.LiveRanker`, with the delivery contract a
production index needs:

* **at-least-once** — every record is journaled
  (:class:`~repro.ingest.journal.IngestJournal`, CRC-stamped JSONL
  segments with an atomically committed offset cursor) before it is
  processed, so a crashed worker replays what it had not finished;
* **exactly-once application** — the authoritative corpus check plus a
  bounded :class:`~repro.ingest.dedup.Deduplicator` make replays and
  duplicate storms idempotent;
* **bounded memory** — the
  :class:`~repro.ingest.coalescer.Coalescer`'s queue is capped and its
  typed backpressure signals (pause/shed) throttle the pull loop, with
  batch size scaling with engine lag so backlogs drain;
* **verified freshness under chaos** —
  :func:`~repro.ingest.sim.run_ingest_sim` (the ``repro ingest-sim``
  command) injects stalls, transient errors, parser crashes, poison
  records, duplicate storms, a mid-batch worker kill, and a torn
  journal tail, then proves zero loss, zero duplicate application, and
  a final ranking bit-identical to the fault-free single-batch run;
* **crash-isolated horizontal scale** —
  :class:`~repro.ingest.partition.PartitionedIngestPipeline` runs K
  partition workers (``partition_of`` consistent with the serving
  tier's ``shard_of``), each with its own journal directory and
  committed-offset cursor, merged back through a deterministic
  :class:`~repro.ingest.partition.FanIn` so the result stays
  bit-identical to the single-worker pipeline; sealed, cursor-covered
  journal segments are reclaimed by
  :meth:`~repro.ingest.journal.IngestJournal.compact`
  (``repro ingest-compact``).

See ``docs/OPERATIONS.md`` ("Streaming ingestion" and "Partitioned
ingestion") for the operational picture: journal layout, offset
semantics, backpressure knobs, archival retention, and quarantine
triage.
"""

from repro.ingest.coalescer import Backpressure, Coalescer
from repro.ingest.dedup import Deduplicator
from repro.ingest.journal import (
    CompactionReport,
    IngestJournal,
    JournalRecord,
)
from repro.ingest.partition import (
    FanIn,
    PartitionedIngestPipeline,
    PartitionedIngestReport,
    PartitionStats,
    PartitionWorker,
    partition_of,
    partition_route,
)
from repro.ingest.pipeline import (
    AdmissionTiers,
    IngestPipeline,
    IngestReport,
)
from repro.ingest.sim import (
    IngestSimReport,
    fault_free_reference,
    run_ingest_sim,
)
from repro.ingest.source import (
    JsonlSource,
    ParsedItem,
    SyntheticSource,
    parse_record,
    route_key,
)

__all__ = [
    "AdmissionTiers",
    "Backpressure",
    "Coalescer",
    "CompactionReport",
    "Deduplicator",
    "FanIn",
    "IngestJournal",
    "IngestPipeline",
    "IngestReport",
    "IngestSimReport",
    "JournalRecord",
    "JsonlSource",
    "ParsedItem",
    "PartitionStats",
    "PartitionWorker",
    "PartitionedIngestPipeline",
    "PartitionedIngestReport",
    "SyntheticSource",
    "fault_free_reference",
    "parse_record",
    "partition_of",
    "partition_route",
    "route_key",
    "run_ingest_sim",
]
