"""Bounded idempotence filter for the ingest pipeline.

At-least-once delivery means duplicates *will* arrive: a replayed
journal tail after a crash, a duplicate storm from a misbehaving feed,
the same record pulled twice across a resume. The pipeline's first line
of defence is authoritative — an article id already in the engine's
dataset is skipped no matter what — but that check cannot distinguish
"same record again" from "different record, colliding id", and it
cannot see records still queued. The :class:`Deduplicator` covers that
window: a bounded, LRU-evicting map of recently seen keys to content
fingerprints.

Bounded is the point. The seen-set must not grow with the stream (the
stream is infinite); eviction is safe because anything evicted has long
since been applied — the authoritative dataset check catches its
duplicates from then on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Tuple

from repro.errors import ConfigError

#: Verdicts of :meth:`Deduplicator.check`.
NEW = "new"
DUPLICATE = "duplicate"
CONFLICT = "conflict"


class Deduplicator:
    """LRU map of seen keys -> content fingerprints, bounded size."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ConfigError(
                f"dedup capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.evictions = 0
        self._seen: "OrderedDict[Hashable, int]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._seen)

    def check(self, key: Hashable, fingerprint: int) -> str:
        """Classify one arrival without admitting it.

        ``"new"`` — never seen (or evicted long ago); ``"duplicate"``
        — same key, same content (a re-delivery: skip silently);
        ``"conflict"`` — same key, *different* content (two distinct
        records claiming one identity: quarantine, first write wins).
        A hit refreshes the key's LRU position.
        """
        known = self._seen.get(key)
        if known is None:
            return NEW
        self._seen.move_to_end(key)
        return DUPLICATE if known == fingerprint else CONFLICT

    def admit(self, key: Hashable, fingerprint: int) -> None:
        """Remember one admitted record, evicting the oldest if full."""
        self._seen[key] = fingerprint
        self._seen.move_to_end(key)
        while len(self._seen) > self.capacity:
            self._seen.popitem(last=False)
            self.evictions += 1

    def snapshot(self) -> Tuple[int, int]:
        """``(entries, evictions)`` for reports and metrics."""
        return len(self._seen), self.evictions
