"""The ingest journal: an append-only, CRC-stamped record log.

At-least-once delivery needs a durable record of what the pipeline has
accepted: a worker that dies mid-batch must be able to replay exactly
the records it had pulled but not yet committed. The journal is the
standard write-ahead shape, specialised to JSONL so segments stay
greppable during an incident:

* **Segments** — ``segment-<seq>.jsonl`` files of at most
  ``segment_records`` records each. The active segment is written as
  ``segment-<seq>.open`` and sealed with an atomic ``os.replace`` when
  full, so rotation can never leave a half-renamed file; a crash leaves
  at most one ``.open`` tail segment.
* **Records** — one JSON object per line:
  ``{"o": offset, "c": crc32(payload), "r": payload}`` plus an optional
  ``"s": seq`` arrival-sequence stamp (used by the partitioned pipeline
  to fan records back in canonically). The CRC is computed over the
  canonical (sorted-keys, compact) JSON encoding of the payload, so a
  torn or bit-flipped line is detected on replay, not silently applied.
* **Cursor** — ``CURSOR.json``, rewritten atomically, holding the
  *committed offset*: the number of records durably reflected in the
  downstream engine's checkpoint. Replay starts there.
* **Archive** — ``ARCHIVE.json`` plus an ``archive/`` tier.
  :meth:`IngestJournal.compact` moves (or deletes) sealed segments that
  the committed cursor fully covers, so a long-running journal does not
  grow without bound. The manifest is written *before* the files move,
  and :class:`IngestJournal` finishes interrupted moves on open, so a
  crash mid-compaction never loses a segment. Replay from at or past
  ``archived_through`` never touches the archive; replay from below it
  reads archived segments when they still exist and raises
  :class:`~repro.errors.StorageError` when retention deleted them.

Recovery semantics: on open, the active (``.open``) segment's tail is
scanned and any torn suffix — a half-written last line from a crash or
an injected truncation — is dropped and accounted. Torn lines whose
offsets the committed cursor already covers are *not* counted in
:attr:`IngestJournal.torn_records_dropped`: those records are durably
inside a downstream checkpoint (the cursor is only ever rewritten after
a sync), so the tear lost bytes, not records. They are tracked
separately as :attr:`IngestJournal.torn_committed_dropped` — without
the split, a crash in the window between the cursor rewrite and a tail
truncation double-counts the same record on every resume cycle. Sealed
segments are never repaired: a bad line inside one is corruption, not a
torn write, and replay raises :class:`repro.errors.StorageError`
(tamper-evident, same contract as checkpoints).
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import StorageError

PathLike = Union[str, Path]

CURSOR_FILE = "CURSOR.json"
ARCHIVE_FILE = "ARCHIVE.json"
ARCHIVE_DIR = "archive"
_SEALED_PATTERN = re.compile(r"^segment-(\d{8})\.jsonl$")
_OPEN_PATTERN = re.compile(r"^segment-(\d{8})\.open$")

#: Retention policies :meth:`IngestJournal.compact` understands.
RETENTION_ARCHIVE = "archive"
RETENTION_DELETE = "delete"


def payload_crc(payload: Dict[str, object]) -> int:
    """CRC32 of the canonical JSON encoding of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


@dataclass(frozen=True)
class JournalRecord:
    """One journaled record: its offset, payload, and arrival seq.

    ``seq`` is the global arrival sequence the record carried when it
    was appended (``None`` for single-worker journals, which never need
    one — there, offset *is* the arrival order).
    """

    offset: int
    payload: Dict[str, object]
    seq: Optional[int] = None


@dataclass
class CompactionReport:
    """What one :meth:`IngestJournal.compact` call reclaimed."""

    segments_archived: int = 0
    segments_deleted: int = 0
    bytes_reclaimed: int = 0
    archived_through: int = 0

    def as_metrics(self) -> Dict[str, object]:
        return {
            "segments_archived": self.segments_archived,
            "segments_deleted": self.segments_deleted,
            "bytes_reclaimed": self.bytes_reclaimed,
            "archived_through": self.archived_through,
        }

    def render(self) -> str:
        return (f"archived {self.segments_archived} segment(s), "
                f"deleted {self.segments_deleted}, reclaimed "
                f"{self.bytes_reclaimed} bytes "
                f"(cursor-covered through offset "
                f"{self.archived_through})")


def _decode_line(line: str) -> Optional[JournalRecord]:
    """Parse and CRC-check one journal line; ``None`` when torn/bad."""
    try:
        entry = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(entry, dict):
        return None
    offset = entry.get("o")
    crc = entry.get("c")
    payload = entry.get("r")
    seq = entry.get("s")
    if not isinstance(offset, int) or not isinstance(crc, int) \
            or not isinstance(payload, dict):
        return None
    if seq is not None and not isinstance(seq, int):
        return None
    if payload_crc(payload) != crc:
        return None
    return JournalRecord(offset=offset, payload=payload, seq=seq)


class IngestJournal:
    """Append-only JSONL journal with CRC records and a commit cursor."""

    def __init__(self, directory: PathLike,
                 segment_records: int = 1024) -> None:
        """Open (or create) the journal under ``directory``.

        Existing segments are picked up; a torn tail on the active
        segment is dropped (see module docstring). ``segment_records``
        bounds records per segment — rotation keeps individual files
        small enough to triage and lets old, fully committed segments
        be archived independently.
        """
        if segment_records < 1:
            raise StorageError(
                f"segment_records must be >= 1, got {segment_records}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_records = segment_records
        self.torn_records_dropped = 0
        self.torn_committed_dropped = 0
        self.last_seq: Optional[int] = None
        self._handle = None

        # The cursor loads *before* tail recovery: recovery needs to
        # know which offsets are already durable downstream so a torn
        # committed line is bytes lost, not a record lost.
        self.cursor_extra: Dict[str, object] = {}
        self._committed = self._load_cursor()
        self._manifest = self._load_manifest()
        self._repair_pending_archival()

        sealed = self._sealed_segments()
        open_segments = sorted(
            (path for path in self.directory.iterdir()
             if _OPEN_PATTERN.match(path.name)),
            key=lambda p: p.name)
        if len(open_segments) > 1:
            raise StorageError(
                f"journal {self.directory} has {len(open_segments)} "
                f".open segments; at most one active segment can exist")

        last_offset = self.archived_through - 1
        if self._manifest.get("last_seq") is not None:
            self.last_seq = int(self._manifest["last_seq"])
        for path in sealed:
            last, seq = self._last_offset_sealed(path)
            if last is not None:
                last_offset = max(last_offset, last)
            if seq is not None:
                self.last_seq = seq
        if open_segments:
            active = open_segments[0]
            if sealed and active.name <= sealed[-1].name.replace(
                    ".jsonl", ".open"):
                raise StorageError(
                    f"active segment {active.name} is older than "
                    f"sealed {sealed[-1].name}")
            kept, dropped = self._recover_tail(active,
                                               base_offset=last_offset
                                               + 1)
            self._active_path = active
            self._active_count = len(kept)
            self._active_seq = int(_OPEN_PATTERN.match(
                active.name).group(1))
            if kept:
                last_offset = max(last_offset, kept[-1].offset)
                if kept[-1].seq is not None:
                    self.last_seq = kept[-1].seq
        else:
            next_seq = int(self._manifest.get("next_segment_seq", 0))
            if sealed:
                next_seq = max(next_seq, int(_SEALED_PATTERN.match(
                    sealed[-1].name).group(1)) + 1)
            self._active_seq = next_seq
            self._active_path = self.directory / \
                f"segment-{self._active_seq:08d}.open"
            self._active_count = 0
        self.next_offset = last_offset + 1

    # ------------------------------------------------------------------
    # write side

    def append(self, payload: Dict[str, object],
               seq: Optional[int] = None) -> int:
        """Append one record; returns the offset it was assigned.

        ``seq`` optionally stamps the record's global arrival sequence
        (the partitioned pipeline's fan-in key); it rides outside the
        CRC'd payload, so stamping never changes content fingerprints.
        """
        offset = self.next_offset
        entry = {"o": offset, "c": payload_crc(payload), "r": payload}
        if seq is not None:
            entry["s"] = seq
        line = json.dumps(entry, separators=(",", ":")) + "\n"
        if self._handle is None:
            self._handle = open(self._active_path, "a",
                                encoding="utf-8")
        self._handle.write(line)
        self.next_offset = offset + 1
        self._active_count += 1
        if seq is not None:
            self.last_seq = seq
        if self._active_count >= self.segment_records:
            self._rotate()
        return offset

    def flush(self, sync: bool = False) -> None:
        """Push buffered appends to the OS (and to disk with ``sync``)."""
        if self._handle is not None:
            self._handle.flush()
            if sync:
                os.fsync(self._handle.fileno())

    def commit(self, committed: int,
               extra: Optional[Dict[str, object]] = None) -> None:
        """Persist the committed offset (records durably applied).

        ``committed`` is exclusive: ``commit(10)`` means offsets
        ``0..9`` are reflected in durable downstream state and replay
        may start at 10. Written atomically (tmp + rename); never moves
        backwards. ``extra`` rides along in the cursor file — the
        pipeline stores the engine batch count and its incarnation
        there so resume can tell whether the checkpoint it recovered is
        at least as new as the cursor.
        """
        if committed < 0:
            raise StorageError(
                f"committed offset must be >= 0, got {committed}")
        if committed < self._committed:
            raise StorageError(
                f"commit cursor cannot move backwards "
                f"({self._committed} -> {committed})")
        self.flush(sync=True)
        payload = {"format_version": 1, "committed": committed,
                   "extra": dict(extra) if extra else {}}
        staging = self.directory / f".{CURSOR_FILE}.tmp"
        staging.write_text(json.dumps(payload, indent=2),
                           encoding="utf-8")
        os.replace(staging, self.directory / CURSOR_FILE)
        self._committed = committed
        self.cursor_extra = dict(extra) if extra else {}

    @property
    def committed(self) -> int:
        """Offset replay starts from (exclusive end of committed work)."""
        return self._committed

    @property
    def archived_through(self) -> int:
        """Exclusive end of the offset range reclaimed by compaction."""
        return int(self._manifest.get("archived_through", 0))

    def close(self) -> None:
        """Flush and release the active segment (it stays appendable)."""
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "IngestJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # archival / compaction

    def compact(self, retention: str = RETENTION_ARCHIVE
                ) -> CompactionReport:
        """Reclaim sealed segments fully covered by the commit cursor.

        A segment qualifies when its last offset is below ``committed``
        — every record in it is durably inside a downstream checkpoint,
        so no replay (which starts at the cursor) will ever need it.
        The active ``.open`` segment is never touched, so compaction is
        safe to run concurrently with an in-flight rotation: at worst a
        segment sealed after the scan waits for the next pass.

        ``retention="archive"`` moves segments into ``archive/`` (still
        readable for a from-scratch replay); ``"delete"`` removes them
        outright (cheapest, but a replay from offset 0 — the lost-
        checkpoint fallback — becomes impossible). Either way the
        manifest records what happened *before* the files move, so a
        crash mid-compaction is repaired on the next open.
        """
        if retention not in (RETENTION_ARCHIVE, RETENTION_DELETE):
            raise StorageError(
                f"retention must be {RETENTION_ARCHIVE!r} or "
                f"{RETENTION_DELETE!r}, got {retention!r}")
        report = CompactionReport(
            archived_through=self.archived_through)
        covered: List[Dict[str, object]] = []
        for path in self._sealed_segments():
            first, last, records, last_seq = self._segment_span(path)
            if last is None or last >= self._committed:
                # Segments are offset-ordered; the first uncovered one
                # ends the scan.
                break
            covered.append({
                "name": path.name, "first": first, "last": last,
                "records": records, "bytes": path.stat().st_size,
                "action": retention,
                "last_seq": last_seq,
            })
        if not covered:
            report.archived_through = self.archived_through
            return report

        manifest = dict(self._manifest)
        segments = list(manifest.get("segments", []))
        segments.extend(covered)
        manifest["format_version"] = 1
        manifest["archived_through"] = int(covered[-1]["last"]) + 1
        manifest["next_segment_seq"] = max(
            int(manifest.get("next_segment_seq", 0)),
            max(int(_SEALED_PATTERN.match(str(entry["name"]))
                    .group(1)) for entry in covered) + 1)
        if covered[-1]["last_seq"] is not None:
            manifest["last_seq"] = max(
                int(manifest.get("last_seq") or -1),
                int(covered[-1]["last_seq"]))
        manifest["segments"] = segments
        self._write_manifest(manifest)
        self._manifest = manifest
        self._repair_pending_archival()

        for entry in covered:
            if entry["action"] == RETENTION_ARCHIVE:
                report.segments_archived += 1
            else:
                report.segments_deleted += 1
            report.bytes_reclaimed += int(entry["bytes"])
        report.archived_through = self.archived_through
        return report

    def _write_manifest(self, manifest: Dict[str, object]) -> None:
        staging = self.directory / f".{ARCHIVE_FILE}.tmp"
        staging.write_text(json.dumps(manifest, indent=2),
                           encoding="utf-8")
        os.replace(staging, self.directory / ARCHIVE_FILE)

    def _repair_pending_archival(self) -> None:
        """Finish moves/deletes the manifest promised (idempotent).

        The manifest is intent, written before any file moves; a crash
        between the two leaves segments listed there but still in the
        journal directory. Completing the move here makes compaction
        crash-safe without a WAL of its own.
        """
        for entry in self._manifest.get("segments", []):
            src = self.directory / str(entry["name"])
            if not src.exists():
                continue
            if entry.get("action") == RETENTION_DELETE:
                src.unlink()
            else:
                archive = self.directory / ARCHIVE_DIR
                archive.mkdir(exist_ok=True)
                os.replace(src, archive / str(entry["name"]))

    def _load_manifest(self) -> Dict[str, object]:
        path = self.directory / ARCHIVE_FILE
        if not path.exists():
            return {}
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(manifest, dict):
                raise ValueError("manifest must be a JSON object")
            int(manifest.get("archived_through", 0))
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            raise StorageError(
                f"journal archive manifest {path} is unreadable "
                f"({exc})") from exc
        return manifest

    # ------------------------------------------------------------------
    # read side

    def replay(self, start: Optional[int] = None
               ) -> Iterator[JournalRecord]:
        """Yield journaled records with ``offset >= start`` in order.

        ``start`` defaults to the committed offset. CRCs are verified
        as records stream; a bad line in a *sealed* segment raises
        :class:`StorageError` (corruption is never skipped silently),
        while a torn tail on the active segment ends the replay — those
        bytes were never acknowledged. A ``start`` below
        ``archived_through`` reads the archive tier when the files are
        still there and raises :class:`StorageError` when retention
        deleted them; replay at or past the boundary never opens the
        archive at all.
        """
        self.flush()
        if start is None:
            start = self._committed
        if start < self.archived_through:
            yield from self._replay_archived(start)
        for path in self._sealed_segments():
            for number, line in self._lines(path):
                record = _decode_line(line)
                if record is None:
                    raise StorageError(
                        f"corrupt record in sealed journal segment "
                        f"{path.name}:{number}")
                if record.offset >= start:
                    yield record
        if self._active_path.exists():
            for number, line in self._lines(self._active_path):
                record = _decode_line(line)
                if record is None:
                    break  # torn tail: unacknowledged, not corruption
                if record.offset >= start:
                    yield record

    def _replay_archived(self, start: int) -> Iterator[JournalRecord]:
        archive = self.directory / ARCHIVE_DIR
        entries = sorted(self._manifest.get("segments", []),
                         key=lambda e: str(e["name"]))
        for entry in entries:
            last = entry.get("last")
            if isinstance(last, int) and last < start:
                continue
            path = archive / str(entry["name"])
            if not path.exists():
                raise StorageError(
                    f"replay from offset {start} needs archived "
                    f"segment {entry['name']}, but it is gone "
                    f"(retention={entry.get('action')!r}); earliest "
                    f"replayable offset is {self.archived_through}")
            for number, line in self._lines(path):
                record = _decode_line(line)
                if record is None:
                    raise StorageError(
                        f"corrupt record in archived journal segment "
                        f"{path.name}:{number}")
                if record.offset >= start:
                    yield record

    # ------------------------------------------------------------------
    # internals

    def _sealed_segments(self) -> List[Path]:
        return sorted(path for path in self.directory.iterdir()
                      if _SEALED_PATTERN.match(path.name))

    @staticmethod
    def _lines(path: Path) -> Iterator[Tuple[int, str]]:
        with open(path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                if line.strip():
                    yield number, line

    def _last_offset_sealed(self, path: Path
                            ) -> Tuple[Optional[int], Optional[int]]:
        last, seq = None, None
        for number, line in self._lines(path):
            record = _decode_line(line)
            if record is None:
                raise StorageError(
                    f"corrupt record in sealed journal segment "
                    f"{path.name}:{number}")
            last = record.offset
            if record.seq is not None:
                seq = record.seq
        return last, seq

    def _segment_span(self, path: Path) -> Tuple[
            Optional[int], Optional[int], int, Optional[int]]:
        """``(first, last, records, last_seq)`` of one sealed segment,
        CRC-verified — compaction refuses to archive corruption."""
        first, last, seq = None, None, None
        records = 0
        for number, line in self._lines(path):
            record = _decode_line(line)
            if record is None:
                raise StorageError(
                    f"corrupt record in sealed journal segment "
                    f"{path.name}:{number}")
            if first is None:
                first = record.offset
            last = record.offset
            if record.seq is not None:
                seq = record.seq
            records += 1
        return first, last, records, seq

    def _recover_tail(self, path: Path, base_offset: int
                      ) -> Tuple[List[JournalRecord], int]:
        """Drop any torn suffix of the active segment, keeping the
        valid prefix in place; returns (kept records, dropped count).

        Torn lines at offsets the cursor already covers are accounted
        in ``torn_committed_dropped``, not ``torn_records_dropped``:
        the cursor is only rewritten after a sync, so those records
        live on inside a downstream checkpoint — counting them as
        dropped would double-count the same record on every
        crash-resume cycle that re-tears the tail.
        """
        kept: List[JournalRecord] = []
        good_bytes = 0
        dropped = 0
        with open(path, "rb") as handle:
            for raw in handle:
                record = _decode_line(raw.decode("utf-8",
                                                 errors="replace"))
                if record is None or not raw.endswith(b"\n"):
                    dropped += 1
                    # Everything after the first torn line is past the
                    # tear: count it and stop trusting the file.
                    for _ in handle:
                        dropped += 1
                    break
                kept.append(record)
                good_bytes += len(raw)
        if dropped:
            with open(path, "rb+") as handle:
                handle.truncate(good_bytes)
                os.fsync(handle.fileno())
        # Offsets are assigned sequentially, so the torn suffix spans
        # first_torn .. first_torn + dropped - 1.
        first_torn = kept[-1].offset + 1 if kept else base_offset
        already_safe = max(0, min(dropped,
                                  self._committed - first_torn))
        self.torn_committed_dropped += already_safe
        self.torn_records_dropped += dropped - already_safe
        return kept, dropped

    def _rotate(self) -> None:
        """Seal the full active segment and start the next (atomic)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
        sealed = self.directory / f"segment-{self._active_seq:08d}.jsonl"
        os.replace(self._active_path, sealed)
        self._active_seq += 1
        self._active_path = self.directory / \
            f"segment-{self._active_seq:08d}.open"
        self._active_count = 0

    def _load_cursor(self) -> int:
        path = self.directory / CURSOR_FILE
        if not path.exists():
            return 0
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            committed = int(payload["committed"])
            extra = payload.get("extra", {})
            self.cursor_extra = extra if isinstance(extra, dict) else {}
        except (json.JSONDecodeError, KeyError, TypeError,
                ValueError) as exc:
            raise StorageError(
                f"journal cursor {path} is unreadable ({exc})") from exc
        if committed < 0:
            raise StorageError(
                f"journal cursor {path} holds negative offset "
                f"{committed}")
        return committed
