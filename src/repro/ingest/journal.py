"""The ingest journal: an append-only, CRC-stamped record log.

At-least-once delivery needs a durable record of what the pipeline has
accepted: a worker that dies mid-batch must be able to replay exactly
the records it had pulled but not yet committed. The journal is the
standard write-ahead shape, specialised to JSONL so segments stay
greppable during an incident:

* **Segments** — ``segment-<seq>.jsonl`` files of at most
  ``segment_records`` records each. The active segment is written as
  ``segment-<seq>.open`` and sealed with an atomic ``os.replace`` when
  full, so rotation can never leave a half-renamed file; a crash leaves
  at most one ``.open`` tail segment.
* **Records** — one JSON object per line:
  ``{"o": offset, "c": crc32(payload), "r": payload}``. The CRC is
  computed over the canonical (sorted-keys, compact) JSON encoding of
  the payload, so a torn or bit-flipped line is detected on replay, not
  silently applied.
* **Cursor** — ``CURSOR.json``, rewritten atomically, holding the
  *committed offset*: the number of records durably reflected in the
  downstream engine's checkpoint. Replay starts there.

Recovery semantics: on open, the active (``.open``) segment's tail is
scanned and any torn suffix — a half-written last line from a crash or
an injected truncation — is dropped and accounted in
:attr:`IngestJournal.torn_records_dropped`. Sealed segments are never
repaired: a bad line inside one is corruption, not a torn write, and
replay raises :class:`repro.errors.StorageError` (tamper-evident, same
contract as checkpoints).
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import StorageError

PathLike = Union[str, Path]

CURSOR_FILE = "CURSOR.json"
_SEALED_PATTERN = re.compile(r"^segment-(\d{8})\.jsonl$")
_OPEN_PATTERN = re.compile(r"^segment-(\d{8})\.open$")


def payload_crc(payload: Dict[str, object]) -> int:
    """CRC32 of the canonical JSON encoding of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


@dataclass(frozen=True)
class JournalRecord:
    """One journaled record: its global offset and the raw payload."""

    offset: int
    payload: Dict[str, object]


def _decode_line(line: str) -> Optional[JournalRecord]:
    """Parse and CRC-check one journal line; ``None`` when torn/bad."""
    try:
        entry = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(entry, dict):
        return None
    offset = entry.get("o")
    crc = entry.get("c")
    payload = entry.get("r")
    if not isinstance(offset, int) or not isinstance(crc, int) \
            or not isinstance(payload, dict):
        return None
    if payload_crc(payload) != crc:
        return None
    return JournalRecord(offset=offset, payload=payload)


class IngestJournal:
    """Append-only JSONL journal with CRC records and a commit cursor."""

    def __init__(self, directory: PathLike,
                 segment_records: int = 1024) -> None:
        """Open (or create) the journal under ``directory``.

        Existing segments are picked up; a torn tail on the active
        segment is dropped (see module docstring). ``segment_records``
        bounds records per segment — rotation keeps individual files
        small enough to triage and lets old, fully committed segments
        be archived independently.
        """
        if segment_records < 1:
            raise StorageError(
                f"segment_records must be >= 1, got {segment_records}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_records = segment_records
        self.torn_records_dropped = 0
        self._handle = None

        sealed = self._sealed_segments()
        open_segments = sorted(
            (path for path in self.directory.iterdir()
             if _OPEN_PATTERN.match(path.name)),
            key=lambda p: p.name)
        if len(open_segments) > 1:
            raise StorageError(
                f"journal {self.directory} has {len(open_segments)} "
                f".open segments; at most one active segment can exist")

        last_offset = -1
        for path in sealed:
            last = self._last_offset_sealed(path)
            if last is not None:
                last_offset = max(last_offset, last)
        if open_segments:
            active = open_segments[0]
            if sealed and active.name <= sealed[-1].name.replace(
                    ".jsonl", ".open"):
                raise StorageError(
                    f"active segment {active.name} is older than "
                    f"sealed {sealed[-1].name}")
            kept, dropped = self._recover_tail(active)
            self.torn_records_dropped += dropped
            self._active_path = active
            self._active_count = len(kept)
            self._active_seq = int(_OPEN_PATTERN.match(
                active.name).group(1))
            if kept:
                last_offset = max(last_offset, kept[-1].offset)
        else:
            self._active_seq = (
                int(_SEALED_PATTERN.match(sealed[-1].name).group(1)) + 1
                if sealed else 0)
            self._active_path = self.directory / \
                f"segment-{self._active_seq:08d}.open"
            self._active_count = 0
        self.next_offset = last_offset + 1
        self.cursor_extra: Dict[str, object] = {}
        self._committed = self._load_cursor()

    # ------------------------------------------------------------------
    # write side

    def append(self, payload: Dict[str, object]) -> int:
        """Append one record; returns the offset it was assigned."""
        offset = self.next_offset
        entry = {"o": offset, "c": payload_crc(payload), "r": payload}
        line = json.dumps(entry, separators=(",", ":")) + "\n"
        if self._handle is None:
            self._handle = open(self._active_path, "a",
                                encoding="utf-8")
        self._handle.write(line)
        self.next_offset = offset + 1
        self._active_count += 1
        if self._active_count >= self.segment_records:
            self._rotate()
        return offset

    def flush(self, sync: bool = False) -> None:
        """Push buffered appends to the OS (and to disk with ``sync``)."""
        if self._handle is not None:
            self._handle.flush()
            if sync:
                os.fsync(self._handle.fileno())

    def commit(self, committed: int,
               extra: Optional[Dict[str, object]] = None) -> None:
        """Persist the committed offset (records durably applied).

        ``committed`` is exclusive: ``commit(10)`` means offsets
        ``0..9`` are reflected in durable downstream state and replay
        may start at 10. Written atomically (tmp + rename); never moves
        backwards. ``extra`` rides along in the cursor file — the
        pipeline stores the engine batch count and its incarnation
        there so resume can tell whether the checkpoint it recovered is
        at least as new as the cursor.
        """
        if committed < 0:
            raise StorageError(
                f"committed offset must be >= 0, got {committed}")
        if committed < self._committed:
            raise StorageError(
                f"commit cursor cannot move backwards "
                f"({self._committed} -> {committed})")
        self.flush(sync=True)
        payload = {"format_version": 1, "committed": committed,
                   "extra": dict(extra) if extra else {}}
        staging = self.directory / f".{CURSOR_FILE}.tmp"
        staging.write_text(json.dumps(payload, indent=2),
                           encoding="utf-8")
        os.replace(staging, self.directory / CURSOR_FILE)
        self._committed = committed
        self.cursor_extra = dict(extra) if extra else {}

    @property
    def committed(self) -> int:
        """Offset replay starts from (exclusive end of committed work)."""
        return self._committed

    def close(self) -> None:
        """Flush and release the active segment (it stays appendable)."""
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "IngestJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # read side

    def replay(self, start: Optional[int] = None
               ) -> Iterator[JournalRecord]:
        """Yield journaled records with ``offset >= start`` in order.

        ``start`` defaults to the committed offset. CRCs are verified
        as records stream; a bad line in a *sealed* segment raises
        :class:`StorageError` (corruption is never skipped silently),
        while a torn tail on the active segment ends the replay — those
        bytes were never acknowledged.
        """
        self.flush()
        if start is None:
            start = self._committed
        for path in self._sealed_segments():
            for number, line in self._lines(path):
                record = _decode_line(line)
                if record is None:
                    raise StorageError(
                        f"corrupt record in sealed journal segment "
                        f"{path.name}:{number}")
                if record.offset >= start:
                    yield record
        if self._active_path.exists():
            for number, line in self._lines(self._active_path):
                record = _decode_line(line)
                if record is None:
                    break  # torn tail: unacknowledged, not corruption
                if record.offset >= start:
                    yield record

    # ------------------------------------------------------------------
    # internals

    def _sealed_segments(self) -> List[Path]:
        return sorted(path for path in self.directory.iterdir()
                      if _SEALED_PATTERN.match(path.name))

    @staticmethod
    def _lines(path: Path) -> Iterator[Tuple[int, str]]:
        with open(path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                if line.strip():
                    yield number, line

    def _last_offset_sealed(self, path: Path) -> Optional[int]:
        last = None
        for number, line in self._lines(path):
            record = _decode_line(line)
            if record is None:
                raise StorageError(
                    f"corrupt record in sealed journal segment "
                    f"{path.name}:{number}")
            last = record.offset
        return last

    def _recover_tail(self, path: Path
                      ) -> Tuple[List[JournalRecord], int]:
        """Drop any torn suffix of the active segment, keeping the
        valid prefix in place; returns (kept records, dropped count)."""
        kept: List[JournalRecord] = []
        good_bytes = 0
        dropped = 0
        with open(path, "rb") as handle:
            for raw in handle:
                record = _decode_line(raw.decode("utf-8",
                                                 errors="replace"))
                if record is None or not raw.endswith(b"\n"):
                    dropped += 1
                    # Everything after the first torn line is past the
                    # tear: count it and stop trusting the file.
                    for _ in handle:
                        dropped += 1
                    break
                kept.append(record)
                good_bytes += len(raw)
        if dropped:
            with open(path, "rb+") as handle:
                handle.truncate(good_bytes)
        return kept, dropped

    def _rotate(self) -> None:
        """Seal the full active segment and start the next (atomic)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
        sealed = self.directory / f"segment-{self._active_seq:08d}.jsonl"
        os.replace(self._active_path, sealed)
        self._active_seq += 1
        self._active_path = self.directory / \
            f"segment-{self._active_seq:08d}.open"
        self._active_count = 0

    def _load_cursor(self) -> int:
        path = self.directory / CURSOR_FILE
        if not path.exists():
            return 0
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            committed = int(payload["committed"])
            extra = payload.get("extra", {})
            self.cursor_extra = extra if isinstance(extra, dict) else {}
        except (json.JSONDecodeError, KeyError, TypeError,
                ValueError) as exc:
            raise StorageError(
                f"journal cursor {path} is unreadable ({exc})") from exc
        if committed < 0:
            raise StorageError(
                f"journal cursor {path} holds negative offset "
                f"{committed}")
        return committed
