"""The fault-tolerant streaming ingest pipeline.

One worker, five stages, each owning one failure mode:

1. **Pull** — fetch the next record from a seekable source, retrying
   transient :class:`~repro.errors.SourceError` under a
   :class:`~repro.resilience.RetryPolicy` (injected stalls/errors come
   from the :class:`~repro.resilience.FaultPlan`).
2. **Journal** — append the raw payload to the
   :class:`~repro.ingest.journal.IngestJournal` *before* anything else
   sees it. Journal-first is the at-least-once guarantee: a record that
   made it past this stage can always be replayed.
3. **Parse + dedup** — :func:`~repro.ingest.source.parse_record` with a
   bounded crash-retry budget (poison records go to the
   :class:`~repro.data.quarantine.ParseReport` after ``parse_attempts``
   injected crashes); then idempotent admission — the authoritative
   dataset check first, the bounded
   :class:`~repro.ingest.dedup.Deduplicator` for the in-flight window.
4. **Coalesce** — admitted items queue in the bounded
   :class:`~repro.ingest.coalescer.Coalescer`; typed backpressure
   (PAUSE/SHED) makes the pipeline drain batches instead of pulling,
   so memory stays bounded by ``max_queue`` no matter how far the
   engine lags.
5. **Apply + commit** — batches go through
   :func:`~repro.engine.updates.validate_update_batch` into the
   :class:`~repro.engine.live.LiveRanker`; every
   ``checkpoint_batches`` applied batches the ranker writes a rotation
   and *only then* the journal cursor advances. Exactly-once
   application falls out: replayed records that already reached the
   dataset are skipped by stage 3.

Crash-resume: :meth:`IngestPipeline.resume` rebuilds the live ranker
from its newest intact rotation and replays the journal. If the
recovered rotation is older than the cursor (the newest rotation was
torn), replay restarts from offset 0 — always safe, because admission
is idempotent — and the cursor holds until coverage catches back up.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, Optional, Union

from repro.errors import IngestError, ParseError, SourceError
from repro.data.quarantine import ParseReport
from repro.engine.live import LiveRanker
from repro.engine.updates import validate_update_batch
from repro.ingest.coalescer import Backpressure, Coalescer
from repro.ingest.dedup import CONFLICT, DUPLICATE, Deduplicator
from repro.ingest.journal import IngestJournal
from repro.ingest.source import ParsedItem, parse_record
from repro.resilience.faults import FaultPlan, InjectedCrash
from repro.resilience.policy import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.handle import Observability

PathLike = Union[str, Path]

#: Pipeline-tuned retry defaults: feeds hiccup often and briefly, so
#: back off fast and give up after a few attempts.
DEFAULT_RETRY = RetryPolicy(max_retries=3, base_delay=0.01,
                            max_delay=0.25, jitter=0.0)

#: The record-clock arrival→visible histogram both pipelines observe;
#: one definition so the get-or-create registry never sees mismatched
#: buckets.
VISIBLE_LATENCY_METRIC = "repro_ingest_visible_latency_records"
VISIBLE_LATENCY_HELP = ("Records pulled between a record's arrival and "
                        "the batch apply that made it visible.")
VISIBLE_LATENCY_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass
class IngestReport:
    """Everything one pipeline run (or resumed run) did."""

    records_pulled: int = 0
    records_replayed: int = 0
    articles_applied: int = 0
    citations_applied: int = 0
    duplicates_skipped: int = 0
    conflicts_quarantined: int = 0
    batches_applied: int = 0
    source_retries: int = 0
    parse_crashes: int = 0
    backpressure_pauses: int = 0
    peak_queue: int = 0
    committed_offset: int = 0
    torn_records_dropped: int = 0
    #: Sealed journal segments compaction moved out of the hot tier
    #: (archived or deleted under retention) and the bytes it freed.
    segments_archived: int = 0
    segments_reclaimed_bytes: int = 0
    #: Arrival-to-visible freshness, in *records* (how many records
    #: were pulled between this one's arrival and the batch apply that
    #: made it visible). Deterministic, unlike wall-clock.
    freshness_max_records: int = 0
    freshness_sum_records: int = 0
    freshness_samples: int = 0
    parse_report: ParseReport = field(default_factory=ParseReport)

    @property
    def quarantined(self) -> int:
        return self.parse_report.quarantined

    @property
    def freshness_mean_records(self) -> float:
        if not self.freshness_samples:
            return 0.0
        return self.freshness_sum_records / self.freshness_samples

    def as_metrics(self) -> Dict[str, object]:
        """Flat numeric dict for RunReports and baselines."""
        return {
            "records_pulled": self.records_pulled,
            "records_replayed": self.records_replayed,
            "articles_applied": self.articles_applied,
            "citations_applied": self.citations_applied,
            "duplicates_skipped": self.duplicates_skipped,
            "conflicts_quarantined": self.conflicts_quarantined,
            "quarantined": self.quarantined,
            "batches_applied": self.batches_applied,
            "source_retries": self.source_retries,
            "parse_crashes": self.parse_crashes,
            "backpressure_pauses": self.backpressure_pauses,
            "peak_queue": self.peak_queue,
            "committed_offset": self.committed_offset,
            "torn_records_dropped": self.torn_records_dropped,
            "segments_archived": self.segments_archived,
            "segments_reclaimed_bytes": self.segments_reclaimed_bytes,
            "freshness_max_records": self.freshness_max_records,
            "freshness_mean_records": self.freshness_mean_records,
        }


def observe_served_freshness(obs: "Observability", batch, outcome,
                             has_sink: bool, now_wall: float) -> None:
    """Wall-clock arrival→visible seconds, staged by how far the batch
    actually travelled. Shared by both pipelines.

    ``stage="applied"`` for the sink-less path (visible to direct
    readers of the ranker); ``stage="served"`` when a serving sink
    *published* the batch. A deferred or quarantined sink outcome
    records nothing — those records are not visible yet, and the
    publish-side histogram picks them up when they are.
    """
    from repro.obs.metrics import (FRESHNESS_BUCKETS, FRESHNESS_HELP,
                                   FRESHNESS_METRIC)

    provenance = batch.provenance
    if provenance is None or not provenance.arrivals:
        return
    if not has_sink:
        stage = "applied"
    elif getattr(outcome, "status", "") == "published":
        stage = "served"
    else:
        return
    freshness = obs.metrics.histogram(
        FRESHNESS_METRIC, FRESHNESS_HELP,
        buckets=FRESHNESS_BUCKETS, labels=("stage",))
    for arrived_wall in provenance.arrivals:
        if arrived_wall > 0.0:
            freshness.observe(max(0.0, now_wall - arrived_wall),
                              stage=stage)


class AdmissionTiers:
    """The three-tier exactly-once admission path, shared by the
    single-worker :class:`IngestPipeline` and the partitioned pipeline
    in :mod:`repro.ingest.partition`.

    Tier order is the contract: the authoritative corpus first (a
    record already applied is skipped no matter what the windows
    remember), then the coalescer's queued window (same id queued with
    a *different* fingerprint is a conflict, quarantined), then the
    bounded LRU :class:`~repro.ingest.dedup.Deduplicator` for the
    recently-seen window. Centralising it here is what lets K
    partitions share one admission truth — a citation whose endpoints
    were routed to different partitions still sees them, because every
    partition fans into the same coalescer and corpus.
    """

    def __init__(self, live: LiveRanker, coalescer: Coalescer,
                 dedup: Deduplicator, report: IngestReport,
                 obs: Optional["Observability"],
                 quarantine: Callable[[Exception, int], None]) -> None:
        self.live = live
        self.coalescer = coalescer
        self.dedup = dedup
        self.report = report
        self.obs = obs
        self._quarantine = quarantine

    def admit(self, item: ParsedItem, arrived_at: float,
              arrived_wall: float) -> bool:
        """Admit one parsed item; returns True when it was queued."""
        if item.kind == "article":
            return self._admit_article(item, arrived_at, arrived_wall)
        return self._admit_citation(item, arrived_at, arrived_wall)

    def _skip_duplicate(self, reason: str) -> None:
        self.report.duplicates_skipped += 1
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_ingest_duplicates_total",
                "Duplicate records skipped, by detection point.",
                labels=("reason",)).inc(reason=reason)

    def _admit_article(self, item: ParsedItem, arrived_at: float,
                       arrived_wall: float) -> bool:
        article = item.article
        # Authoritative first: already in the corpus means a replay or
        # re-delivery of an applied record (first write wins).
        if article.id in self.live.dataset.articles:
            self._skip_duplicate("applied")
            return False
        queued_fp = self.coalescer.queued_fingerprint(article.id)
        if queued_fp is not None:
            if queued_fp == item.fingerprint:
                self._skip_duplicate("queued")
            else:
                self.report.conflicts_quarantined += 1
                self._quarantine(IngestError(
                    f"article {article.id} re-delivered with "
                    f"conflicting content"), item.offset)
            return False
        verdict = self.dedup.check(("a", article.id), item.fingerprint)
        if verdict == DUPLICATE:
            self._skip_duplicate("window")
            return False
        if verdict == CONFLICT:
            self.report.conflicts_quarantined += 1
            self._quarantine(IngestError(
                f"article {article.id} re-delivered with conflicting "
                f"content"), item.offset)
            return False
        self.dedup.admit(("a", article.id), item.fingerprint)
        self.coalescer.offer(item, arrived_at=arrived_at,
                             arrived_wall=arrived_wall)
        return True

    def _admit_citation(self, item: ParsedItem, arrived_at: float,
                        arrived_wall: float) -> bool:
        citing, cited = item.citation
        known = self.live.dataset.articles
        # Endpoints must exist somewhere the batch can see them —
        # applied corpus or queued articles. Anything else (a mangled
        # article that never materialised, a feed bug) is poison.
        for endpoint in (citing, cited):
            if endpoint not in known \
                    and self.coalescer.queued_article(endpoint) is None:
                self._quarantine(IngestError(
                    f"citation ({citing} -> {cited}) references "
                    f"unknown article {endpoint}"), item.offset)
                return False
        already = known.get(citing)
        if already is not None and cited in already.references:
            self._skip_duplicate("applied")
            return False
        queued = self.coalescer.queued_article(citing)
        if queued is not None and cited in queued.references:
            self._skip_duplicate("queued")
            return False
        if self.coalescer.has_pair(item.citation):
            self._skip_duplicate("queued")
            return False
        verdict = self.dedup.check(("c", citing, cited),
                                   item.fingerprint)
        if verdict in (DUPLICATE, CONFLICT):
            # A citation pair has no content beyond its endpoints, so
            # conflict degenerates to duplicate.
            self._skip_duplicate("window")
            return False
        self.dedup.admit(("c", citing, cited), item.fingerprint)
        self.coalescer.offer(item, arrived_at=arrived_at,
                             arrived_wall=arrived_wall)
        return True


class IngestPipeline:
    """Single-worker streaming ingestion over a :class:`LiveRanker`."""

    def __init__(self, live: LiveRanker, source, journal: IngestJournal,
                 *, dedup: Optional[Deduplicator] = None,
                 coalescer: Optional[Coalescer] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 parse_attempts: int = 2, checkpoint_batches: int = 1,
                 fault_plan: Optional[FaultPlan] = None,
                 incarnation: int = 0,
                 obs: Optional["Observability"] = None,
                 sink=None,
                 compaction: Optional[str] = None,
                 wall_clock: Callable[[], float] = time.time) -> None:
        """Wire the stages together.

        ``checkpoint_batches`` sets the durability cadence: a rotation
        plus cursor commit every N applied batches (the ranker must
        have a ``checkpoint_dir``; without one the pipeline still runs,
        it just never advances the cursor — resume then replays the
        whole journal, which idempotent admission makes safe, merely
        slow). ``incarnation`` counts resumes; ``"crash"`` ingest
        faults are keyed by it so a resumed pipeline holding the same
        plan does not crash again.

        ``sink`` optionally routes cut batches through a serving tier —
        any object with ``ingest(batch) -> IngestReport`` wrapping the
        *same* ``live`` ranker (a
        :class:`~repro.serve.service.RankingService` or
        :class:`~repro.serve.gateway.ShardedGateway`). Admission still
        checks ``live.dataset``, which the sink mutates through the
        shared ranker, so dedup stays authoritative. ``wall_clock`` is
        the arrival/served stamp source (injectable for deterministic
        freshness tests).

        ``compaction`` (``"archive"`` or ``"delete"``) runs
        :meth:`~repro.ingest.journal.IngestJournal.compact` after every
        successful commit, reclaiming sealed segments the cursor now
        covers — the knob that keeps a long-running journal bounded.
        """
        if parse_attempts < 1:
            raise IngestError(
                f"parse_attempts must be >= 1, got {parse_attempts}")
        if checkpoint_batches < 1:
            raise IngestError(
                f"checkpoint_batches must be >= 1, got "
                f"{checkpoint_batches}")
        if compaction not in (None, "archive", "delete"):
            raise IngestError(
                f"compaction must be None, 'archive' or 'delete', "
                f"got {compaction!r}")
        self.live = live
        self.source = source
        self.journal = journal
        self.dedup = dedup if dedup is not None else Deduplicator()
        self.coalescer = coalescer if coalescer is not None \
            else Coalescer()
        self.retry_policy = retry_policy if retry_policy is not None \
            else DEFAULT_RETRY
        self.parse_attempts = parse_attempts
        self.checkpoint_batches = checkpoint_batches
        self.fault_plan = fault_plan
        self.incarnation = incarnation
        self.obs = obs
        self.sink = sink
        self.compaction = compaction
        self.wall_clock = wall_clock
        self.report = IngestReport(
            torn_records_dropped=journal.torn_records_dropped)
        self.admission = AdmissionTiers(live, self.coalescer,
                                        self.dedup, self.report, obs,
                                        self._quarantine)
        self._handled_through = 0  # offsets < this are fully handled
        self._batches_since_checkpoint = 0
        self._durable = live.checkpoint_dir is not None
        self._replay_from: Optional[int] = None

    # ------------------------------------------------------------------
    # construction from a crash

    @classmethod
    def resume(cls, checkpoint_dir: PathLike, journal_dir: PathLike,
               source, *, incarnation: int = 1,
               obs: Optional["Observability"] = None,
               segment_records: int = 1024,
               **kwargs) -> "IngestPipeline":
        """Rebuild the pipeline after a crash.

        The ranker resumes from its newest intact rotation; the journal
        reopens (dropping any torn tail). If the cursor recorded a
        batch count *newer* than the recovered rotation — the rotation
        covering the commit was lost — the committed offset cannot be
        trusted and the run replays from offset 0 instead; idempotent
        admission turns the extra replay into skips, never double
        applies.
        """
        live = LiveRanker.resume(checkpoint_dir, obs=obs)
        journal = IngestJournal(journal_dir,
                                segment_records=segment_records)
        pipeline = cls(live, source, journal, incarnation=incarnation,
                       obs=obs, **kwargs)
        cursor_batches = journal.cursor_extra.get("batches_applied")
        if isinstance(cursor_batches, int) \
                and live.batches_applied < cursor_batches:
            pipeline._replay_from = 0
        return pipeline

    # ------------------------------------------------------------------
    # the run loop

    def run(self, max_records: Optional[int] = None) -> IngestReport:
        """Replay the journal tail, then drain the source.

        Returns when the source is exhausted (or ``max_records`` new
        records have been pulled) and every queued item has been
        applied and committed. An :class:`InjectedCrash` from a
        scripted ``"crash"`` ingest fault escapes deliberately — that
        *is* the simulated worker death.
        """
        from repro.obs.handle import maybe_span

        with maybe_span(self.obs, "ingest.run",
                        incarnation=self.incarnation):
            self._replay_journal()
            self._drain_source(max_records)
            # Drain-down: the feed is done, flush every queued item in
            # lag-sized batches regardless of min_batch.
            while len(self.coalescer):
                self._apply_one_batch()
            self._commit(force=True)
        self.report.peak_queue = self.coalescer.peak
        self.report.committed_offset = self.journal.committed
        self._export_gauges()
        return self.report

    # ------------------------------------------------------------------
    # stage 0: journal replay (resume path)

    def _replay_journal(self) -> None:
        from repro.obs.handle import maybe_span

        start = self._replay_from  # None -> journal's committed offset
        with maybe_span(self.obs, "ingest.replay"):
            for record in self.journal.replay(start):
                self._admit(record.offset, record.payload,
                            replayed=True)
                self._handle_pressure()
        if self.obs is not None and self.report.records_replayed:
            self.obs.metrics.counter(
                "repro_ingest_records_total",
                "Feed records entering the pipeline, by path.",
                labels=("path",)).inc(self.report.records_replayed,
                                      path="replayed")

    # ------------------------------------------------------------------
    # stage 1: pull

    def _drain_source(self, max_records: Optional[int]) -> None:
        position = self.journal.next_offset
        pulled = 0
        while max_records is None or pulled < max_records:
            self._handle_pressure()
            payload = self._pull(position)
            if payload is None:
                break
            self.journal.append(payload)
            # Flush per record: an injected mid-batch crash abandons
            # this journal object, and nothing it acknowledged may sit
            # in a userspace buffer when the resume path reopens the
            # directory.
            self.journal.flush()
            self.report.records_pulled += 1
            if self.obs is not None:
                self.obs.metrics.counter(
                    "repro_ingest_records_total",
                    "Feed records entering the pipeline, by path.",
                    labels=("path",)).inc(path="pulled")
            self._admit(position, payload)
            position += 1
            pulled += 1
            if self.coalescer.ready():
                self._apply_one_batch()

    def _pull(self, position: int) -> Optional[Dict[str, object]]:
        """Fetch one record, absorbing transient source failures."""
        delays = self.retry_policy.delays()
        attempt = 0
        while True:
            try:
                if self.fault_plan is not None:
                    self.fault_plan.fire_source_fault(position, attempt)
                return self.source.get(position)
            except SourceError as exc:
                self.report.source_retries += 1
                if self.obs is not None:
                    self.obs.metrics.counter(
                        "repro_ingest_retries_total",
                        "Transient-failure retries, by stage.",
                        labels=("stage",)).inc(stage="source")
                if delays.exhausted:
                    raise IngestError(
                        f"source failed {attempt + 1} time(s) at "
                        f"position {position}: {exc}") from exc
                time.sleep(delays.next_delay())
                attempt += 1

    # ------------------------------------------------------------------
    # stage 2+3: parse, dedup, admit

    def _parse(self, offset: int,
               payload: Dict[str, object]) -> Optional[ParsedItem]:
        """Parse with a crash-retry budget; ``None`` when quarantined."""
        attempt = 0
        while True:
            try:
                if self.fault_plan is not None:
                    self.fault_plan.fire_parse_crash(offset, attempt)
                return parse_record(payload, offset)
            except ParseError as exc:
                # Data poison: deterministic, retrying cannot help.
                self._quarantine(exc, offset)
                return None
            except InjectedCrash as exc:
                self.report.parse_crashes += 1
                if self.obs is not None:
                    self.obs.metrics.counter(
                        "repro_ingest_retries_total",
                        "Transient-failure retries, by stage.",
                        labels=("stage",)).inc(stage="parse")
                attempt += 1
                if attempt >= self.parse_attempts:
                    # Crashed every attempt: treat as poison.
                    self._quarantine(exc, offset)
                    return None

    def _quarantine(self, error: Exception, offset: int) -> None:
        self.report.parse_report.record_error(
            error, location=f"record {offset}")
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_ingest_quarantined_total",
                "Feed records routed to quarantine.").inc()
            self.obs.event("ingest.quarantine", offset=offset,
                           error=f"{type(error).__name__}: {error}")

    def _admit(self, offset: int, payload: Dict[str, object],
               replayed: bool = False) -> None:
        """Parse one journaled record and admit it if it is new."""
        if replayed:
            self.report.records_replayed += 1
        item = self._parse(offset, payload)
        if item is not None:
            self.admission.admit(item,
                                 arrived_at=self._arrival_stamp(),
                                 arrived_wall=self.wall_clock())
        self._handled_through = offset + 1

    def _arrival_stamp(self) -> float:
        """Arrival index in records — the deterministic freshness clock."""
        return float(self.report.records_pulled
                     + self.report.records_replayed)

    # ------------------------------------------------------------------
    # stage 4+5: coalesce, apply, commit

    def _handle_pressure(self) -> None:
        while True:
            signal = self.coalescer.pressure()
            if signal is Backpressure.OK:
                return
            self.report.backpressure_pauses += 1
            if self.obs is not None:
                self.obs.metrics.counter(
                    "repro_ingest_backpressure_total",
                    "Backpressure signals acted on, by kind.",
                    labels=("signal",)).inc(signal=signal.value)
            self._apply_one_batch()

    def _apply_one_batch(self) -> None:
        from repro.obs.handle import maybe_span

        batch, last_offset, arrivals = self.coalescer.cut()
        if self.obs is not None and batch.provenance is not None:
            # Stamp the trace id so downstream layers (snapshot
            # publish, shard refresh) can tie their spans back to this
            # ingest run without a side-channel.
            batch = replace(batch, provenance=replace(
                batch.provenance, trace_id=self.obs.tracer.trace_id))
        if self.fault_plan is not None:
            # Fires *after* the cut, *before* the apply: the classic
            # mid-batch death — items are out of the queue, not yet in
            # the engine, and only the journal can bring them back.
            self.fault_plan.fire_ingest_crash(
                self.live.batches_applied, self.incarnation)
        outcome = None
        with maybe_span(self.obs, "ingest.batch",
                        articles=batch.num_articles,
                        citations=len(batch.citations),
                        last_offset=last_offset):
            if self.sink is not None:
                # The serving tier validates, applies (to the shared
                # ranker) and publishes; its guardrails own rejection.
                outcome = self.sink.ingest(batch)
            else:
                validate_update_batch(batch, self.live.dataset)
                self.live.apply(batch)
        self.report.batches_applied += 1
        self.report.articles_applied += batch.num_articles
        self.report.citations_applied += len(batch.citations)
        now = self._arrival_stamp()
        for arrived_at in arrivals:
            lag = int(now - arrived_at)
            self.report.freshness_samples += 1
            self.report.freshness_sum_records += lag
            self.report.freshness_max_records = max(
                self.report.freshness_max_records, lag)
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_ingest_batches_total",
                "Update batches applied by the ingest pipeline.").inc()
            hist = self.obs.metrics.histogram(
                VISIBLE_LATENCY_METRIC, VISIBLE_LATENCY_HELP,
                buckets=VISIBLE_LATENCY_BUCKETS)
            for arrived_at in arrivals:
                hist.observe(now - arrived_at)
            self._observe_freshness(batch, outcome)
        self._batches_since_checkpoint += 1
        if self._durable and (self._batches_since_checkpoint
                              >= self.checkpoint_batches):
            self._commit()

    def _observe_freshness(self, batch, outcome) -> None:
        observe_served_freshness(self.obs, batch, outcome,
                                 has_sink=self.sink is not None,
                                 now_wall=self.wall_clock())

    def _commit(self, force: bool = False) -> None:
        """Checkpoint the ranker, then advance the journal cursor.

        Ordering is the invariant: the cursor names only offsets whose
        effects are inside a durable rotation. Coverage stops at the
        oldest still-queued item — those records are handled but not
        yet applied, so they must replay after a crash.
        """
        from repro.obs.handle import maybe_span

        if not self._durable:
            return
        if not force and self._batches_since_checkpoint == 0:
            return
        oldest = self.coalescer.oldest_offset
        coverage = oldest if oldest is not None else \
            self._handled_through
        if self._batches_since_checkpoint == 0 \
                and coverage <= self.journal.committed:
            return  # nothing new to make durable
        with maybe_span(self.obs, "ingest.commit", coverage=coverage):
            self.live.checkpoint()
            if coverage > self.journal.committed:
                self.journal.commit(coverage, extra={
                    "batches_applied": self.live.batches_applied,
                    "incarnation": self.incarnation,
                })
        self._batches_since_checkpoint = 0
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_ingest_commits_total",
                "Checkpoint-plus-cursor commits.").inc()
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Reclaim cursor-covered segments when compaction is on."""
        if self.compaction is None:
            return
        compaction = self.journal.compact(retention=self.compaction)
        reclaimed = (compaction.segments_archived
                     + compaction.segments_deleted)
        if not reclaimed:
            return
        self.report.segments_archived += reclaimed
        self.report.segments_reclaimed_bytes += \
            compaction.bytes_reclaimed
        if self.obs is not None:
            from repro.obs.metrics import (
                SEGMENTS_ARCHIVED_HELP, SEGMENTS_ARCHIVED_METRIC,
                SEGMENTS_RECLAIMED_HELP, SEGMENTS_RECLAIMED_METRIC)

            self.obs.metrics.counter(
                SEGMENTS_ARCHIVED_METRIC,
                SEGMENTS_ARCHIVED_HELP).inc(reclaimed)
            self.obs.metrics.counter(
                SEGMENTS_RECLAIMED_METRIC,
                SEGMENTS_RECLAIMED_HELP).inc(
                compaction.bytes_reclaimed)

    # ------------------------------------------------------------------

    def _export_gauges(self) -> None:
        if self.obs is None:
            return
        metrics = self.obs.metrics
        metrics.gauge("repro_ingest_queue_depth",
                      "Items in the coalescer queue.").set(
            len(self.coalescer))
        metrics.gauge("repro_ingest_queue_peak",
                      "Peak coalescer occupancy this run.").set(
            self.coalescer.peak)
        metrics.gauge("repro_ingest_committed_offset",
                      "Journal offset durably committed.").set(
            self.journal.committed)
