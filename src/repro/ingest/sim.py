"""Chaos harness for the streaming ingest pipeline.

:func:`run_ingest_sim` runs the same synthetic feed twice:

* **Chaos run** — through the full pipeline (journal, dedup,
  backpressure, checkpoints) with every requested fault armed: source
  stalls and transient errors, parser crashes (retryable and poison),
  duplicate storms and mangled records baked into the feed, a hard
  mid-batch worker crash with journal-driven resume, and optionally a
  torn journal tail before that resume. With ``partitions > 1`` the
  chaos run goes through
  :class:`~repro.ingest.partition.PartitionedIngestPipeline` instead,
  and the fault vocabulary grows per-partition stalls, scripted
  partition-worker crashes (several at the same arrival seq =
  simultaneous deaths), and per-partition torn tails.
* **Reference run** — the same feed, fault-free. At ``partitions == 1``
  it is collapsed into one
  :class:`~repro.engine.updates.UpdateBatch` applied in a single step;
  at ``partitions > 1`` it is a fault-free *single-worker*
  :class:`~repro.ingest.pipeline.IngestPipeline` pass over the same
  source, so the partitioned claim is graded against exactly the
  pipeline it must be indistinguishable from.

It then *proves* the delivery contract by comparing outcomes:

* ``records_lost`` — clean feed records missing from the chaos run's
  final corpus (must be 0);
* ``duplicates_applied`` — articles/citations applied more than once
  (must be 0; computed from corpus sizes, not pipeline counters, so
  the pipeline cannot grade its own homework);
* ``bit_identical`` — the exact full ranking of the chaos corpus
  equals the reference corpus's, score for score, rank for rank.
  Incremental prestige is path-dependent, so the claim is on the exact
  solve of the *final corpus* — identical corpora give identical exact
  rankings, and the corpora are compared directly too.

``repro ingest-sim`` prints the result; ``benchmarks/ingest_smoke.py``
writes it as a RunReport that CI hard-gates against a committed
baseline.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.errors import ParseError, StorageError
from repro.core.model import ArticleRanker, RankerConfig
from repro.data.schema import ScholarlyDataset
from repro.engine.live import LiveRanker
from repro.engine.updates import UpdateBatch, apply_update
from repro.ingest.coalescer import Coalescer
from repro.ingest.journal import IngestJournal
from repro.ingest.partition import PartitionedIngestPipeline
from repro.ingest.pipeline import IngestPipeline, IngestReport
from repro.ingest.source import SyntheticSource, parse_record
from repro.obs.metrics import (FRESHNESS_BUCKETS, FRESHNESS_HELP,
                               FRESHNESS_METRIC)
from repro.resilience.faults import FaultPlan, InjectedCrash

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.handle import Observability


def fault_free_reference(source, dataset: ScholarlyDataset,
                         poisoned: frozenset = frozenset()
                         ) -> UpdateBatch:
    """The one batch a perfect, fault-free ingest would apply.

    Mirrors the pipeline's admission rules exactly — parse, first-write
    -wins article dedup, citation endpoint/duplicate checks — over the
    raw feed, with no chaos in the way. This is the ground truth the
    chaos run is graded against.

    ``poisoned`` holds positions the chaos plan condemns to quarantine
    (a parser that crashes on every attempt). The reference skips them
    at the *same position*, so downstream consequences — a citation
    whose endpoint never materialised, a duplicate re-delivering the
    same content later — resolve identically in both runs. Quarantine
    is accounted loss, not silent loss; the zero-loss gate covers every
    record the pipeline was supposed to keep.
    """
    seen_articles: Dict[int, object] = {}
    articles: List = []
    citations: List[Tuple[int, int]] = []
    seen_pairs: Set[Tuple[int, int]] = set()
    position = 0
    while True:
        payload = source.get(position)
        if payload is None:
            break
        if position in poisoned:
            position += 1
            continue
        try:
            item = parse_record(payload, position)
        except ParseError:
            position += 1
            continue
        if item.kind == "article":
            article = item.article
            if article.id not in dataset.articles \
                    and article.id not in seen_articles:
                seen_articles[article.id] = article
                articles.append(article)
        else:
            citing, cited = item.citation
            known = citing in dataset.articles \
                or citing in seen_articles
            target = cited in dataset.articles \
                or cited in seen_articles
            if not (known and target):
                position += 1
                continue
            refs: Tuple[int, ...] = ()
            if citing in dataset.articles:
                refs = dataset.articles[citing].references
            elif citing in seen_articles:
                refs = seen_articles[citing].references
            if cited not in refs \
                    and (citing, cited) not in seen_pairs:
                seen_pairs.add((citing, cited))
                citations.append((citing, cited))
        position += 1
    return UpdateBatch(articles=tuple(articles),
                       citations=tuple(citations))


def datasets_equal(left: ScholarlyDataset,
                   right: ScholarlyDataset) -> bool:
    """Exact corpus equality: same articles, same references, in full."""
    if set(left.articles) != set(right.articles):
        return False
    for article_id, article in left.articles.items():
        other = right.articles[article_id]
        if (article.year != other.year
                or article.references != other.references):
            return False
    return True


@dataclass
class IngestSimReport:
    """Outcome of one chaos-vs-reference ingest comparison."""

    status: str = "ok"  # "ok" | "failed"
    error: Optional[str] = None
    crashed: bool = False
    resumed: bool = False
    metrics: Dict[str, object] = field(default_factory=dict)
    pipeline: Optional[IngestReport] = None
    resume_pipeline: Optional[IngestReport] = None

    @property
    def contract_held(self) -> bool:
        """Zero loss, zero duplicates, bit-identical final ranking."""
        return (self.status == "ok"
                and self.metrics.get("records_lost") == 0
                and self.metrics.get("duplicates_applied") == 0
                and bool(self.metrics.get("bit_identical")))

    def render(self) -> str:
        lines = [f"# ingest-sim: {self.status}"
                 + (f" ({self.error})" if self.error else "")]
        if self.crashed:
            lines.append("# worker crashed mid-batch and resumed from "
                         "the journal")
        for key in sorted(self.metrics):
            lines.append(f"{key:>26}: {self.metrics[key]}")
        if self.pipeline is not None \
                and self.pipeline.parse_report.quarantined:
            lines.append("# quarantine: "
                         + self.pipeline.parse_report.summary()
                         .replace("\n", "\n# "))
        verdict = "HELD" if self.contract_held else "VIOLATED"
        lines.append(f"# delivery contract: {verdict}")
        return "\n".join(lines)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps({
            "status": self.status, "error": self.error,
            "crashed": self.crashed, "resumed": self.resumed,
            "contract_held": self.contract_held,
            "metrics": self.metrics,
        }, indent=indent)

    def to_report(self, name: str = "ingest-smoke"):
        """A RunReport for ``benchmarks/compare.py`` gating."""
        from repro.obs.report import RunReport

        report = RunReport(name)
        for key, value in self.metrics.items():
            if isinstance(value, bool):
                value = int(value)
            report.record_metric(key, value)
        report.record_metric("crashed", int(self.crashed))
        report.record_metric("contract_held", int(self.contract_held))
        return report


def run_ingest_sim(dataset: Optional[ScholarlyDataset] = None, *,
                   records: int = 80, seed: int = 0,
                   duplicate_every: int = 0, mangle_every: int = 0,
                   cite_every: int = 0,
                   stall_record: Optional[int] = None,
                   stall_seconds: float = 0.01,
                   fail_record: Optional[int] = None,
                   flaky_record: Optional[int] = None,
                   poison_record: Optional[int] = None,
                   crash_batch: Optional[int] = None,
                   truncate_journal: bool = False,
                   min_batch: int = 8, max_batch: int = 32,
                   max_queue: int = 48, checkpoint_batches: int = 1,
                   parse_attempts: int = 2,
                   partitions: int = 1,
                   crash_partitions: Optional[
                       List[Tuple[int, int]]] = None,
                   tear_partitions: Optional[List[int]] = None,
                   stall_partitions: Optional[
                       List[Tuple[int, int]]] = None,
                   segment_records: int = 1024,
                   compaction: Optional[str] = None,
                   workdir: Optional[Path] = None,
                   obs: Optional["Observability"] = None,
                   bundle_dir: Optional[Path] = None
                   ) -> IngestSimReport:
    """Run the chaos feed and grade it against the fault-free run.

    ``fail_record`` arms one transient source error (absorbed by
    retry); ``flaky_record`` one retryable parser crash;
    ``poison_record`` a parser crash on *every* attempt (the record
    must end up quarantined); ``crash_batch`` a hard worker death
    applying that batch ordinal, followed by a journal resume —
    with ``truncate_journal`` the journal's active tail additionally
    loses its last line first (a torn write the recovery scan must
    absorb).

    ``partitions > 1`` switches the chaos run to the partitioned
    pipeline. ``crash_partitions`` is a list of ``(partition, seq)``
    pairs, each killing that partition's worker right after it
    journals the record with global arrival seq ``seq`` (two pairs at
    the same seq = simultaneous deaths); ``tear_partitions`` lists
    partitions whose active segment loses its tail at their next
    crash; ``stall_partitions`` is a list of ``(partition, seq)``
    pairs arming one ``stall_seconds`` stall each. ``compaction``
    (``"archive"`` or ``"delete"``) arms journal segment reclaim after
    every commit — pair it with a small ``segment_records`` so
    segments actually seal during the run.

    When no ``obs`` handle is passed the sim builds its own with a
    :class:`~repro.obs.recorder.FlightRecorder` attached, so a worker
    crash freezes an incident bundle (written under ``bundle_dir``
    when given) and the report carries arrival→applied freshness
    numbers from the shared freshness histogram.
    """
    if dataset is None:
        from repro.data.generator import GeneratorConfig, \
            generate_dataset

        dataset = generate_dataset(GeneratorConfig(
            num_articles=120, num_venues=6, num_authors=40,
            start_year=2000, end_year=2015, seed=seed + 11))

    owns_workdir = workdir is None
    workdir = Path(tempfile.mkdtemp(prefix="ingest-sim-")) \
        if workdir is None else Path(workdir)
    journal_dir = workdir / "journal"
    checkpoint_dir = workdir / "checkpoints"

    source = SyntheticSource(
        sorted(dataset.articles), records, seed=seed,
        duplicate_every=duplicate_every, mangle_every=mangle_every,
        cite_every=cite_every)

    plan = FaultPlan(seed=seed)
    if stall_record is not None:
        plan.stall_source(stall_record, stall_seconds)
    if fail_record is not None:
        plan.fail_source(fail_record)
    if flaky_record is not None:
        plan.crash_parser(flaky_record, times=max(1, parse_attempts - 1))
    if poison_record is not None:
        plan.crash_parser(poison_record, times=parse_attempts + 8)
    if crash_batch is not None:
        plan.crash_ingest(crash_batch)
    for partition, seq in (crash_partitions or []):
        plan.crash_partition_worker(partition, seq)
    for partition in (tear_partitions or []):
        plan.tear_partition_tail(partition)
    for partition, seq in (stall_partitions or []):
        plan.stall_partition_worker(partition, seq, stall_seconds)

    if obs is None:
        from repro.obs import FlightRecorder, Observability

        obs = Observability(
            "ingest-sim",
            recorder=FlightRecorder(bundle_dir=bundle_dir))
    recorder = getattr(obs, "recorder", None)

    def fresh_coalescer() -> Coalescer:
        return Coalescer(max_queue=max_queue, min_batch=min_batch,
                         max_batch=max_batch)

    sim = IngestSimReport()
    try:
        live = LiveRanker(dataset, checkpoint_dir=checkpoint_dir)
        if partitions > 1:
            pipeline = PartitionedIngestPipeline(
                live, source, journal_dir, partitions,
                coalescer=fresh_coalescer(),
                parse_attempts=parse_attempts,
                checkpoint_batches=checkpoint_batches,
                segment_records=segment_records,
                fault_plan=plan, obs=obs, compaction=compaction)
        else:
            journal = IngestJournal(journal_dir,
                                    segment_records=segment_records)
            pipeline = IngestPipeline(
                live, source, journal,
                coalescer=fresh_coalescer(),
                parse_attempts=parse_attempts,
                checkpoint_batches=checkpoint_batches,
                fault_plan=plan, obs=obs, compaction=compaction)
        try:
            sim.pipeline = pipeline.run()
            final = pipeline
        except InjectedCrash:
            sim.crashed = True
            if recorder is not None:
                recorder.capture("ingest.crash")
            pipeline.report.peak_queue = pipeline.coalescer.peak
            sim.pipeline = pipeline.report
            spare_parts = dict(
                coalescer=fresh_coalescer(),
                parse_attempts=parse_attempts,
                checkpoint_batches=checkpoint_batches,
                segment_records=segment_records,
                fault_plan=plan, compaction=compaction)
            if partitions > 1:
                pipeline.report.committed_offset = sum(
                    w.journal.committed for w in pipeline.workers)
                for worker in pipeline.workers:
                    worker.journal.close()
                if truncate_journal:
                    _tear_journal_tail(journal_dir / "partition-0000")
                try:
                    resumed = PartitionedIngestPipeline.resume(
                        checkpoint_dir, journal_dir, source,
                        partitions,
                        incarnation=pipeline.incarnation + 1, obs=obs,
                        **spare_parts)
                except StorageError:
                    resumed = PartitionedIngestPipeline(
                        LiveRanker(dataset,
                                   checkpoint_dir=checkpoint_dir),
                        source, journal_dir, partitions,
                        incarnation=pipeline.incarnation + 1, obs=obs,
                        **spare_parts)
            else:
                pipeline.report.committed_offset = journal.committed
                pipeline.journal.close()
                if truncate_journal:
                    _tear_journal_tail(journal_dir)
                spare_parts.pop("segment_records")
                try:
                    resumed = IngestPipeline.resume(
                        checkpoint_dir, journal_dir, source,
                        incarnation=pipeline.incarnation + 1, obs=obs,
                        segment_records=segment_records, **spare_parts)
                except StorageError:
                    # Crashed before the first checkpoint ever landed:
                    # re-bootstrap from the base corpus; the journal
                    # replays from offset 0 (idempotent, so still
                    # safe).
                    resumed = IngestPipeline(
                        LiveRanker(dataset,
                                   checkpoint_dir=checkpoint_dir),
                        source,
                        IngestJournal(journal_dir,
                                      segment_records=segment_records),
                        incarnation=pipeline.incarnation + 1, obs=obs,
                        **spare_parts)
            sim.resume_pipeline = resumed.run()
            sim.resumed = True
            final = resumed

        poisoned = frozenset([poison_record]) \
            if poison_record is not None else frozenset()
        if partitions > 1:
            # Grade against the pipeline the partitioned one must be
            # indistinguishable from: a fault-free single-worker pass
            # over the same source (poison mirrored, so quarantine
            # consequences resolve identically in both runs).
            ref_plan = FaultPlan(seed=seed)
            if poison_record is not None:
                ref_plan.crash_parser(poison_record,
                                      times=parse_attempts + 8)
            ref_live = LiveRanker(dataset)
            ref_pipeline = IngestPipeline(
                ref_live, source,
                IngestJournal(workdir / "reference-journal"),
                coalescer=fresh_coalescer(),
                parse_attempts=parse_attempts, fault_plan=ref_plan)
            ref_pipeline.run()
            ref_pipeline.journal.close()
            reference_dataset = ref_live.dataset
        else:
            reference = fault_free_reference(source, dataset, poisoned)
            reference_dataset = apply_update(dataset, reference)
        chaos_dataset = final.live.dataset

        expected_new = len(reference_dataset.articles) \
            - len(dataset.articles)
        applied_new = len(chaos_dataset.articles) \
            - len(dataset.articles)
        expected_edges = reference_dataset.num_citations
        applied_edges = chaos_dataset.num_citations
        lost = max(0, expected_new - applied_new) \
            + max(0, expected_edges - applied_edges)
        duplicated = max(0, applied_new - expected_new) \
            + max(0, applied_edges - expected_edges)

        config = RankerConfig()
        chaos_rank = ArticleRanker(config).rank(chaos_dataset)
        reference_rank = ArticleRanker(config).rank(reference_dataset)
        identical = datasets_equal(chaos_dataset, reference_dataset) \
            and chaos_rank.by_id() == reference_rank.by_id()

        last = sim.resume_pipeline if sim.resumed else sim.pipeline
        runs = [run for run in (sim.pipeline, sim.resume_pipeline)
                if run is not None]
        sim.metrics = {
            "records_total": len(source),
            "records_lost": lost,
            "duplicates_applied": duplicated,
            "bit_identical": identical,
            "batches_applied": sum(r.batches_applied for r in runs),
            "duplicates_skipped": sum(r.duplicates_skipped
                                      for r in runs),
            "quarantined": sum(r.quarantined for r in runs),
            "source_retries": sum(r.source_retries for r in runs),
            "parse_crashes": sum(r.parse_crashes for r in runs),
            "backpressure_pauses": sum(r.backpressure_pauses
                                       for r in runs),
            "peak_queue": max(r.peak_queue for r in runs),
            "queue_bound": max_queue,
            "torn_records_dropped": sum(r.torn_records_dropped
                                        for r in runs),
            "committed_offset": last.committed_offset,
            "segments_archived": sum(r.segments_archived
                                     for r in runs),
            "segments_reclaimed_bytes": sum(r.segments_reclaimed_bytes
                                            for r in runs),
            "freshness_max_records": max(r.freshness_max_records
                                         for r in runs),
            "freshness_mean_records": round(
                sum(r.freshness_sum_records for r in runs)
                / max(1, sum(r.freshness_samples for r in runs)), 3),
        }
        fresh = obs.metrics.histogram(
            FRESHNESS_METRIC, FRESHNESS_HELP,
            buckets=FRESHNESS_BUCKETS, labels=("stage",))
        served_n = fresh.count(stage="applied")
        sim.metrics["freshness_served_count"] = served_n
        sim.metrics["freshness_served_mean_ms"] = round(
            fresh.sum(stage="applied") / served_n * 1000.0, 3) \
            if served_n else 0.0
        sim.metrics["incident_bundles"] = \
            len(recorder.captures) if recorder is not None else 0
        if partitions > 1:
            sim.metrics["partitions"] = partitions
            sim.metrics["worker_crashes"] = sum(
                getattr(r, "worker_crashes", 0) for r in runs)
            sim.metrics["records_replayed"] = sum(
                r.records_replayed for r in runs)
            for stats in last.partitions:
                prefix = f"p{stats.partition}"
                sim.metrics[f"{prefix}_committed_offset"] = \
                    stats.committed_offset
                sim.metrics[f"{prefix}_worker_crashes"] = \
                    stats.worker_crashes
    except Exception as exc:  # noqa: BLE001 - the report must survive
        sim.status = "failed"
        sim.error = f"{type(exc).__name__}: {exc}"
    finally:
        if owns_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
    return sim


def _tear_journal_tail(journal_dir: Path) -> None:
    """Chop the last bytes off the active segment (a torn write)."""
    open_segments = sorted(journal_dir.glob("segment-*.open"))
    if not open_segments:
        return
    tail = open_segments[-1]
    size = tail.stat().st_size
    if size > 8:
        with open(tail, "rb+") as handle:
            handle.truncate(size - 8)
