"""Partitioned multi-worker ingestion with deterministic fan-in.

The single-worker :class:`~repro.ingest.pipeline.IngestPipeline` made
the streaming contract hold — journal-first at-least-once delivery,
three-tier exactly-once admission, bit-identical final rankings under
chaos. This module scales the *fault domain*: K partition workers, each
owning

* a partition of the record id space —
  :func:`partition_of`, the same modulo rule as
  :func:`repro.serve.shard.shard_of`, so ingest partitions and serving
  shards slice the corpus identically;
* an independent :class:`~repro.ingest.journal.IngestJournal` directory
  (``<root>/partition-0000/`` …) with its own segments, torn-tail
  recovery, archive tier, and
* an independent committed-offset cursor.

A crash, stall, or torn tail in one partition is recovered *in
isolation* — its journal reopens, its cursor drives its replay, its
worker incarnation bumps — while the other partitions' journals and
cursors are untouched and keep draining.

**Why the result is still bit-identical to the single-worker pipeline.**
One sequential router pulls the global feed (so every record gets a
global arrival sequence number, exactly the single-worker pull order),
routes each payload to its partition worker (journal-first, then parse),
and a :class:`FanIn` stage releases the resulting envelopes in the
canonical order ``(arrival_seq, partition, offset)`` into the *shared*
admission path (:class:`~repro.ingest.pipeline.AdmissionTiers`: one
corpus, one coalescer window, one dedup LRU). First admission therefore
happens in exactly the order the single-worker pipeline would have used,
fingerprints are payload-only, and every crash-recovery re-delivery is
absorbed as a duplicate — so the final corpus, and hence the final
rankings, match bit for bit. The arrival sequence rides in the journal
record (outside the CRC'd payload) so a replayed record re-enters
fan-in under its original position.

**Per-partition commit coverage.** Partition p's cursor advances to the
oldest of its offsets still queued in the coalescer (tracked by a FIFO
mirror of the queue), or to everything it has handled when none are
queued — the same barrier rule as the single-worker pipeline, applied
per journal. Quarantined and poison records produce *tombstone*
envelopes so a partition's cursor advances past poison instead of
wedging on it.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (TYPE_CHECKING, Callable, Deque, Dict, List,
                    Optional, Tuple, Union)

from repro.errors import IngestError, ParseError, SourceError
from repro.engine.live import LiveRanker
from repro.engine.updates import validate_update_batch
from repro.ingest.coalescer import Backpressure, Coalescer
from repro.ingest.dedup import Deduplicator
from repro.ingest.journal import IngestJournal
from repro.ingest.pipeline import (
    DEFAULT_RETRY,
    VISIBLE_LATENCY_BUCKETS,
    VISIBLE_LATENCY_HELP,
    VISIBLE_LATENCY_METRIC,
    AdmissionTiers,
    IngestReport,
    observe_served_freshness,
)
from repro.ingest.source import ParsedItem, parse_record, route_key
from repro.resilience.faults import FaultPlan, InjectedCrash
from repro.resilience.policy import RetryPolicy
from repro.serve.shard import shard_of

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.handle import Observability

PathLike = Union[str, Path]


def partition_of(record_id: int, num_partitions: int) -> int:
    """The ingest partition owning ``record_id``.

    Delegates to :func:`repro.serve.shard.shard_of` so the ingest and
    serving tiers agree on who owns an article — an operator chasing a
    bad record walks one partition journal and one serving shard, not
    K of each.
    """
    return shard_of(record_id, num_partitions)


def partition_route(payload: Dict[str, object],
                    num_partitions: int) -> int:
    """The partition a raw feed payload is journaled in."""
    return partition_of(route_key(payload), num_partitions)


@dataclass(frozen=True)
class Envelope:
    """One journaled record travelling from a partition to fan-in.

    ``item`` is ``None`` for a *tombstone*: the record was journaled
    but quarantined (poison payload, exhausted parse budget). The
    tombstone still flows through fan-in so the partition's
    handled-through watermark — and therefore its cursor — advances
    past the poison.
    """

    seq: int        # global arrival sequence (router order)
    partition: int
    offset: int     # local journal offset within the partition
    item: Optional[ParsedItem]
    replayed: bool = False


class FanIn:
    """Deterministic merge of per-partition envelope streams.

    Envelopes buffer until the router's watermark passes their arrival
    sequence, then release in canonical ``(seq, partition, offset)``
    order. The watermark is the router's current global position, so a
    recovered partition replaying old records re-injects them *behind*
    the watermark and they release immediately — in their original
    order relative to everything still buffered.
    """

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise IngestError(
                f"num_partitions must be >= 1, got {num_partitions}")
        self.num_partitions = num_partitions
        self._heap: List[Tuple[int, int, int, int, Envelope]] = []
        self._pushes = 0
        self._watermark = -1

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def watermark(self) -> int:
        return self._watermark

    def deliver(self, envelope: Envelope) -> None:
        if not 0 <= envelope.partition < self.num_partitions:
            raise IngestError(
                f"envelope for partition {envelope.partition} but "
                f"fan-in has {self.num_partitions}")
        self._pushes += 1
        heapq.heappush(self._heap, (envelope.seq, envelope.partition,
                                    envelope.offset, self._pushes,
                                    envelope))

    def advance(self, seq: int) -> None:
        """Everything at or below ``seq`` becomes releasable."""
        self._watermark = max(self._watermark, seq)

    def drain(self) -> List[Envelope]:
        """Pop every releasable envelope, canonically ordered."""
        released: List[Envelope] = []
        while self._heap and self._heap[0][0] <= self._watermark:
            released.append(heapq.heappop(self._heap)[4])
        return released


@dataclass
class PartitionStats:
    """Per-partition slice of a partitioned run's report."""

    partition: int
    records_journaled: int = 0
    records_replayed: int = 0
    worker_crashes: int = 0
    torn_records_dropped: int = 0
    committed_offset: int = 0
    segments_archived: int = 0
    segments_reclaimed_bytes: int = 0

    def as_metrics(self) -> Dict[str, object]:
        return {
            "records_journaled": self.records_journaled,
            "records_replayed": self.records_replayed,
            "worker_crashes": self.worker_crashes,
            "torn_records_dropped": self.torn_records_dropped,
            "committed_offset": self.committed_offset,
            "segments_archived": self.segments_archived,
            "segments_reclaimed_bytes": self.segments_reclaimed_bytes,
        }


@dataclass
class PartitionedIngestReport(IngestReport):
    """An :class:`IngestReport` plus the per-partition breakdown."""

    num_partitions: int = 1
    worker_crashes: int = 0
    partitions: List[PartitionStats] = field(default_factory=list)

    def as_metrics(self) -> Dict[str, object]:
        metrics = super().as_metrics()
        metrics["num_partitions"] = self.num_partitions
        metrics["worker_crashes"] = self.worker_crashes
        for stats in self.partitions:
            for key, value in stats.as_metrics().items():
                metrics[f"p{stats.partition}_{key}"] = value
        return metrics


class PartitionWorker:
    """One partition's journal-and-parse stage.

    The worker owns the partition's journal directory and the
    journal-first contract for its slice of the feed: ``accept``
    appends the raw payload (stamped with its global arrival seq) and
    flushes *before* parsing, so a crash after the append can always
    replay the record. ``incarnation`` counts recoveries — partition
    crash faults are keyed by it, so a recovered worker holding the
    same plan does not die again on the same record.
    """

    def __init__(self, partition: int, directory: PathLike, *,
                 segment_records: int = 1024, parse_attempts: int = 2,
                 fault_plan: Optional[FaultPlan] = None,
                 obs: Optional["Observability"] = None,
                 quarantine: Callable[[Exception, int], None],
                 on_parse_crash: Callable[[], None],
                 stats: Optional[PartitionStats] = None) -> None:
        self.partition = partition
        self.directory = Path(directory)
        self.segment_records = segment_records
        self.parse_attempts = parse_attempts
        self.fault_plan = fault_plan
        self.obs = obs
        self.stats = stats if stats is not None \
            else PartitionStats(partition)
        self._quarantine = quarantine
        self._on_parse_crash = on_parse_crash
        self.incarnation = 0
        self.journal = IngestJournal(self.directory,
                                     segment_records=segment_records)
        self.stats.torn_records_dropped = \
            self.journal.torn_records_dropped
        self.replay_from: Optional[int] = None

    def accept(self, seq: int, payload: Dict[str, object]) -> Envelope:
        """Journal-then-parse one routed record.

        The scripted crash fires *after* the append and flush — the
        nastiest window: the record is on disk (or in the tail a tear
        will take), but its envelope never reached fan-in. Recovery
        decides from the reopened journal whether replay covers it or
        the router must re-deliver.
        """
        if self.fault_plan is not None:
            self.fault_plan.fire_partition_stall(self.partition, seq,
                                                 self.incarnation)
        offset = self.journal.append(payload, seq=seq)
        self.journal.flush()
        self.stats.records_journaled += 1
        if self.fault_plan is not None:
            self.fault_plan.fire_partition_crash(self.partition, seq,
                                                 self.incarnation)
        return Envelope(seq=seq, partition=self.partition,
                        offset=offset, item=self._parse(seq, offset,
                                                        payload))

    def replay(self) -> List[Envelope]:
        """Re-emit journaled-but-uncommitted records as envelopes.

        Starts at the partition's committed cursor (or offset 0 when
        the coordinator flagged the cursor untrustworthy via
        ``replay_from``). Each envelope carries the arrival seq stamped
        into the journal line, so fan-in replays it at its original
        global position; a record journaled before seq stamping existed
        falls back to its local offset, which is only sound at K=1.
        """
        envelopes: List[Envelope] = []
        for record in self.journal.replay(self.replay_from):
            seq = record.seq if record.seq is not None else record.offset
            envelopes.append(Envelope(
                seq=seq, partition=self.partition, offset=record.offset,
                item=self._parse(seq, record.offset, record.payload),
                replayed=True))
            self.stats.records_replayed += 1
        return envelopes

    def recover(self) -> None:
        """Reopen the journal after a crash (incarnation + 1).

        Only this partition's state is touched: the torn tail (if the
        crash took one) is dropped and accounted, the cursor reloads,
        and the next ``accept`` runs under the new incarnation.
        """
        self.journal.close()
        before = self.stats.torn_records_dropped
        self.journal = IngestJournal(self.directory,
                                     segment_records=self.segment_records)
        self.stats.torn_records_dropped = \
            before + self.journal.torn_records_dropped
        self.incarnation += 1

    def _parse(self, seq: int, offset: int,
               payload: Dict[str, object]) -> Optional[ParsedItem]:
        """Parse with the crash-retry budget; ``None`` → tombstone.

        Faults and quarantine locations are keyed by the *global* seq —
        the same key the single-worker pipeline uses for the same
        record — so one fault plan drives both pipelines identically.
        The parsed item also carries the global seq as its offset:
        admission, provenance, and freshness all see global positions,
        while the journal keeps the local offset.
        """
        attempt = 0
        while True:
            try:
                if self.fault_plan is not None:
                    self.fault_plan.fire_parse_crash(seq, attempt)
                return parse_record(payload, seq)
            except ParseError as exc:
                self._quarantine(exc, seq)
                return None
            except InjectedCrash as exc:
                self._on_parse_crash()
                attempt += 1
                if attempt >= self.parse_attempts:
                    self._quarantine(exc, seq)
                    return None


class PartitionedIngestPipeline:
    """K crash-isolated partition workers behind one deterministic
    fan-in, one admission path, and one ranker."""

    def __init__(self, live: LiveRanker, source,
                 journal_root: PathLike, num_partitions: int, *,
                 dedup: Optional[Deduplicator] = None,
                 coalescer: Optional[Coalescer] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 parse_attempts: int = 2, checkpoint_batches: int = 1,
                 segment_records: int = 1024,
                 fault_plan: Optional[FaultPlan] = None,
                 incarnation: int = 0,
                 obs: Optional["Observability"] = None,
                 sink=None, compaction: Optional[str] = None,
                 wall_clock: Callable[[], float] = time.time) -> None:
        """Wire K workers to the shared tail of the pipeline.

        Knobs mirror :class:`~repro.ingest.pipeline.IngestPipeline`
        one-for-one (they configure the shared stages); the additions
        are ``num_partitions``, ``journal_root`` (each partition
        journals under ``journal_root/partition-NNNN/``), and
        ``segment_records`` for the per-partition journals.
        """
        if num_partitions < 1:
            raise IngestError(
                f"num_partitions must be >= 1, got {num_partitions}")
        if parse_attempts < 1:
            raise IngestError(
                f"parse_attempts must be >= 1, got {parse_attempts}")
        if checkpoint_batches < 1:
            raise IngestError(
                f"checkpoint_batches must be >= 1, got "
                f"{checkpoint_batches}")
        if compaction not in (None, "archive", "delete"):
            raise IngestError(
                f"compaction must be None, 'archive' or 'delete', "
                f"got {compaction!r}")
        self.live = live
        self.source = source
        self.journal_root = Path(journal_root)
        self.num_partitions = num_partitions
        self.dedup = dedup if dedup is not None else Deduplicator()
        self.coalescer = coalescer if coalescer is not None \
            else Coalescer()
        self.retry_policy = retry_policy if retry_policy is not None \
            else DEFAULT_RETRY
        self.parse_attempts = parse_attempts
        self.checkpoint_batches = checkpoint_batches
        self.fault_plan = fault_plan
        self.incarnation = incarnation
        self.obs = obs
        self.sink = sink
        self.compaction = compaction
        self.wall_clock = wall_clock
        self.report = PartitionedIngestReport(
            num_partitions=num_partitions)
        self.admission = AdmissionTiers(live, self.coalescer,
                                        self.dedup, self.report, obs,
                                        self._quarantine)
        self.workers: List[PartitionWorker] = []
        for partition in range(num_partitions):
            stats = PartitionStats(partition)
            self.report.partitions.append(stats)
            self.workers.append(PartitionWorker(
                partition,
                self.journal_root / f"partition-{partition:04d}",
                segment_records=segment_records,
                parse_attempts=parse_attempts, fault_plan=fault_plan,
                obs=obs, quarantine=self._quarantine,
                on_parse_crash=self._count_parse_crash, stats=stats))
        self.report.torn_records_dropped = sum(
            w.stats.torn_records_dropped for w in self.workers)
        self.fan_in = FanIn(num_partitions)
        # FIFO mirror of the coalescer queue: one (partition, local
        # offset) per queued item, in queue order — cuts pop the same
        # prefix, so the head is each commit's oldest-queued barrier.
        self._pending: Deque[Tuple[int, int]] = deque()
        self._handled = [0] * num_partitions
        self._batches_since_checkpoint = 0
        self._durable = live.checkpoint_dir is not None

    # ------------------------------------------------------------------
    # construction from a crash

    @classmethod
    def resume(cls, checkpoint_dir: PathLike, journal_root: PathLike,
               source, num_partitions: int, *, incarnation: int = 1,
               obs: Optional["Observability"] = None,
               **kwargs) -> "PartitionedIngestPipeline":
        """Rebuild the whole pipeline after a coordinator crash.

        The ranker resumes from its newest intact rotation; every
        partition journal reopens (dropping torn tails) and replays
        from its own cursor. A partition whose cursor recorded a batch
        count newer than the recovered rotation replays from offset 0 —
        per partition, exactly the single-worker rule.
        """
        live = LiveRanker.resume(checkpoint_dir, obs=obs)
        pipeline = cls(live, source, journal_root, num_partitions,
                       incarnation=incarnation, obs=obs, **kwargs)
        for worker in pipeline.workers:
            cursor_batches = worker.journal.cursor_extra.get(
                "batches_applied")
            if isinstance(cursor_batches, int) \
                    and live.batches_applied < cursor_batches:
                worker.replay_from = 0
        return pipeline

    # ------------------------------------------------------------------
    # the run loop

    def run(self, max_records: Optional[int] = None
            ) -> PartitionedIngestReport:
        """Replay every partition's journal tail, then drain the feed."""
        from repro.obs.handle import maybe_span

        with maybe_span(self.obs, "ingest.run",
                        incarnation=self.incarnation,
                        partitions=self.num_partitions):
            resume_at = self._replay_all()
            self._drain_source(resume_at, max_records)
            while len(self.coalescer):
                self._apply_one_batch()
            self._commit(force=True)
        self.report.peak_queue = self.coalescer.peak
        self.report.committed_offset = sum(
            w.journal.committed for w in self.workers)
        for worker in self.workers:
            worker.stats.committed_offset = worker.journal.committed
        self._export_gauges()
        return self.report

    # ------------------------------------------------------------------
    # stage 0: per-partition replay (resume path)

    def _replay_all(self) -> int:
        """Replay every partition from its cursor; returns the global
        position the router should pull from.

        The safe resume position is ``min over partitions of (last
        journaled seq + 1)``: any record a torn tail lost from
        partition p had a seq greater than p's surviving maximum, so
        pulling from the minimum re-covers every possible loss. Records
        in that range other partitions already journaled are re-
        delivered and absorbed as duplicates — at-least-once by
        construction, exactly-once by admission.
        """
        from repro.obs.handle import maybe_span

        resume_at = 0
        with maybe_span(self.obs, "ingest.replay",
                        partitions=self.num_partitions):
            floor = None
            for worker in self.workers:
                for envelope in worker.replay():
                    self.fan_in.deliver(envelope)
                    self.fan_in.advance(envelope.seq)
                last = worker.journal.last_seq
                mine = -1 if last is None else last
                floor = mine if floor is None else min(floor, mine)
            resume_at = (floor if floor is not None else -1) + 1
            self._release(self.fan_in.drain())
        if self.obs is not None and self.report.records_replayed:
            self.obs.metrics.counter(
                "repro_ingest_records_total",
                "Feed records entering the pipeline, by path.",
                labels=("path",)).inc(self.report.records_replayed,
                                      path="replayed")
        return resume_at

    # ------------------------------------------------------------------
    # stage 1: the sequential router

    def _drain_source(self, position: int,
                      max_records: Optional[int]) -> None:
        pulled = 0
        while max_records is None or pulled < max_records:
            self._handle_pressure()
            payload = self._pull(position)
            if payload is None:
                break
            partition = partition_route(payload, self.num_partitions)
            self._dispatch(partition, position, payload)
            self.report.records_pulled += 1
            if self.obs is not None:
                self.obs.metrics.counter(
                    "repro_ingest_records_total",
                    "Feed records entering the pipeline, by path.",
                    labels=("path",)).inc(path="pulled")
            self.fan_in.advance(position)
            self._release(self.fan_in.drain())
            position += 1
            pulled += 1
            if self.coalescer.ready():
                self._apply_one_batch()

    def _pull(self, position: int) -> Optional[Dict[str, object]]:
        """Fetch one record, absorbing transient source failures."""
        delays = self.retry_policy.delays()
        attempt = 0
        while True:
            try:
                if self.fault_plan is not None:
                    self.fault_plan.fire_source_fault(position, attempt)
                return self.source.get(position)
            except SourceError as exc:
                self.report.source_retries += 1
                if self.obs is not None:
                    self.obs.metrics.counter(
                        "repro_ingest_retries_total",
                        "Transient-failure retries, by stage.",
                        labels=("stage",)).inc(stage="source")
                if delays.exhausted:
                    raise IngestError(
                        f"source failed {attempt + 1} time(s) at "
                        f"position {position}: {exc}") from exc
                time.sleep(delays.next_delay())
                attempt += 1

    def _dispatch(self, partition: int, seq: int,
                  payload: Dict[str, object]) -> None:
        """Route one record to its worker, surviving worker deaths.

        A scripted crash in the *handling* worker fires after the
        record hit its journal; recovery reopens that journal alone and
        replays it — if the tear took the record, the router still
        holds the payload and re-delivers it to the recovered worker.
        Crashes scripted for *other* partitions at this seq fire too
        (simultaneous deaths), each recovered in isolation.
        """
        for bystander, worker in enumerate(self.workers):
            if bystander == partition or self.fault_plan is None:
                continue
            try:
                self.fault_plan.fire_partition_crash(
                    bystander, seq, worker.incarnation)
            except InjectedCrash:
                self._recover_worker(bystander, seq)
        while True:
            worker = self.workers[partition]
            try:
                self.fan_in.deliver(worker.accept(seq, payload))
                return
            except InjectedCrash:
                retained = self._recover_worker(partition, seq)
                if retained is not None and retained >= seq:
                    # The journal kept the record through the crash;
                    # its replay envelope is already in fan-in.
                    return
                # The tear took it: re-deliver under the worker's new
                # incarnation (the crash fault is keyed by incarnation,
                # so it lets the retry through).

    def _recover_worker(self, partition: int,
                        seq: int) -> Optional[int]:
        """Crash-isolate one partition: tear, reopen, replay.

        Everything here touches partition ``partition`` only. Returns
        the highest arrival seq the reopened journal retained (``None``
        for an empty journal) so the router can decide whether the
        in-flight record needs re-delivery.
        """
        worker = self.workers[partition]
        self.report.worker_crashes += 1
        worker.stats.worker_crashes += 1
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_ingest_worker_crashes_total",
                "Partition-worker deaths survived, by partition.",
                labels=("partition",)).inc(partition=str(partition))
            self.obs.event("ingest.partition.crash",
                           partition=partition, seq=seq,
                           incarnation=worker.incarnation)
        if self.fault_plan is not None:
            tear = self.fault_plan.partition_tear_for(
                partition, worker.incarnation)
            if tear is not None:
                _tear_active_segment(worker.directory, tear)
        torn_before = worker.stats.torn_records_dropped
        worker.recover()
        self.report.torn_records_dropped += \
            worker.stats.torn_records_dropped - torn_before
        for envelope in worker.replay():
            self.fan_in.deliver(envelope)
        # Replayed seqs are at or behind the watermark (except the
        # in-flight record, which releases when the router advances
        # past it) — release them now, in canonical order.
        self._release(self.fan_in.drain())
        return worker.journal.last_seq

    # ------------------------------------------------------------------
    # stage 2+3: fan-in release into the shared admission path

    def _release(self, envelopes: List[Envelope]) -> None:
        for envelope in envelopes:
            if envelope.replayed:
                self.report.records_replayed += 1
            if envelope.item is not None:
                offered = self.admission.admit(
                    envelope.item, arrived_at=self._arrival_stamp(),
                    arrived_wall=self.wall_clock())
                if offered:
                    self._pending.append((envelope.partition,
                                          envelope.offset))
            self._handled[envelope.partition] = max(
                self._handled[envelope.partition], envelope.offset + 1)

    def _quarantine(self, error: Exception, offset: int) -> None:
        self.report.parse_report.record_error(
            error, location=f"record {offset}")
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_ingest_quarantined_total",
                "Feed records routed to quarantine.").inc()
            self.obs.event("ingest.quarantine", offset=offset,
                           error=f"{type(error).__name__}: {error}")

    def _count_parse_crash(self) -> None:
        self.report.parse_crashes += 1
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_ingest_retries_total",
                "Transient-failure retries, by stage.",
                labels=("stage",)).inc(stage="parse")

    def _arrival_stamp(self) -> float:
        """Arrival index in records — the deterministic freshness clock."""
        return float(self.report.records_pulled
                     + self.report.records_replayed)

    # ------------------------------------------------------------------
    # stage 4+5: coalesce, apply, commit (shared tail)

    def _handle_pressure(self) -> None:
        while True:
            signal = self.coalescer.pressure()
            if signal is Backpressure.OK:
                return
            self.report.backpressure_pauses += 1
            if self.obs is not None:
                self.obs.metrics.counter(
                    "repro_ingest_backpressure_total",
                    "Backpressure signals acted on, by kind.",
                    labels=("signal",)).inc(signal=signal.value)
            self._apply_one_batch()

    def _apply_one_batch(self) -> None:
        from repro.obs.handle import maybe_span

        batch, last_offset, arrivals = self.coalescer.cut()
        cut_from = [self._pending.popleft()
                    for _ in range(len(arrivals))]
        if self.obs is not None and batch.provenance is not None:
            batch = replace(batch, provenance=replace(
                batch.provenance, trace_id=self.obs.tracer.trace_id))
        if self.fault_plan is not None:
            # The coordinator-level mid-batch death (same fault family
            # as the single-worker pipeline): items are cut, not yet
            # applied, and only the partition journals bring them back.
            self.fault_plan.fire_ingest_crash(
                self.live.batches_applied, self.incarnation)
        outcome = None
        with maybe_span(self.obs, "ingest.batch",
                        articles=batch.num_articles,
                        citations=len(batch.citations),
                        last_offset=last_offset):
            if self.sink is not None:
                outcome = self.sink.ingest(batch)
            else:
                validate_update_batch(batch, self.live.dataset)
                self.live.apply(batch)
        self.report.batches_applied += 1
        self.report.articles_applied += batch.num_articles
        self.report.citations_applied += len(batch.citations)
        now = self._arrival_stamp()
        for arrived_at in arrivals:
            lag = int(now - arrived_at)
            self.report.freshness_samples += 1
            self.report.freshness_sum_records += lag
            self.report.freshness_max_records = max(
                self.report.freshness_max_records, lag)
        if self.obs is not None:
            from repro.obs.metrics import (PARTITION_FRESHNESS_HELP,
                                           PARTITION_FRESHNESS_METRIC,
                                           PARTITION_LABEL)

            self.obs.metrics.counter(
                "repro_ingest_batches_total",
                "Update batches applied by the ingest pipeline.").inc()
            hist = self.obs.metrics.histogram(
                VISIBLE_LATENCY_METRIC, VISIBLE_LATENCY_HELP,
                buckets=VISIBLE_LATENCY_BUCKETS)
            per_partition = self.obs.metrics.histogram(
                PARTITION_FRESHNESS_METRIC, PARTITION_FRESHNESS_HELP,
                buckets=VISIBLE_LATENCY_BUCKETS,
                labels=(PARTITION_LABEL,))
            for (partition, _offset), arrived_at in zip(cut_from,
                                                        arrivals):
                hist.observe(now - arrived_at)
                per_partition.observe(now - arrived_at,
                                      partition=str(partition))
            observe_served_freshness(self.obs, batch, outcome,
                                     has_sink=self.sink is not None,
                                     now_wall=self.wall_clock())
        self._batches_since_checkpoint += 1
        if self._durable and (self._batches_since_checkpoint
                              >= self.checkpoint_batches):
            self._commit()

    def _coverage(self, partition: int) -> int:
        """Partition p's commit barrier: its oldest queued offset, or
        everything it has handled when nothing of p's is queued."""
        for pending_partition, offset in self._pending:
            if pending_partition == partition:
                return offset
        return self._handled[partition]

    def _commit(self, force: bool = False) -> None:
        """One ranker checkpoint, then every partition cursor.

        The ordering invariant is unchanged — cursors name only
        offsets inside a durable rotation; it now holds per partition,
        with each cursor stopping at its own oldest-queued barrier.
        """
        from repro.obs.handle import maybe_span

        if not self._durable:
            return
        if not force and self._batches_since_checkpoint == 0:
            return
        coverages = [self._coverage(p)
                     for p in range(self.num_partitions)]
        if self._batches_since_checkpoint == 0 and all(
                coverage <= worker.journal.committed
                for coverage, worker in zip(coverages, self.workers)):
            return  # nothing new to make durable
        with maybe_span(self.obs, "ingest.commit",
                        coverage=sum(coverages)):
            self.live.checkpoint()
            for coverage, worker in zip(coverages, self.workers):
                if coverage > worker.journal.committed:
                    worker.journal.commit(coverage, extra={
                        "batches_applied": self.live.batches_applied,
                        "incarnation": worker.incarnation,
                    })
        self._batches_since_checkpoint = 0
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_ingest_commits_total",
                "Checkpoint-plus-cursor commits.").inc()
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if self.compaction is None:
            return
        for worker in self.workers:
            compaction = worker.journal.compact(
                retention=self.compaction)
            reclaimed = (compaction.segments_archived
                         + compaction.segments_deleted)
            if not reclaimed:
                continue
            worker.stats.segments_archived += reclaimed
            worker.stats.segments_reclaimed_bytes += \
                compaction.bytes_reclaimed
            self.report.segments_archived += reclaimed
            self.report.segments_reclaimed_bytes += \
                compaction.bytes_reclaimed
            if self.obs is not None:
                from repro.obs.metrics import (
                    SEGMENTS_ARCHIVED_HELP, SEGMENTS_ARCHIVED_METRIC,
                    SEGMENTS_RECLAIMED_HELP, SEGMENTS_RECLAIMED_METRIC)

                self.obs.metrics.counter(
                    SEGMENTS_ARCHIVED_METRIC,
                    SEGMENTS_ARCHIVED_HELP).inc(reclaimed)
                self.obs.metrics.counter(
                    SEGMENTS_RECLAIMED_METRIC,
                    SEGMENTS_RECLAIMED_HELP).inc(
                    compaction.bytes_reclaimed)

    # ------------------------------------------------------------------

    def _export_gauges(self) -> None:
        if self.obs is None:
            return
        from repro.obs.metrics import PARTITION_LABEL

        metrics = self.obs.metrics
        metrics.gauge("repro_ingest_queue_depth",
                      "Items in the coalescer queue.").set(
            len(self.coalescer))
        metrics.gauge("repro_ingest_queue_peak",
                      "Peak coalescer occupancy this run.").set(
            self.coalescer.peak)
        metrics.gauge("repro_ingest_committed_offset",
                      "Journal offset durably committed.").set(
            sum(w.journal.committed for w in self.workers))
        committed = metrics.gauge(
            "repro_ingest_partition_committed_offset",
            "Per-partition journal offset durably committed.",
            labels=(PARTITION_LABEL,))
        for worker in self.workers:
            committed.set(worker.journal.committed,
                          partition=str(worker.partition))


def _tear_active_segment(directory: Path, tear_bytes: int) -> None:
    """Chop ``tear_bytes`` off the partition's active segment — the
    unsynced tail a simulated power loss takes with it."""
    for path in sorted(directory.glob("*.open")):
        size = path.stat().st_size
        with open(path, "rb+") as handle:
            handle.truncate(max(0, size - tear_bytes))
        return
