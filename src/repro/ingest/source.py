"""Record sources and the feed-record parser for streaming ingestion.

A *source* is anything with ``get(position) -> Optional[dict]``:
deterministic and seekable, so the pipeline can re-pull any position
after a crash (the at-least-once half of the delivery contract — the
journal plus the idempotent apply path provide the exactly-once half).
``None`` past the end means the feed is drained.

Feed records are plain JSON objects in one of two shapes, mirroring the
two ways a scholarly graph actually changes
(:class:`repro.engine.updates.UpdateBatch`):

* ``{"kind": "article", "id": 7, "title": ..., "year": 2012,
  "refs": [1, 2]}`` — a newly published article;
* ``{"kind": "cite", "citing": 7, "cited": 3}`` — a late-resolved
  citation between existing articles.

:func:`parse_record` turns a payload into a typed :class:`ParsedItem`
or raises :class:`repro.errors.ParseError` — data poison, never
retried, routed to quarantine. (Transient parser *crashes* are a
different failure and are injected via
:meth:`repro.resilience.FaultPlan.crash_parser`.)
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ParseError
from repro.data.schema import Article
from repro.ingest.journal import payload_crc


@dataclass(frozen=True)
class ParsedItem:
    """One successfully parsed feed record.

    Exactly one of ``article`` / ``citation`` is set, per ``kind``.
    ``fingerprint`` is the CRC of the canonical payload encoding — what
    the :class:`repro.ingest.dedup.Deduplicator` remembers, so a
    re-delivered record and a *conflicting* record under the same id
    can be told apart.
    """

    offset: int
    kind: str  # "article" | "cite"
    fingerprint: int
    article: Optional[Article] = None
    citation: Optional[Tuple[int, int]] = None


def _require_int(payload: Dict[str, object], key: str,
                 position: int) -> int:
    value = payload.get(key)
    # bool is an int subclass; a feed saying {"id": true} is malformed.
    if not isinstance(value, int) or isinstance(value, bool):
        raise ParseError(
            f"feed record {position}: {key!r} must be an integer, "
            f"got {value!r}")
    return value


def parse_record(payload: Dict[str, object],
                 position: int) -> ParsedItem:
    """Typed view of one feed payload; :class:`ParseError` on poison."""
    if not isinstance(payload, dict):
        raise ParseError(
            f"feed record {position}: payload must be an object, "
            f"got {type(payload).__name__}")
    kind = payload.get("kind")
    fingerprint = payload_crc(payload)
    if kind == "article":
        article_id = _require_int(payload, "id", position)
        year = _require_int(payload, "year", position)
        refs = payload.get("refs", [])
        if not isinstance(refs, list) or any(
                not isinstance(r, int) or isinstance(r, bool)
                for r in refs):
            raise ParseError(
                f"feed record {position}: 'refs' must be a list of "
                f"integers")
        title = payload.get("title")
        if title is None:
            title = f"article-{article_id}"
        elif not isinstance(title, str):
            raise ParseError(
                f"feed record {position}: 'title' must be a string")
        article = Article(id=article_id, title=title, year=year,
                          venue_id=None, author_ids=(),
                          references=tuple(refs))
        return ParsedItem(offset=position, kind="article",
                          fingerprint=fingerprint, article=article)
    if kind == "cite":
        citing = _require_int(payload, "citing", position)
        cited = _require_int(payload, "cited", position)
        if citing == cited:
            raise ParseError(
                f"feed record {position}: self-citation ({citing})")
        return ParsedItem(offset=position, kind="cite",
                          fingerprint=fingerprint,
                          citation=(citing, cited))
    raise ParseError(
        f"feed record {position}: unknown kind {kind!r} "
        f"(expected 'article' or 'cite')")


def route_key(payload: Dict[str, object]) -> int:
    """The stable integer a raw payload partitions on.

    Articles route by ``id`` and citations by ``citing`` — the entity
    the record mutates — so every record touching one article lands in
    one partition's journal, and
    :func:`repro.ingest.partition.partition_of` stays consistent with
    :func:`repro.serve.shard.shard_of`. Unparseable payloads still need
    a deterministic home (they must be journaled before the parser can
    judge them), so they route by payload CRC.
    """
    if isinstance(payload, dict):
        kind = payload.get("kind")
        key = None
        if kind == "article":
            key = payload.get("id")
        elif kind == "cite":
            key = payload.get("citing")
        if isinstance(key, int) and not isinstance(key, bool):
            return key
    return payload_crc(payload if isinstance(payload, dict) else
                       {"_unroutable": repr(payload)})


class SyntheticSource:
    """A deterministic, seekable feed of synthetic arrivals.

    The whole stream is generated up front from ``seed`` (simulation
    scale, not production scale), so ``get`` is pure: position ``p``
    always yields the same payload, no matter how many times or in
    which order positions are pulled — exactly the property crash-
    resume needs from a real message queue.

    Chaos knobs shape the stream itself (the fault *plan* shapes its
    delivery):

    * ``duplicate_every=n`` — every n-th record verbatim re-delivers an
      earlier article (n small = a duplicate storm); the pipeline must
      apply none of them twice;
    * ``mangle_every=n`` — every n-th record is structurally broken
      (no ``id``); the parser must quarantine it, and no later record
      ever references a mangled article;
    * ``cite_every=n`` — every n-th record is a late citation between
      already-delivered articles.
    """

    def __init__(self, base_ids: List[int], total: int, *,
                 seed: int = 0, start_id: Optional[int] = None,
                 year: int = 2020, duplicate_every: int = 0,
                 mangle_every: int = 0, cite_every: int = 0) -> None:
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        if not base_ids:
            raise ValueError("SyntheticSource needs base article ids")
        rng = random.Random(seed)
        base_ids = sorted(base_ids)
        next_id = (max(base_ids) + 1) if start_id is None else start_id
        self._records: List[Dict[str, object]] = []
        clean_positions: List[int] = []  # positions of clean articles
        clean_ids: List[int] = []
        for position in range(total):
            if (duplicate_every and position % duplicate_every == 0
                    and clean_positions):
                original = self._records[rng.choice(clean_positions)]
                self._records.append(json.loads(json.dumps(original)))
                continue
            if mangle_every and position % mangle_every == 1:
                self._records.append({
                    "kind": "article",
                    "title": f"mangled-{position}", "year": year})
                continue
            if cite_every and position % cite_every == 2 and clean_ids:
                citing = rng.choice(clean_ids)
                cited = rng.choice(base_ids)
                self._records.append({"kind": "cite", "citing": citing,
                                      "cited": cited})
                continue
            citable = base_ids + clean_ids
            refs = sorted(rng.sample(citable, min(3, len(citable))))
            self._records.append({
                "kind": "article", "id": next_id,
                "title": f"stream-arrival-{next_id}", "year": year,
                "refs": refs})
            clean_positions.append(position)
            clean_ids.append(next_id)
            next_id += 1

    def __len__(self) -> int:
        return len(self._records)

    def get(self, position: int) -> Optional[Dict[str, object]]:
        """Payload at ``position``, or ``None`` past the end."""
        if position < 0:
            raise ValueError(f"position must be >= 0, got {position}")
        if position >= len(self._records):
            return None
        # A fresh copy per delivery: callers may stamp or mangle it.
        return json.loads(json.dumps(self._records[position]))


class JsonlSource:
    """A feed backed by a JSONL file (one payload object per line).

    Positions are 0-based line indices; blank lines are skipped. The
    file is loaded once up front — this source exists for the CLI and
    tests, not for multi-gigabyte production feeds.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._records: List[Dict[str, object]] = []
        with open(self.path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ParseError(
                        f"not valid JSON: {exc}",
                        path=str(self.path), line=number) from exc
                if not isinstance(payload, dict):
                    raise ParseError(
                        "feed line must be a JSON object",
                        path=str(self.path), line=number)
                self._records.append(payload)

    def __len__(self) -> int:
        return len(self._records)

    def get(self, position: int) -> Optional[Dict[str, object]]:
        if position < 0:
            raise ValueError(f"position must be >= 0, got {position}")
        if position >= len(self._records):
            return None
        return json.loads(json.dumps(self._records[position]))
