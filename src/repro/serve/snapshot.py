"""Immutable published snapshots — the unit the read path sees.

A :class:`Snapshot` bundles everything a read needs — the
:class:`repro.query.RankIndex`, the full :class:`RankingResult` it was
built from, and freshness metadata — into one immutable value. The
serving layer swaps the *reference* to the current snapshot atomically
(one attribute store, no locks on the read side), so a reader either
sees the old complete world or the new complete world, never a torn
mix. Snapshots are only ever constructed fully and validated before
they are published; nothing mutates one after the swap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.model import RankingResult
    from repro.query import RankIndex


@dataclass(frozen=True)
class Snapshot:
    """One published, validated, immutable view of the ranking.

    Attributes:
        index: the serving index (top-k, filters, pagination).
        ranking: the full model result the index was built from.
        epoch: publish counter — the bootstrap snapshot is epoch 0 and
            every successful guardrailed swap increments it by one.
        batches_applied: the live engine's batch count when this
            snapshot was built (how much history it reflects).
        published_at: wall-clock publish time (``time.time()``), for
            staleness-by-age reporting.
    """

    index: "RankIndex"
    ranking: "RankingResult"
    epoch: int
    batches_applied: int
    published_at: float

    @property
    def num_articles(self) -> int:
        return len(self.index)
