"""Publish guardrails: what a candidate ranking must prove pre-swap.

The update path never publishes a snapshot it merely *hopes* is good.
After every applied batch the candidate ranking is checked against a
:class:`GuardrailPolicy`; any violation vetoes the swap, the engine is
rolled back to the last good state, and the offending batch is
quarantined — the previous snapshot keeps serving, stale but correct.

Checks, in order of severity:

* **finiteness** — every score is a finite float (one NaN poisons every
  downstream comparison);
* **coverage** — the ranking covers exactly the dataset's articles
  (a dropped or phantom article means the index and the data disagree);
* **score mass** — the mean score drifted no more than a relative
  tolerance from the previous snapshot (a sanity bound on wholesale
  numeric corruption that stays finite);
* **top-k churn** — at most a configurable fraction of the previous
  top-k left the top-k (a single batch rewriting the head of the
  ranking is almost always a bug, not science).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.model import RankingResult
    from repro.data.schema import ScholarlyDataset
    from repro.serve.snapshot import Snapshot


@dataclass(frozen=True)
class GuardrailPolicy:
    """Bounds a candidate ranking must respect to be published.

    Attributes:
        mass_tolerance: maximum relative drift of the mean score vs the
            previous snapshot (rank-normalized blends keep a near-
            constant mean, so even a loose bound catches corruption).
        churn_top_k: size of the head window the churn check watches.
        max_churn: maximum fraction of the previous top-k allowed to
            drop out of the new top-k per publish; ``1.0`` disables the
            check (small corpora legitimately reshuffle).
    """

    mass_tolerance: float = 0.5
    churn_top_k: int = 20
    max_churn: float = 1.0

    def __post_init__(self) -> None:
        if self.mass_tolerance < 0:
            raise ConfigError("mass_tolerance must be non-negative")
        if self.churn_top_k <= 0:
            raise ConfigError("churn_top_k must be positive")
        if not 0.0 <= self.max_churn <= 1.0:
            raise ConfigError(
                f"max_churn must be in [0, 1], got {self.max_churn}")


def validate_candidate(policy: GuardrailPolicy,
                       dataset: "ScholarlyDataset",
                       candidate: "RankingResult",
                       previous: Optional["Snapshot"] = None
                       ) -> List[str]:
    """Violations that veto publishing ``candidate`` (empty = publish).

    ``previous`` is the currently-served snapshot; the relative checks
    (mass drift, churn) are skipped when there is none (bootstrap).
    """
    violations: List[str] = []
    scores = np.asarray(candidate.scores, dtype=np.float64)

    bad = int(np.count_nonzero(~np.isfinite(scores)))
    if bad:
        violations.append(
            f"{bad} non-finite score(s) of {scores.size}")
        # Every later check would only echo the same corruption.
        return violations

    node_ids = np.asarray(candidate.node_ids, dtype=np.int64)
    article_ids = np.fromiter(dataset.articles.keys(), dtype=np.int64,
                              count=len(dataset.articles))
    if node_ids.size != article_ids.size \
            or np.setxor1d(node_ids, article_ids).size:
        violations.append(
            f"coverage mismatch: ranking has {node_ids.size} articles, "
            f"dataset has {article_ids.size}")

    if previous is not None:
        prev_scores = np.asarray(previous.ranking.scores,
                                 dtype=np.float64)
        prev_mean = float(prev_scores.mean()) if prev_scores.size else 0.0
        mean = float(scores.mean()) if scores.size else 0.0
        bound = policy.mass_tolerance * max(abs(prev_mean), 1e-12)
        if abs(mean - prev_mean) > bound:
            violations.append(
                f"score mass drifted: mean {mean:.6g} vs previous "
                f"{prev_mean:.6g} (tolerance {policy.mass_tolerance:g} "
                f"relative)")

        if policy.max_churn < 1.0:
            k = min(policy.churn_top_k, len(previous.index),
                    node_ids.size)
            if k > 0:
                prev_top = {article_id for article_id, _
                            in previous.ranking.top(k)}
                new_top = {article_id for article_id, _
                           in candidate.top(k)}
                churn = len(prev_top - new_top) / k
                if churn > policy.max_churn:
                    violations.append(
                        f"top-{k} churn {churn:.0%} exceeds bound "
                        f"{policy.max_churn:.0%}")
    return violations
