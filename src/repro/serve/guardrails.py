"""Publish guardrails: what a candidate ranking must prove pre-swap.

The update path never publishes a snapshot it merely *hopes* is good.
After every applied batch the candidate ranking is checked against a
:class:`GuardrailPolicy`; any violation vetoes the swap, the engine is
rolled back to the last good state, and the offending batch is
quarantined — the previous snapshot keeps serving, stale but correct.

Checks, in order of severity:

* **finiteness** — every score is a finite float (one NaN poisons every
  downstream comparison);
* **coverage** — the ranking covers exactly the dataset's articles
  (a dropped or phantom article means the index and the data disagree);
* **score mass** — the total score mass drifted no more than a
  tolerance *relative to the previous snapshot's mass*, with an
  absolute floor (a sanity bound on wholesale numeric corruption that
  stays finite: a 10-node test graph must not spuriously veto because
  its mean moved, and a 10M-node graph must not silently pass a large
  absolute drift just because its mean barely moved);
* **top-k churn** — at most a configurable fraction of the previous
  top-k left the top-k (a single batch rewriting the head of the
  ranking is almost always a bug, not science).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.model import RankingResult
    from repro.data.schema import ScholarlyDataset
    from repro.serve.snapshot import Snapshot


@dataclass(frozen=True)
class GuardrailPolicy:
    """Bounds a candidate ranking must respect to be published.

    Attributes:
        mass_tolerance: maximum drift of the total score mass, as a
            fraction of the previous snapshot's total mass
            (rank-normalized blends keep a near-constant mass per
            article, so even a loose bound catches corruption).
        mass_floor: absolute drift always allowed regardless of the
            relative bound — keeps tiny graphs (whose total mass is
            itself tiny) from vetoing on numerically irrelevant drift.
        churn_top_k: size of the head window the churn check watches.
        max_churn: maximum fraction of the previous top-k allowed to
            drop out of the new top-k per publish; ``1.0`` disables the
            check (small corpora legitimately reshuffle).
    """

    mass_tolerance: float = 0.5
    mass_floor: float = 1e-6
    churn_top_k: int = 20
    max_churn: float = 1.0

    def __post_init__(self) -> None:
        if self.mass_tolerance < 0:
            raise ConfigError("mass_tolerance must be non-negative")
        if self.mass_floor < 0:
            raise ConfigError("mass_floor must be non-negative")
        if self.churn_top_k <= 0:
            raise ConfigError("churn_top_k must be positive")
        if not 0.0 <= self.max_churn <= 1.0:
            raise ConfigError(
                f"max_churn must be in [0, 1], got {self.max_churn}")


def validate_candidate(policy: GuardrailPolicy,
                       dataset: "ScholarlyDataset",
                       candidate: "RankingResult",
                       previous: Optional["Snapshot"] = None
                       ) -> List[str]:
    """Violations that veto publishing ``candidate`` (empty = publish).

    ``previous`` is the currently-served snapshot; the relative checks
    (mass drift, churn) are skipped when there is none (bootstrap).
    """
    violations: List[str] = []
    scores = np.asarray(candidate.scores, dtype=np.float64)

    bad = int(np.count_nonzero(~np.isfinite(scores)))
    if bad:
        violations.append(
            f"{bad} non-finite score(s) of {scores.size}")
        # Every later check would only echo the same corruption.
        return violations

    node_ids = np.asarray(candidate.node_ids, dtype=np.int64)
    article_ids = np.fromiter(dataset.articles.keys(), dtype=np.int64,
                              count=len(dataset.articles))
    if node_ids.size != article_ids.size \
            or np.setxor1d(node_ids, article_ids).size:
        violations.append(
            f"coverage mismatch: ranking has {node_ids.size} articles, "
            f"dataset has {article_ids.size}")

    if previous is not None:
        prev_scores = np.asarray(previous.ranking.scores,
                                 dtype=np.float64)
        drift = _mass_drift(policy, prev_scores, scores)
        if drift is not None:
            violations.append(drift)

        if policy.max_churn < 1.0:
            k = min(policy.churn_top_k, len(previous.index),
                    node_ids.size)
            if k > 0:
                prev_top = {article_id for article_id, _
                            in previous.ranking.top(k)}
                new_top = {article_id for article_id, _
                           in candidate.top(k)}
                churn = len(prev_top - new_top) / k
                if churn > policy.max_churn:
                    violations.append(
                        f"top-{k} churn {churn:.0%} exceeds bound "
                        f"{policy.max_churn:.0%}")
    return violations


def _mass_drift(policy: GuardrailPolicy, prev_scores: np.ndarray,
                scores: np.ndarray) -> Optional[str]:
    """Violation string if total score mass drifted out of bounds.

    The previous mass is scaled by the size ratio first, so organic
    corpus growth (a batch adding articles with ordinary scores) is not
    read as drift; what remains is genuine per-article movement. The
    bound is relative to that expected mass with an absolute
    ``mass_floor``, so the check neither spuriously vetoes a tiny graph
    (whose total mass is itself near zero) nor silently passes a large
    absolute drift on a huge one.
    """
    prev_mass = float(prev_scores.sum()) if prev_scores.size else 0.0
    mass = float(scores.sum()) if scores.size else 0.0
    scale = (scores.size / prev_scores.size) if prev_scores.size else 1.0
    expected = prev_mass * scale
    bound = max(policy.mass_tolerance * abs(expected), policy.mass_floor)
    if abs(mass - expected) > bound:
        return (f"score mass drifted: total {mass:.6g} vs expected "
                f"{expected:.6g} (tolerance {policy.mass_tolerance:g} "
                f"relative, floor {policy.mass_floor:g})")
    return None


def validate_shard_slice(policy: GuardrailPolicy,
                         expected_ids: np.ndarray,
                         ids: np.ndarray,
                         scores: np.ndarray,
                         previous_scores: Optional[np.ndarray] = None
                         ) -> List[str]:
    """Violations that veto a shard refreshing onto a score slice.

    The sharded tier's per-shard analogue of :func:`validate_candidate`:
    each shard re-checks *its own slice* of the published board before
    swapping its local snapshot, so one poisoned slice degrades one
    shard instead of the whole tier. Churn is a global property and is
    only checked by the publisher; per shard we check finiteness,
    coverage of the shard's owned ids, and score-mass drift vs the
    shard's previous slice.
    """
    violations: List[str] = []
    scores = np.asarray(scores, dtype=np.float64)
    ids = np.asarray(ids, dtype=np.int64)
    expected_ids = np.asarray(expected_ids, dtype=np.int64)

    bad = int(np.count_nonzero(~np.isfinite(scores)))
    if bad:
        violations.append(
            f"{bad} non-finite score(s) of {scores.size} in shard slice")
        return violations

    if ids.size != scores.size:
        violations.append(
            f"shard slice misaligned: {ids.size} ids vs "
            f"{scores.size} scores")
        return violations

    if ids.size != expected_ids.size \
            or np.setxor1d(ids, expected_ids).size:
        violations.append(
            f"shard coverage mismatch: slice has {ids.size} articles, "
            f"shard owns {expected_ids.size}")

    if previous_scores is not None:
        drift = _mass_drift(
            policy, np.asarray(previous_scores, dtype=np.float64), scores)
        if drift is not None:
            violations.append(drift)
    return violations
