"""Per-shard serving: one owner per slice of the article id space.

The sharded tier splits the corpus by ``article_id % num_shards``; each
shard is a :class:`ShardServer` owning exactly its articles. The server
attaches the shared-memory score board published by the gateway
(:class:`repro.engine.shm.ScoreBoardReader`), and on every ``refresh``
command performs its own guardrailed snapshot swap: read the board
(seqlock-consistent), slice out the owned articles, validate the slice
(:func:`repro.serve.guardrails.validate_shard_slice`), and only then
swap in a fresh :class:`repro.query.RankIndex`. A vetoed or failing
refresh leaves the previous shard snapshot serving — per-shard
staleness instead of tier-wide failure — and trips the shard's own
:class:`~repro.serve.breaker.CircuitBreaker`; reads go through the
shard's own :class:`~repro.serve.admission.AdmissionGate`.

The same state machine runs in two deployments:

* **inline** — :class:`InlineShardHandle` wraps the server in the
  gateway's process (tests, small corpora);
* **process** — :class:`ProcessShardHandle` spawns
  :func:`_shard_process_main` in a worker process and speaks a
  request/response protocol over a ``multiprocessing.Pipe``. Scores
  never cross the pipe — they travel through shared memory; the pipe
  carries control messages and per-query results only.

Chaos hooks: a :class:`repro.resilience.FaultPlan` shard fault fires at
the exact refresh point — ``"crash"`` hard-kills a worker process
(``os._exit``, the gateway observes a dead pipe) and ``"poison"``
NaN-poisons the slice so the guardrails must veto it.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, ServeError, ShardUnavailableError
from repro.data.schema import Article, ScholarlyDataset
from repro.engine.shm import ScoreBoardReader, SegmentLayout
from repro.query import RankEntry, RankIndex
from repro.resilience.faults import (WORKER_CRASH_EXIT_CODE, FaultPlan,
                                     InjectedCrash)
from repro.resilience.policy import Deadline, RetryPolicy
from repro.serve.admission import AdmissionGate
from repro.serve.breaker import CircuitBreaker, OPEN
from repro.serve.guardrails import GuardrailPolicy, validate_shard_slice

if TYPE_CHECKING:  # pragma: no cover - types only
    from multiprocessing.connection import Connection


def shard_of(article_id: int, num_shards: int) -> int:
    """The shard owning ``article_id`` (stable under corpus growth)."""
    return int(article_id) % num_shards


@dataclass(frozen=True)
class ShardSpec:
    """Which slice of the id space one shard owns."""

    shard: int
    num_shards: int

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ConfigError(
                f"num_shards must be positive, got {self.num_shards}")
        if not 0 <= self.shard < self.num_shards:
            raise ConfigError(
                f"shard must be in [0, {self.num_shards}), "
                f"got {self.shard}")

    def owns(self, article_id: int) -> bool:
        return shard_of(article_id, self.num_shards) == self.shard


@dataclass(frozen=True)
class ShardConfig:
    """Picklable per-shard policy bundle (shipped to worker processes).

    Locks cannot cross a process boundary, so the gate and breaker are
    constructed *inside* the shard from these parameters.
    """

    guardrails: GuardrailPolicy = field(default_factory=GuardrailPolicy)
    max_inflight: int = 64
    max_waiting: int = 0
    failure_threshold: int = 3
    cooldown: Optional[RetryPolicy] = None
    fault_plan: Optional[FaultPlan] = None


@dataclass(frozen=True)
class ShardSnapshot:
    """One refreshed, validated, immutable per-shard view."""

    index: RankIndex
    epoch: int
    refreshed_at: float

    @property
    def num_articles(self) -> int:
        return len(self.index)


class ShardServer:
    """The per-shard state machine (identical inline and in-process).

    Queries (``top`` / ``score_of`` / ``count_above``) are admission-
    gated and answer from the current :class:`ShardSnapshot`; the
    ``refresh`` command is the shard's single-updater publish path.
    """

    def __init__(self, spec: ShardSpec, layout: SegmentLayout,
                 articles: Iterable[Article],
                 config: Optional[ShardConfig] = None) -> None:
        config = config if config is not None else ShardConfig()
        self.spec = spec
        self._layout = layout
        self._config = config
        self._guardrails = config.guardrails
        self._gate = AdmissionGate(max_inflight=config.max_inflight,
                                   max_waiting=config.max_waiting)
        breaker_kwargs = {} if config.cooldown is None \
            else {"cooldown": config.cooldown}
        self._breaker = CircuitBreaker(
            failure_threshold=config.failure_threshold, **breaker_kwargs)
        self._fault_plan = config.fault_plan
        self._dataset = ScholarlyDataset(name=f"shard-{spec.shard}")
        self.absorb(articles)
        self._reader: Optional[ScoreBoardReader] = None
        self._snapshot: Optional[ShardSnapshot] = None
        self._last_scores: Optional[np.ndarray] = None
        self._target_epoch = -1
        self._refreshes_total = 0
        self._vetoes_total = 0
        self._last_violations: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # update path (single updater: the gateway's refresh scatter)

    def absorb(self, articles: Iterable[Article]) -> int:
        """Take ownership of newly arrived articles (metadata only).

        Scores arrive separately through the board; absorbing is the
        delta metadata sync that precedes a refresh. Articles this
        shard does not own are rejected loudly — a misrouted article
        means the gateway and the shard disagree about the partition.
        """
        absorbed = 0
        for article in articles:
            if not self.spec.owns(article.id):
                raise ServeError(
                    f"article {article.id} does not belong to shard "
                    f"{self.spec.shard}/{self.spec.num_shards}")
            if article.id not in self._dataset.articles:
                self._dataset.articles[article.id] = article
                absorbed += 1
        return absorbed

    def refresh(self, epoch: int, attempt: int = 0) -> Dict[str, object]:
        """Refresh the shard snapshot from the score board.

        Reads the newest consistent board state, slices out the owned
        articles, validates the slice, and swaps. Returns a status
        report: ``"refreshed"`` | ``"vetoed"`` (guardrails; previous
        snapshot keeps serving) | ``"deferred"`` (breaker open).
        """
        self._target_epoch = max(self._target_epoch, epoch)
        if self._fault_plan is not None:
            # InjectedCrash escapes on purpose: in process mode the
            # worker main turns it into a hard exit, inline the handle
            # plays the process boundary.
            self._fault_plan.fire_shard_crash(self.spec.shard, epoch,
                                              attempt)
        if not self._breaker.allow():
            return {"shard": self.spec.shard, "status": "deferred",
                    "epoch": self._snapshot_epoch(),
                    "breaker": self._breaker.state}
        try:
            board_epoch, ids, scores = self._board().read()
            mask = ids % self.spec.num_shards == self.spec.shard
            slice_ids = ids[mask]
            slice_scores = scores[mask]
            fault = self._fault_plan.shard_fault(
                self.spec.shard, epoch, attempt) \
                if self._fault_plan is not None else None
            if fault is not None and fault.kind == "poison":
                slice_scores = slice_scores.copy()
                slice_scores[:: max(1, slice_scores.size // 5)] = np.nan
            expected = np.fromiter(self._dataset.articles.keys(),
                                   dtype=np.int64,
                                   count=len(self._dataset.articles))
            violations = validate_shard_slice(
                self._guardrails, expected, slice_ids, slice_scores,
                previous_scores=self._last_scores)
        except InjectedCrash:
            raise
        except Exception as exc:  # noqa: BLE001 - refresh firewall
            self._breaker.record_failure()
            self._last_violations = (
                f"refresh raised {type(exc).__name__}: {exc}",)
            self._vetoes_total += 1
            return {"shard": self.spec.shard, "status": "vetoed",
                    "epoch": self._snapshot_epoch(),
                    "violations": list(self._last_violations),
                    "breaker": self._breaker.state}
        if violations:
            self._breaker.record_failure()
            self._vetoes_total += 1
            self._last_violations = tuple(violations)
            return {"shard": self.spec.shard, "status": "vetoed",
                    "epoch": self._snapshot_epoch(),
                    "violations": violations,
                    "breaker": self._breaker.state}
        index = RankIndex(self._dataset,
                          dict(zip(slice_ids.tolist(),
                                   slice_scores.tolist())))
        # One reference store — readers see old or new, never torn.
        self._snapshot = ShardSnapshot(index=index, epoch=board_epoch,
                                       refreshed_at=time.time())
        self._last_scores = slice_scores
        self._last_violations = ()
        self._breaker.record_success()
        self._refreshes_total += 1
        return {"shard": self.spec.shard, "status": "refreshed",
                "epoch": board_epoch, "articles": int(slice_ids.size),
                "breaker": self._breaker.state}

    def _board(self) -> ScoreBoardReader:
        if self._reader is None:
            self._reader = ScoreBoardReader(self._layout)
        return self._reader

    def _snapshot_epoch(self) -> int:
        return self._snapshot.epoch if self._snapshot is not None else -1

    # ------------------------------------------------------------------
    # read path (gate-admitted)

    def _current(self) -> ShardSnapshot:
        snapshot = self._snapshot
        if snapshot is None:
            raise ServeError(
                f"shard {self.spec.shard} has no refreshed snapshot yet")
        return snapshot

    def top(self, k: int = 10, venue_id: Optional[int] = None,
            author_id: Optional[int] = None,
            year_range: Optional[Tuple[int, int]] = None,
            deadline: Optional[Deadline] = None
            ) -> Tuple[int, List[RankEntry]]:
        """Shard-local best ``k`` (ranks local; the gateway renumbers)."""
        with self._gate.admit(deadline):
            snapshot = self._current()
            return snapshot.epoch, snapshot.index.top(
                k, venue_id=venue_id, author_id=author_id,
                year_range=year_range)

    def score_of(self, article_id: int,
                 deadline: Optional[Deadline] = None
                 ) -> Tuple[int, float]:
        with self._gate.admit(deadline):
            snapshot = self._current()
            return snapshot.epoch, snapshot.index.score_of(article_id)

    def count_above(self, score: float, article_id: int,
                    deadline: Optional[Deadline] = None
                    ) -> Tuple[int, int]:
        """Owned articles globally ahead of ``(score, article_id)``."""
        with self._gate.admit(deadline):
            snapshot = self._current()
            return snapshot.epoch, snapshot.index.count_ranked_above(
                score, article_id)

    # ------------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """Per-shard health rung: fresh | lagging | tripped."""
        breaker_state = self._breaker.state
        epoch = self._snapshot_epoch()
        if breaker_state == OPEN:
            status = "tripped"
        elif epoch < self._target_epoch:
            status = "lagging"
        else:
            status = "fresh"
        return {
            "shard": self.spec.shard,
            "status": status,
            "epoch": epoch,
            "target_epoch": self._target_epoch,
            "articles": len(self._dataset.articles),
            "breaker": breaker_state,
            "refreshes_total": self._refreshes_total,
            "vetoes_total": self._vetoes_total,
            "last_violations": list(self._last_violations),
            "requests_admitted_total": self._gate.admitted_total,
            "requests_shed_total": self._gate.shed_total,
        }

    def close(self) -> None:
        if self._reader is not None:
            self._reader.close()
            self._reader = None


#: Methods a pipe request may invoke on the server (everything else is
#: rejected — the pipe is a control channel, not an RPC free-for-all).
_SHARD_METHODS = frozenset({"absorb", "refresh", "top", "score_of",
                            "count_above", "health"})


def _shard_process_main(conn: "Connection", spec: ShardSpec,
                        layout: SegmentLayout, articles: List[Article],
                        config: ShardConfig) -> None:
    """Worker-process request loop around one :class:`ShardServer`.

    Protocol: requests are ``(request_id, method, kwargs)``; responses
    ``(request_id, "ok", result)`` or ``(request_id, "error", exc)``.
    An :class:`InjectedCrash` becomes a hard ``os._exit`` — the parent
    must observe a dead pipe, exactly like a real worker death.
    """
    server = ShardServer(spec, layout, articles, config)
    try:
        while True:
            try:
                request = conn.recv()
            except (EOFError, OSError):
                break
            request_id, method, kwargs = request
            if method == "stop":
                conn.send((request_id, "ok", None))
                break
            try:
                if method not in _SHARD_METHODS:
                    raise ServeError(f"unknown shard method {method!r}")
                result = getattr(server, method)(**kwargs)
            except InjectedCrash:
                os._exit(WORKER_CRASH_EXIT_CODE)
            except Exception as exc:  # noqa: BLE001 - shipped to parent
                conn.send((request_id, "error", exc))
            else:
                conn.send((request_id, "ok", result))
    finally:
        server.close()
        conn.close()


class InlineShardHandle:
    """In-process shard (tests, small corpora): no pipe, same contract.

    The one thing it must still emulate is the process boundary's
    failure mode: an :class:`InjectedCrash` escaping the server marks
    the handle dead — the inline analogue of the worker's hard exit —
    and every later call raises :class:`ShardUnavailableError`, exactly
    what the gateway sees from a dead pipe.
    """

    mode = "inline"

    def __init__(self, spec: ShardSpec, layout: SegmentLayout,
                 articles: List[Article], config: ShardConfig) -> None:
        self.spec = spec
        self._server = ShardServer(spec, layout, articles, config)
        self._dead = False

    @property
    def alive(self) -> bool:
        return not self._dead

    def call(self, method: str, timeout: Optional[float] = None,
             **kwargs: object) -> object:
        if self._dead:
            raise ShardUnavailableError(
                f"shard {self.spec.shard} is down (crashed inline)",
                shard=self.spec.shard)
        try:
            return getattr(self._server, method)(**kwargs)
        except InjectedCrash as exc:
            self._dead = True
            self._server.close()
            raise ShardUnavailableError(
                f"shard {self.spec.shard} crashed: {exc}",
                shard=self.spec.shard) from None

    def stop(self) -> None:
        self._dead = True
        self._server.close()


class ProcessShardHandle:
    """Gateway-side handle for one shard worker process.

    Requests are serialized under a lock (one outstanding request per
    pipe); a timed-out request leaves its eventual response in the
    pipe, so replies are matched by request id and stale ones drained
    silently. A dead pipe (worker crashed) raises
    :class:`ShardUnavailableError` with the shard id — the gateway
    degrades or respawns, never blocks.
    """

    mode = "process"

    def __init__(self, spec: ShardSpec, layout: SegmentLayout,
                 articles: List[Article], config: ShardConfig,
                 timeout: float = 10.0) -> None:
        import multiprocessing

        self.spec = spec
        self._timeout = timeout
        self._lock = threading.Lock()
        self._request_id = 0
        self._stale_drained = 0
        self._dead = False
        context = multiprocessing.get_context()
        self._conn, child = context.Pipe()
        self._process = context.Process(
            target=_shard_process_main,
            args=(child, spec, layout, list(articles), config),
            daemon=True, name=f"repro-shard-{spec.shard}")
        self._process.start()
        child.close()

    @property
    def alive(self) -> bool:
        return not self._dead and self._process.is_alive()

    @property
    def exit_code(self) -> Optional[int]:
        # A dropped pipe is observed before the OS reaps the child;
        # join briefly so a just-crashed worker reports its code.
        if self._dead:
            self._process.join(timeout=5.0)
        return self._process.exitcode

    def call(self, method: str, timeout: Optional[float] = None,
             **kwargs: object) -> object:
        budget = self._timeout if timeout is None else timeout
        with self._lock:
            if self._dead:
                raise ShardUnavailableError(
                    f"shard {self.spec.shard} is down",
                    shard=self.spec.shard)
            self._request_id += 1
            request_id = self._request_id
            try:
                self._conn.send((request_id, method, kwargs))
            except (OSError, ValueError) as exc:
                self._mark_dead()
                raise ShardUnavailableError(
                    f"shard {self.spec.shard} pipe is broken: {exc}",
                    shard=self.spec.shard) from exc
            expires = time.monotonic() + budget
            while True:
                remaining = expires - time.monotonic()
                if remaining <= 0 or not self._conn.poll(
                        max(0.0, remaining)):
                    # The response (if it ever lands) is now stale;
                    # later calls drain it by request id.
                    raise ShardUnavailableError(
                        f"shard {self.spec.shard} timed out after "
                        f"{budget:.3f}s answering {method!r}",
                        shard=self.spec.shard)
                try:
                    response_id, status, payload = self._conn.recv()
                except (EOFError, OSError) as exc:
                    self._mark_dead()
                    raise ShardUnavailableError(
                        f"shard {self.spec.shard} died answering "
                        f"{method!r} (exit code "
                        f"{self._process.exitcode})",
                        shard=self.spec.shard) from exc
                if response_id != request_id:
                    self._stale_drained += 1
                    continue
                if status == "error":
                    raise payload
                return payload

    def _mark_dead(self) -> None:
        self._dead = True
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    @property
    def stale_drained(self) -> int:
        """Stale (timed-out) responses skipped while matching replies."""
        return self._stale_drained

    def stop(self, join_timeout: float = 5.0) -> None:
        """Graceful stop, escalating to terminate."""
        if not self._dead:
            try:
                self.call("stop", timeout=join_timeout)
            except Exception:  # noqa: BLE001 - best-effort shutdown
                pass
        self._process.join(timeout=join_timeout)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(timeout=join_timeout)
        self._mark_dead()
