"""Bounded admission: shed load instead of queueing unboundedly.

An :class:`AdmissionGate` caps how many read requests are in flight at
once. A request that finds a free slot proceeds immediately; one that
does not either waits — *bounded* by its :class:`repro.resilience.Deadline`
and by the gate's waiting-room size — or is shed right away with a
typed :class:`repro.errors.OverloadError`. Nothing ever queues without
a bound, so a traffic spike degrades to fast, explicit rejections
rather than a silently growing latency cliff.

Thread-safe; sheds and admissions are counted for ``health()``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ConfigError, OverloadError
from repro.resilience.policy import Deadline


class AdmissionGate:
    """Counting gate over the read path.

    Args:
        max_inflight: concurrent requests allowed past the gate.
        max_waiting: requests allowed to *wait* for a slot (0 = shed
            immediately when full). A waiter only waits as long as its
            request deadline allows.
    """

    def __init__(self, max_inflight: int = 64,
                 max_waiting: int = 0) -> None:
        if max_inflight <= 0:
            raise ConfigError(
                f"max_inflight must be positive, got {max_inflight}")
        if max_waiting < 0:
            raise ConfigError(
                f"max_waiting must be >= 0, got {max_waiting}")
        self.max_inflight = max_inflight
        self.max_waiting = max_waiting
        self._condition = threading.Condition()
        self._inflight = 0
        self._waiting = 0
        self._admitted_total = 0
        self._shed_total = 0

    # ------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def admitted_total(self) -> int:
        return self._admitted_total

    @property
    def shed_total(self) -> int:
        return self._shed_total

    # ------------------------------------------------------------------

    def _shed(self, why: str) -> None:
        self._shed_total += 1
        raise OverloadError(
            f"request shed: {why} ({self._inflight}/{self.max_inflight} "
            f"in flight, {self._waiting} waiting)",
            inflight=self._inflight, capacity=self.max_inflight)

    @contextmanager
    def admit(self, deadline: Optional[Deadline] = None) -> Iterator[None]:
        """Hold one in-flight slot for the ``with`` block.

        Raises :class:`OverloadError` (and counts the shed) when the
        gate is full and either no waiting is allowed, the waiting room
        is full, no deadline was given, or the deadline expires before
        a slot frees up.
        """
        with self._condition:
            if self._inflight >= self.max_inflight:
                if self.max_waiting == 0 or deadline is None:
                    self._shed("admission gate full")
                if self._waiting >= self.max_waiting:
                    self._shed("waiting room full")
                self._waiting += 1
                expires = time.monotonic() + deadline.seconds
                try:
                    # Spurious wakeups (and wakeups that lost the race
                    # for the freed slot) re-test the predicate and
                    # re-wait with a recomputed remaining budget; a
                    # waiter is only admitted while holding the lock
                    # with the predicate actually false.
                    while self._inflight >= self.max_inflight:
                        remaining = expires - time.monotonic()
                        if remaining <= 0:
                            self._shed("deadline expired while waiting "
                                       "for a slot")
                        self._condition.wait(remaining)
                except BaseException:
                    # This waiter may have consumed the release notify
                    # and then bailed (deadline, cancellation). Pass
                    # the wakeup on so a co-waiter with budget left is
                    # not stranded until the *next* release.
                    self._condition.notify()
                    raise
                finally:
                    # Every exit path — admission, timeout shed,
                    # exception — leaves the waiting room exactly once.
                    self._waiting -= 1
            self._inflight += 1
            self._admitted_total += 1
        try:
            yield
        finally:
            with self._condition:
                self._inflight -= 1
                self._condition.notify()
