"""Update-path circuit breaker: stop hammering a failing pipeline.

When the update path fails repeatedly — a poisoned feed, a sick solver,
a broken dependency — retrying every arriving batch only burns CPU and
floods logs while the reads it protects were never at risk (they serve
the last good snapshot). The :class:`CircuitBreaker` encodes the
standard answer:

* **closed** — updates flow; ``failure_threshold`` *consecutive*
  failures trip it open;
* **open** — updates are refused outright for a cooldown period drawn
  from a :class:`repro.resilience.RetryPolicy` backoff schedule (each
  re-trip waits longer, seeded jitter keeps runs reproducible);
* **half-open** — after the cooldown, exactly one probe update is let
  through; success closes the breaker (and resets the backoff),
  failure re-opens it with the next, longer cooldown.

The clock is injectable so the full state machine is unit-testable
without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ConfigError
from repro.resilience.policy import RetryDelays, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.handle import Observability

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding of breaker states (stable, documented order).
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

#: Backoff schedule used when no policy is given: 100 ms doubling to a
#: 30 s ceiling. ``max_retries`` is irrelevant here — the breaker draws
#: delays forever, it never "exhausts".
DEFAULT_COOLDOWN = RetryPolicy(max_retries=1_000_000, base_delay=0.1,
                               max_delay=30.0)


class CircuitBreaker:
    """Consecutive-failure breaker with backoff cooldowns.

    Args:
        failure_threshold: consecutive failures that trip closed->open.
        cooldown: backoff schedule for open periods (``base_delay``
            after the first trip, doubling per consecutive re-trip).
        clock: monotonic time source (injectable for tests).
        obs: optional observability handle — transitions open a
            ``serve.breaker`` span and move the
            ``repro_serve_breaker_state`` gauge.
    """

    def __init__(self, failure_threshold: int = 3,
                 cooldown: Optional[RetryPolicy] = None,
                 clock: Callable[[], float] = time.monotonic,
                 obs: Optional["Observability"] = None) -> None:
        if failure_threshold <= 0:
            raise ConfigError(
                f"failure_threshold must be positive, "
                f"got {failure_threshold}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown if cooldown is not None \
            else DEFAULT_COOLDOWN
        self._clock = clock
        self._obs = obs
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._delays: RetryDelays = self.cooldown.delays()
        self._open_until = 0.0
        self._opened_total = 0
        self._probe_inflight = False
        self._set_gauge()

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, with open->half-open promotion applied."""
        with self._lock:
            self._maybe_promote()
            return self._state

    @property
    def state_code(self) -> int:
        return STATE_CODES[self.state]

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    @property
    def opened_total(self) -> int:
        """How many times the breaker has tripped open."""
        return self._opened_total

    @property
    def cooldown_remaining(self) -> float:
        """Seconds until an open breaker will admit its probe (0 when
        not open)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0, self._open_until - self._clock())

    # ------------------------------------------------------------------

    def allow(self) -> bool:
        """May one update attempt proceed right now?

        In half-open state this *consumes* the single probe slot: the
        first caller gets ``True``, everyone else ``False`` until the
        probe's outcome is recorded.
        """
        with self._lock:
            self._maybe_promote()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            return False

    def record_success(self) -> None:
        """An allowed update attempt published successfully."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state != CLOSED:
                self._transition(CLOSED, "probe succeeded")
                self._delays = self.cooldown.delays()
            self._probe_inflight = False

    def record_failure(self) -> None:
        """An allowed update attempt failed (crash or guardrail veto)."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._trip("probe failed")
            elif self._state == CLOSED and \
                    self._consecutive_failures >= self.failure_threshold:
                self._trip(f"{self._consecutive_failures} consecutive "
                           f"failures")
            self._probe_inflight = False

    # ------------------------------------------------------------------

    def _maybe_promote(self) -> None:
        """Open -> half-open once the cooldown has elapsed (lock held)."""
        if self._state == OPEN and self._clock() >= self._open_until:
            self._transition(HALF_OPEN, "cooldown elapsed")
            self._probe_inflight = False

    def _trip(self, why: str) -> None:
        """-> open with the next backoff cooldown (lock held)."""
        pause = self._delays.next_delay()
        self._open_until = self._clock() + pause
        self._opened_total += 1
        self._transition(OPEN, f"{why}; cooldown {pause:.3f}s")
        if self._obs is not None:
            # A trip is an incident signal: the event lands on the
            # span, the event log, and (when a flight recorder is
            # attached) triggers an automatic incident capture.
            self._obs.event("serve.breaker_trip", reason=why,
                            cooldown=pause,
                            opened_total=self._opened_total)

    def _transition(self, state: str, why: str) -> None:
        previous = self._state
        self._state = state
        if self._obs is not None:
            with self._obs.span("serve.breaker", from_state=previous,
                                to_state=state, reason=why):
                pass
        self._set_gauge()

    def _set_gauge(self) -> None:
        if self._obs is not None:
            self._obs.metrics.gauge(
                "repro_serve_breaker_state",
                "Update-path circuit breaker state "
                "(0=closed, 1=half_open, 2=open).").set(
                STATE_CODES[self._state])
