"""repro.serve: degradation-first serving over a live ranking.

The subsystem keeps a scholarly index *answering* while its update path
misbehaves: reads land on an atomically-swapped, guardrail-validated
:class:`Snapshot`; a bounded :class:`AdmissionGate` sheds excess load
with typed errors; a :class:`CircuitBreaker` stops a failing update
pipeline from being hammered while the last good snapshot keeps
serving. The sharded tier (:class:`ShardedGateway` over per-shard
:class:`ShardServer` workers on the shared-memory score board) scales
the same ladder across processes: each shard degrades alone, and the
scatter-gather merge reproduces the single-process order
bit-identically. See ``docs/OPERATIONS.md`` ("Serving under failure"
and "Sharded serving") for the operational story.
"""

from repro.serve.admission import AdmissionGate
from repro.serve.breaker import (CLOSED, HALF_OPEN, OPEN, STATE_CODES,
                                 CircuitBreaker)
from repro.serve.gateway import GatewayReadResult, ShardedGateway
from repro.serve.guardrails import (GuardrailPolicy, validate_candidate,
                                    validate_shard_slice)
from repro.serve.load import LoadReport, run_load
from repro.serve.merge import merge_page_entries, merge_top_entries
from repro.serve.service import IngestReport, RankingService, ReadResult
from repro.serve.shard import (InlineShardHandle, ProcessShardHandle,
                               ShardConfig, ShardServer, ShardSnapshot,
                               ShardSpec, shard_of)
from repro.serve.sim import ServeSimulation, run_simulation
from repro.serve.snapshot import Snapshot

__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "STATE_CODES",
    "GatewayReadResult",
    "GuardrailPolicy",
    "validate_candidate",
    "validate_shard_slice",
    "IngestReport",
    "InlineShardHandle",
    "LoadReport",
    "merge_page_entries",
    "merge_top_entries",
    "ProcessShardHandle",
    "RankingService",
    "ReadResult",
    "run_load",
    "run_simulation",
    "ServeSimulation",
    "ShardConfig",
    "ShardedGateway",
    "ShardServer",
    "ShardSnapshot",
    "ShardSpec",
    "shard_of",
    "Snapshot",
]
