"""repro.serve: degradation-first serving over a live ranking.

The subsystem keeps a scholarly index *answering* while its update path
misbehaves: reads land on an atomically-swapped, guardrail-validated
:class:`Snapshot`; a bounded :class:`AdmissionGate` sheds excess load
with typed errors; a :class:`CircuitBreaker` stops a failing update
pipeline from being hammered while the last good snapshot keeps
serving. See ``docs/OPERATIONS.md`` ("Serving under failure") for the
operational story.
"""

from repro.serve.admission import AdmissionGate
from repro.serve.breaker import (CLOSED, HALF_OPEN, OPEN, STATE_CODES,
                                 CircuitBreaker)
from repro.serve.guardrails import GuardrailPolicy, validate_candidate
from repro.serve.service import IngestReport, RankingService, ReadResult
from repro.serve.sim import ServeSimulation, run_simulation
from repro.serve.snapshot import Snapshot

__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "STATE_CODES",
    "GuardrailPolicy",
    "validate_candidate",
    "IngestReport",
    "RankingService",
    "ReadResult",
    "ServeSimulation",
    "run_simulation",
    "Snapshot",
]
