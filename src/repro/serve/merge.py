"""Scatter-gather merge: per-shard top-k lists into the global order.

Every shard answers queries from its own :class:`repro.query.RankIndex`,
whose total order is *(score descending, article id ascending)* — the
same ``np.lexsort((ids, -values))`` the single-process index uses. A
k-way merge on the key ``(-score, article_id)`` over those sorted lists
therefore reproduces the single-process global order **bit-identically**
(scores are float64 end to end: shm round-trips them exactly, and the
merge compares, never recomputes). The only thing that changes across
the shard boundary is the ``rank`` numbers, which are positions local
to each shard's (possibly filtered) list — the merge renumbers them to
positions in the merged list, matching ``RankIndex.top`` /
``RankIndex.page`` semantics exactly.
"""

from __future__ import annotations

import heapq
from dataclasses import replace
from itertools import islice
from typing import Iterable, Iterator, List

from repro.errors import ConfigError
from repro.query import RankEntry


def _merged(shard_entries: Iterable[List[RankEntry]]
            ) -> Iterator[RankEntry]:
    return heapq.merge(*shard_entries,
                       key=lambda entry: (-entry.score, entry.article_id))


def merge_top_entries(shard_entries: Iterable[List[RankEntry]],
                      k: int) -> List[RankEntry]:
    """Best ``k`` of the union of per-shard sorted entry lists.

    Each input list must already be sorted by ``(-score, article_id)``
    (every ``RankIndex`` result is). Ranks are renumbered to positions
    in the merged list (1-based), so a filtered scatter-gather carries
    filtered-list ranks exactly like the single-process index.
    """
    if k <= 0:
        raise ConfigError("k must be positive")
    return [replace(entry, rank=rank)
            for rank, entry in enumerate(islice(_merged(shard_entries), k),
                                         start=1)]


def merge_page_entries(shard_entries: Iterable[List[RankEntry]],
                       offset: int, limit: int) -> List[RankEntry]:
    """Global slice ``[offset, offset+limit)`` of the merged order.

    Each shard must have contributed at least its best ``offset+limit``
    entries (fewer only if the shard is exhausted). Ranks are global
    positions (1-based), matching ``RankIndex.page``.
    """
    if offset < 0 or limit <= 0:
        raise ConfigError("offset must be >= 0 and limit positive")
    window = islice(_merged(shard_entries), offset, offset + limit)
    return [replace(entry, rank=offset + position + 1)
            for position, entry in enumerate(window)]
