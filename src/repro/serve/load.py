"""`repro serve-load`: sustained QPS against the sharded gateway.

Where ``serve-sim`` tells the single-process degradation story as a
health timeline, ``serve-load`` measures the *sharded* tier under
publish churn: reader threads hammer scatter-gather queries while the
feed ingests arrival batches (every publish rewrites the score board
and refreshes every shard), optionally with one shard crash/poisoned
through :class:`repro.resilience.FaultPlan`. It reports sustained QPS
and p50/p99 tail latency, the degradation observed while the fault was
live, and — the hard-gated part — merge parity: after the run settles,
the gateway's merged top-k must be **bit-identical** (ids, scores, tie
order) to the single-process :class:`RankingService` on the same
snapshot. The :meth:`LoadReport.to_report` RunReport is what CI diffs
against ``benchmarks/baselines/serve_load_smoke.json``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field, replace
from itertools import zip_longest
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import OverloadError, ServeError
from repro.engine.live import LiveRanker
from repro.engine.updates import BatchProvenance
from repro.obs.metrics import (FRESHNESS_BUCKETS, FRESHNESS_HELP,
                               FRESHNESS_METRIC)
from repro.resilience.faults import FaultPlan
from repro.serve.gateway import ShardedGateway
from repro.serve.sim import SIM_COOLDOWN, synthetic_batch

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.data.schema import ScholarlyDataset
    from repro.obs.handle import Observability
    from repro.obs.report import RunReport


def _percentile(sorted_values: List[float], quantile: float) -> float:
    if not sorted_values:
        return 0.0
    position = int(quantile * (len(sorted_values) - 1))
    return sorted_values[position]


@dataclass
class LoadReport:
    """Everything one ``serve-load`` run measured."""

    num_shards: int = 0
    mode: str = "inline"
    readers: int = 0
    batches: int = 0
    queries_total: int = 0
    queries_failed: int = 0
    queries_partial: int = 0
    reads_shed: int = 0
    wall_s: float = 0.0
    qps: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    avg_latency_ms: float = 0.0
    board_epoch: int = -1
    merge_mismatches: int = 0
    shards_missing: int = 0
    degraded_during: List[int] = field(default_factory=list)
    health: Dict[str, object] = field(default_factory=dict)
    freshness_served_count: int = 0
    freshness_served_mean_ms: float = 0.0
    incident_bundles: int = 0
    slo_breaches: List[str] = field(default_factory=list)
    status: str = "ok"
    error: Optional[str] = None

    def render(self) -> str:
        lines = [
            f"# serve-load: {self.num_shards} shard(s) [{self.mode}], "
            f"{self.readers} reader(s), {self.batches} batch(es)",
            f"queries      {self.queries_total} "
            f"({self.queries_partial} partial, "
            f"{self.queries_failed} failed, {self.reads_shed} shed)",
            f"throughput   {self.qps:.0f} qps over {self.wall_s:.2f}s",
            f"latency      p50 {self.p50_ms:.3f} ms, "
            f"p99 {self.p99_ms:.3f} ms, "
            f"avg {self.avg_latency_ms:.3f} ms",
            f"board epoch  {self.board_epoch}",
            f"parity       {self.merge_mismatches} merged-entry "
            f"mismatch(es) vs single-process service",
            f"degraded     shards {self.degraded_during or '[]'} during "
            f"faults; {self.shards_missing} still missing after repair",
            f"freshness    {self.freshness_served_count} publish(es), "
            f"mean {self.freshness_served_mean_ms:.3f} ms "
            f"arrival→published",
            f"incidents    {self.incident_bundles} bundle(s)"
            + (f", SLO breaches {self.slo_breaches}"
               if self.slo_breaches else ""),
            f"final health {self.health.get('status')!r}",
        ]
        if self.status != "ok":
            lines.append(f"# run {self.status}"
                         + (f": {self.error}" if self.error else ""))
        return "\n".join(lines)

    def to_json(self, indent: int = 2) -> str:
        payload = dict(self.__dict__)
        return json.dumps(payload, indent=indent, default=str)

    def to_report(self, name: str = "serve_load_smoke") -> "RunReport":
        """A ``RunReport`` for ``benchmarks/compare.py`` gating.

        Correctness metrics (``merge_mismatches``, ``queries_failed``,
        ``shards_missing``, ``num_shards``) are deterministic — CI
        hard-gates them; the latency metrics are wall-clock noise on
        shared runners and stay soft.
        """
        from repro.obs.report import RunReport

        report = RunReport(name)
        report.record_metric("num_shards", self.num_shards)
        report.record_metric("merge_mismatches", self.merge_mismatches)
        report.record_metric("queries_failed", self.queries_failed)
        report.record_metric("shards_missing", self.shards_missing)
        report.record_metric("board_epoch", self.board_epoch)
        report.record_metric("queries_total", self.queries_total)
        report.record_metric("p50_ms", round(self.p50_ms, 3))
        report.record_metric("p99_ms", round(self.p99_ms, 3))
        report.record_metric("avg_latency_ms",
                             round(self.avg_latency_ms, 3))
        report.record_metric("freshness_served_count",
                             self.freshness_served_count)
        report.record_metric("freshness_served_mean_ms",
                             round(self.freshness_served_mean_ms, 3))
        report.record_metric("incident_bundles", self.incident_bundles)
        report.record_metric("status", self.status)
        return report


def _parity_mismatches(gateway: ShardedGateway, k: int) -> int:
    """Merged-vs-single-process mismatch count (bit-exact compare)."""
    snapshot = gateway.service.snapshot()
    mismatches = 0
    probes = [
        (gateway.top_sync(k).entries, snapshot.index.top(k)),
    ]
    # One filtered probe too: filtered scatter-gather must renumber
    # filtered-list ranks exactly like the single index.
    years = sorted({entry.year for entry in snapshot.index.top(k)})
    if years:
        year_range = (years[0], years[len(years) // 2])
        probes.append((
            gateway.top_sync(k, year_range=year_range).entries,
            snapshot.index.top(k, year_range=year_range)))
    for merged, expected in probes:
        for got, want in zip_longest(merged, expected):
            if got is None or want is None or got != want:
                mismatches += 1
    return mismatches


def run_load(dataset: "ScholarlyDataset", *,
             num_shards: int = 2, mode: str = "inline",
             batches: int = 4, batch_size: int = 16,
             readers: int = 4, queries: int = 50, top: int = 10,
             crash_shard: Optional[int] = None,
             poison_shard: Optional[int] = None,
             fault_epoch: int = 1,
             auto_respawn: bool = False,
             seed: int = 0,
             obs: Optional["Observability"] = None,
             bundle_dir: Optional[Path] = None) -> LoadReport:
    """Drive concurrent readers against publish churn over K shards.

    ``crash_shard`` / ``poison_shard`` arm one injected shard fault at
    board epoch ``fault_epoch`` — with ``auto_respawn`` off (the
    default here) the degradation stays *visible* in ``health()`` until
    the post-run :meth:`ShardedGateway.repair`, which is exactly what
    the acceptance check wants to see.

    When no ``obs`` handle is passed the load run builds its own with
    a flight recorder attached: each synthetic batch is stamped with a
    :class:`~repro.engine.updates.BatchProvenance` arrival wall-clock,
    the report carries arrival→published freshness from the shared
    freshness histogram, and one :class:`~repro.obs.slo.SLOMonitor`
    tick while an injected shard fault is still visible captures an
    incident bundle (written under ``bundle_dir`` when given).
    """
    import random

    from repro.obs import FlightRecorder, Observability, SLOMonitor

    recorder = getattr(obs, "recorder", None)
    if obs is None:
        recorder = FlightRecorder(bundle_dir=bundle_dir)
        obs = Observability("serve-load", recorder=recorder)
    monitor = SLOMonitor(obs.metrics, recorder=recorder)

    fault_plan: Optional[FaultPlan] = None
    if crash_shard is not None or poison_shard is not None:
        fault_plan = FaultPlan(seed=seed)
        if crash_shard is not None:
            fault_plan.crash_shard(crash_shard, fault_epoch)
        if poison_shard is not None:
            fault_plan.poison_shard(poison_shard, fault_epoch)

    report = LoadReport(num_shards=num_shards, mode=mode,
                        readers=readers, batches=batches)
    live = LiveRanker(dataset, obs=obs)
    gateway = ShardedGateway(
        live, num_shards, mode=mode, obs=obs, fault_plan=fault_plan,
        auto_respawn=auto_respawn, shard_cooldown=SIM_COOLDOWN,
        max_inflight=max(64, 4 * readers))
    latencies: List[float] = []
    lock = threading.Lock()
    stop = threading.Event()

    def _reader(worker: int) -> None:
        rng = random.Random(seed * 1000 + worker)
        low, high = dataset.year_range()
        for query in range(queries):
            if stop.is_set():
                break
            started = time.perf_counter()
            try:
                if query % 3 == 2:
                    result = gateway.top_sync(
                        top, year_range=(low, rng.randint(low, high)))
                elif query % 3 == 1:
                    result = gateway.page_sync(offset=top, limit=top)
                else:
                    result = gateway.top_sync(top)
            except OverloadError:
                with lock:
                    report.reads_shed += 1
                continue
            except ServeError:
                with lock:
                    report.queries_failed += 1
                continue
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                report.queries_total += 1
                if not result.complete:
                    report.queries_partial += 1

    threads = [threading.Thread(target=_reader, args=(worker,),
                                daemon=True)
               for worker in range(readers)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()

    try:
        rng = random.Random(seed)
        base_ids = sorted(dataset.articles)
        next_id = base_ids[-1] + 1
        _, year = dataset.year_range()
        for _ in range(batches):
            batch = synthetic_batch(base_ids, next_id, batch_size,
                                    year, rng)
            # Stamp the arrival wall-clock so the publish path's
            # freshness histogram sees arrival→published latency.
            batch = replace(batch, provenance=BatchProvenance(
                arrivals=(time.time(),) * len(batch.articles)))
            next_id += batch_size
            gateway.ingest(batch)
    except Exception as exc:  # noqa: BLE001 - artifact must survive
        report.status = "failed"
        report.error = f"{type(exc).__name__}: {exc}"
    finally:
        if report.status != "ok":
            stop.set()
        for thread in threads:
            thread.join(timeout=60.0)
        stop.set()
        report.wall_s = time.perf_counter() - started

    try:
        # Degradation while the fault is live, *before* repair. An SLO
        # tick here sees the degraded-shards gauge while it is still
        # raised, so an injected fault breaches gateway-degradation
        # and freezes an incident bundle.
        during = gateway.health()
        report.degraded_during = list(during["degraded_shards"])
        if recorder is not None:
            recorder.record_health(during)
        for status in monitor.tick():
            if status.breaching:
                report.slo_breaches.append(status.name)
        gateway.repair()
        gateway.pump()
        report.board_epoch = gateway.board_epoch
        report.health = gateway.health()
        report.shards_missing = len(report.health["degraded_shards"])
        report.merge_mismatches = _parity_mismatches(gateway, top)
        if latencies:
            latencies.sort()
            report.qps = len(latencies) / max(report.wall_s, 1e-9)
            report.p50_ms = _percentile(latencies, 0.50) * 1e3
            report.p99_ms = _percentile(latencies, 0.99) * 1e3
            report.avg_latency_ms = \
                sum(latencies) / len(latencies) * 1e3
        fresh = obs.metrics.histogram(
            FRESHNESS_METRIC, FRESHNESS_HELP,
            buckets=FRESHNESS_BUCKETS, labels=("stage",))
        report.freshness_served_count = fresh.count(stage="publish")
        if report.freshness_served_count:
            report.freshness_served_mean_ms = round(
                fresh.sum(stage="publish")
                / report.freshness_served_count * 1000.0, 3)
        if recorder is not None:
            report.incident_bundles = len(recorder.captures)
    except Exception as exc:  # noqa: BLE001 - artifact must survive
        if report.status == "ok":
            report.status = "failed"
            report.error = f"{type(exc).__name__}: {exc}"
    finally:
        gateway.close()
    return report
