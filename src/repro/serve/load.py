"""`repro serve-load`: sustained QPS against the sharded gateway.

Where ``serve-sim`` tells the single-process degradation story as a
health timeline, ``serve-load`` measures the *sharded* tier under
publish churn: reader threads hammer scatter-gather queries while the
feed ingests arrival batches (every publish rewrites the score board
and refreshes every shard), optionally with one shard crash/poisoned
through :class:`repro.resilience.FaultPlan`. It reports sustained QPS
and p50/p99 tail latency, the degradation observed while the fault was
live, and — the hard-gated part — merge parity: after the run settles,
the gateway's merged top-k must be **bit-identical** (ids, scores, tie
order) to the single-process :class:`RankingService` on the same
snapshot. The :meth:`LoadReport.to_report` RunReport is what CI diffs
against ``benchmarks/baselines/serve_load_smoke.json``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from itertools import zip_longest
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import OverloadError, ServeError
from repro.engine.live import LiveRanker
from repro.resilience.faults import FaultPlan
from repro.serve.gateway import ShardedGateway
from repro.serve.sim import SIM_COOLDOWN, synthetic_batch

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.data.schema import ScholarlyDataset
    from repro.obs.handle import Observability
    from repro.obs.report import RunReport


def _percentile(sorted_values: List[float], quantile: float) -> float:
    if not sorted_values:
        return 0.0
    position = int(quantile * (len(sorted_values) - 1))
    return sorted_values[position]


@dataclass
class LoadReport:
    """Everything one ``serve-load`` run measured."""

    num_shards: int = 0
    mode: str = "inline"
    readers: int = 0
    batches: int = 0
    queries_total: int = 0
    queries_failed: int = 0
    queries_partial: int = 0
    reads_shed: int = 0
    wall_s: float = 0.0
    qps: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    avg_latency_ms: float = 0.0
    board_epoch: int = -1
    merge_mismatches: int = 0
    shards_missing: int = 0
    degraded_during: List[int] = field(default_factory=list)
    health: Dict[str, object] = field(default_factory=dict)
    status: str = "ok"
    error: Optional[str] = None

    def render(self) -> str:
        lines = [
            f"# serve-load: {self.num_shards} shard(s) [{self.mode}], "
            f"{self.readers} reader(s), {self.batches} batch(es)",
            f"queries      {self.queries_total} "
            f"({self.queries_partial} partial, "
            f"{self.queries_failed} failed, {self.reads_shed} shed)",
            f"throughput   {self.qps:.0f} qps over {self.wall_s:.2f}s",
            f"latency      p50 {self.p50_ms:.3f} ms, "
            f"p99 {self.p99_ms:.3f} ms, "
            f"avg {self.avg_latency_ms:.3f} ms",
            f"board epoch  {self.board_epoch}",
            f"parity       {self.merge_mismatches} merged-entry "
            f"mismatch(es) vs single-process service",
            f"degraded     shards {self.degraded_during or '[]'} during "
            f"faults; {self.shards_missing} still missing after repair",
            f"final health {self.health.get('status')!r}",
        ]
        if self.status != "ok":
            lines.append(f"# run {self.status}"
                         + (f": {self.error}" if self.error else ""))
        return "\n".join(lines)

    def to_json(self, indent: int = 2) -> str:
        payload = dict(self.__dict__)
        return json.dumps(payload, indent=indent, default=str)

    def to_report(self, name: str = "serve_load_smoke") -> "RunReport":
        """A ``RunReport`` for ``benchmarks/compare.py`` gating.

        Correctness metrics (``merge_mismatches``, ``queries_failed``,
        ``shards_missing``, ``num_shards``) are deterministic — CI
        hard-gates them; the latency metrics are wall-clock noise on
        shared runners and stay soft.
        """
        from repro.obs.report import RunReport

        report = RunReport(name)
        report.record_metric("num_shards", self.num_shards)
        report.record_metric("merge_mismatches", self.merge_mismatches)
        report.record_metric("queries_failed", self.queries_failed)
        report.record_metric("shards_missing", self.shards_missing)
        report.record_metric("board_epoch", self.board_epoch)
        report.record_metric("queries_total", self.queries_total)
        report.record_metric("p50_ms", round(self.p50_ms, 3))
        report.record_metric("p99_ms", round(self.p99_ms, 3))
        report.record_metric("avg_latency_ms",
                             round(self.avg_latency_ms, 3))
        report.record_metric("status", self.status)
        return report


def _parity_mismatches(gateway: ShardedGateway, k: int) -> int:
    """Merged-vs-single-process mismatch count (bit-exact compare)."""
    snapshot = gateway.service.snapshot()
    mismatches = 0
    probes = [
        (gateway.top_sync(k).entries, snapshot.index.top(k)),
    ]
    # One filtered probe too: filtered scatter-gather must renumber
    # filtered-list ranks exactly like the single index.
    years = sorted({entry.year for entry in snapshot.index.top(k)})
    if years:
        year_range = (years[0], years[len(years) // 2])
        probes.append((
            gateway.top_sync(k, year_range=year_range).entries,
            snapshot.index.top(k, year_range=year_range)))
    for merged, expected in probes:
        for got, want in zip_longest(merged, expected):
            if got is None or want is None or got != want:
                mismatches += 1
    return mismatches


def run_load(dataset: "ScholarlyDataset", *,
             num_shards: int = 2, mode: str = "inline",
             batches: int = 4, batch_size: int = 16,
             readers: int = 4, queries: int = 50, top: int = 10,
             crash_shard: Optional[int] = None,
             poison_shard: Optional[int] = None,
             fault_epoch: int = 1,
             auto_respawn: bool = False,
             seed: int = 0,
             obs: Optional["Observability"] = None) -> LoadReport:
    """Drive concurrent readers against publish churn over K shards.

    ``crash_shard`` / ``poison_shard`` arm one injected shard fault at
    board epoch ``fault_epoch`` — with ``auto_respawn`` off (the
    default here) the degradation stays *visible* in ``health()`` until
    the post-run :meth:`ShardedGateway.repair`, which is exactly what
    the acceptance check wants to see.
    """
    import random

    fault_plan: Optional[FaultPlan] = None
    if crash_shard is not None or poison_shard is not None:
        fault_plan = FaultPlan(seed=seed)
        if crash_shard is not None:
            fault_plan.crash_shard(crash_shard, fault_epoch)
        if poison_shard is not None:
            fault_plan.poison_shard(poison_shard, fault_epoch)

    report = LoadReport(num_shards=num_shards, mode=mode,
                        readers=readers, batches=batches)
    live = LiveRanker(dataset, obs=obs)
    gateway = ShardedGateway(
        live, num_shards, mode=mode, obs=obs, fault_plan=fault_plan,
        auto_respawn=auto_respawn, shard_cooldown=SIM_COOLDOWN,
        max_inflight=max(64, 4 * readers))
    latencies: List[float] = []
    lock = threading.Lock()
    stop = threading.Event()

    def _reader(worker: int) -> None:
        rng = random.Random(seed * 1000 + worker)
        low, high = dataset.year_range()
        for query in range(queries):
            if stop.is_set():
                break
            started = time.perf_counter()
            try:
                if query % 3 == 2:
                    result = gateway.top_sync(
                        top, year_range=(low, rng.randint(low, high)))
                elif query % 3 == 1:
                    result = gateway.page_sync(offset=top, limit=top)
                else:
                    result = gateway.top_sync(top)
            except OverloadError:
                with lock:
                    report.reads_shed += 1
                continue
            except ServeError:
                with lock:
                    report.queries_failed += 1
                continue
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                report.queries_total += 1
                if not result.complete:
                    report.queries_partial += 1

    threads = [threading.Thread(target=_reader, args=(worker,),
                                daemon=True)
               for worker in range(readers)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()

    try:
        rng = random.Random(seed)
        base_ids = sorted(dataset.articles)
        next_id = base_ids[-1] + 1
        _, year = dataset.year_range()
        for _ in range(batches):
            batch = synthetic_batch(base_ids, next_id, batch_size,
                                    year, rng)
            next_id += batch_size
            gateway.ingest(batch)
    except Exception as exc:  # noqa: BLE001 - artifact must survive
        report.status = "failed"
        report.error = f"{type(exc).__name__}: {exc}"
    finally:
        if report.status != "ok":
            stop.set()
        for thread in threads:
            thread.join(timeout=60.0)
        stop.set()
        report.wall_s = time.perf_counter() - started

    try:
        # Degradation while the fault is live, *before* repair.
        during = gateway.health()
        report.degraded_during = list(during["degraded_shards"])
        gateway.repair()
        gateway.pump()
        report.board_epoch = gateway.board_epoch
        report.health = gateway.health()
        report.shards_missing = len(report.health["degraded_shards"])
        report.merge_mismatches = _parity_mismatches(gateway, top)
        if latencies:
            latencies.sort()
            report.qps = len(latencies) / max(report.wall_s, 1e-9)
            report.p50_ms = _percentile(latencies, 0.50) * 1e3
            report.p99_ms = _percentile(latencies, 0.99) * 1e3
            report.avg_latency_ms = \
                sum(latencies) / len(latencies) * 1e3
    except Exception as exc:  # noqa: BLE001 - artifact must survive
        if report.status == "ok":
            report.status = "failed"
            report.error = f"{type(exc).__name__}: {exc}"
    finally:
        gateway.close()
    return report
