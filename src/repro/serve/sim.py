"""Simulated serving workload: readers vs a (possibly faulty) feed.

:func:`run_simulation` stands up a :class:`RankingService` over a
dataset, points reader threads at it, and feeds synthetic arrival
batches — optionally crashing or NaN-poisoning chosen batches through
the deterministic :class:`repro.resilience.FaultPlan` hooks. After the
feed, it keeps pumping until the breaker's half-open probe recovers the
pipeline (or gives up), recording a health-timeline tick per step. This
is what ``repro serve-sim`` runs and what CI archives as the
health-timeline artifact.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import OverloadError
from repro.data.schema import Article
from repro.engine.live import LiveRanker
from repro.engine.updates import UpdateBatch
from repro.resilience.faults import FaultPlan
from repro.resilience.policy import RetryPolicy
from repro.serve.breaker import CircuitBreaker
from repro.serve.service import RankingService

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.data.schema import ScholarlyDataset
    from repro.obs.handle import Observability

#: Short breaker cooldowns so a simulation recovers in wall-clock
#: milliseconds, not the production default's seconds.
SIM_COOLDOWN = RetryPolicy(max_retries=1_000_000, base_delay=0.01,
                           max_delay=0.05, jitter=0.0)


def synthetic_batch(base_ids: List[int], next_id: int, size: int,
                    year: int, rng: random.Random) -> UpdateBatch:
    """``size`` fresh articles (ids from ``next_id``) citing the base.

    Ids are handed out by the caller's monotonic counter, *not* derived
    from the current dataset: a deferred or quarantined batch must not
    cause a later batch to reuse its ids.
    """
    articles = tuple(
        Article(id=next_id + offset,
                title=f"synthetic-arrival-{next_id + offset}",
                year=year, venue_id=None, author_ids=(),
                references=tuple(rng.sample(base_ids,
                                            min(3, len(base_ids)))))
        for offset in range(size))
    return UpdateBatch(articles=articles)


@dataclass
class ServeSimulation:
    """Everything a ``serve-sim`` run observed."""

    timeline: List[Dict[str, object]] = field(default_factory=list)
    health: Dict[str, object] = field(default_factory=dict)
    quarantined: List[Dict[str, object]] = field(default_factory=list)
    reads_total: int = 0
    reads_shed: int = 0
    read_failures: List[str] = field(default_factory=list)
    #: "ok" | "degraded" (run ended with batches still behind, e.g. a
    #: tripped breaker) | "failed" (the run raised mid-tick). The
    #: timeline up to that point is always preserved so the artifact is
    #: never silently missing.
    status: str = "ok"
    error: Optional[str] = None

    def render(self) -> str:
        """The health timeline as aligned text lines."""
        lines = ["# tick  phase    status       epoch  behind  breaker"
                 "    quarantined  shed"]
        for entry in self.timeline:
            lines.append(
                f"{entry['tick']:6d}  {entry['phase']:<7}  "
                f"{entry['status']:<11}  {entry['epoch']:5d}  "
                f"{entry['batches_behind']:6d}  "
                f"{entry['breaker']:<9}  "
                f"{entry['quarantined_total']:11d}  "
                f"{entry['shed_total']:4d}")
        lines.append(
            f"# reads: {self.reads_total} served, "
            f"{self.reads_shed} shed; final status "
            f"{self.health.get('status')!r} at epoch "
            f"{self.health.get('epoch')}")
        if self.status != "ok":
            lines.append(f"# run {self.status}"
                         + (f": {self.error}" if self.error else ""))
        for record in self.quarantined:
            lines.append(f"# quarantined batch {record['index']}: "
                         + "; ".join(record["reasons"]))
        return "\n".join(lines)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps({
            "status": self.status,
            "error": self.error,
            "timeline": self.timeline,
            "health": self.health,
            "quarantined": self.quarantined,
            "reads_total": self.reads_total,
            "reads_shed": self.reads_shed,
            "read_failures": self.read_failures,
        }, indent=indent)


def run_simulation(dataset: "ScholarlyDataset", *,
                   batches: int = 6, batch_size: int = 20,
                   readers: int = 2, top: int = 10,
                   crash_batch: Optional[int] = None,
                   poison_batch: Optional[int] = None,
                   failure_threshold: int = 2,
                   max_recovery_ticks: int = 40,
                   seed: int = 0,
                   obs: Optional["Observability"] = None
                   ) -> ServeSimulation:
    """Drive a read/write workload against a fresh service.

    ``crash_batch`` / ``poison_batch`` arm one injected update-path
    crash / one NaN poisoning at that 0-based batch index. After the
    feed, the pipeline is pumped until it drains or
    ``max_recovery_ticks`` elapse — with faults armed this is where the
    breaker's open -> half-open -> closed recovery shows up in the
    timeline.
    """
    fault_plan = FaultPlan()
    if crash_batch is not None:
        fault_plan.crash_batch(crash_batch)
    if poison_batch is not None:
        fault_plan.poison_batch(poison_batch)

    live = LiveRanker(dataset, obs=obs)
    breaker = CircuitBreaker(failure_threshold=failure_threshold,
                             cooldown=SIM_COOLDOWN, obs=obs)
    service = RankingService(live, breaker=breaker, obs=obs,
                             fault_plan=fault_plan,
                             max_batch_attempts=2)
    sim = ServeSimulation()
    base_ids = sorted(dataset.articles)
    next_id = base_ids[-1] + 1
    _, year = dataset.year_range()

    stop = threading.Event()
    counts_lock = threading.Lock()

    def _reader() -> None:
        while not stop.is_set():
            try:
                service.top(top)
            except OverloadError:
                with counts_lock:
                    sim.reads_shed += 1
            except Exception as exc:  # noqa: BLE001 - reported, not fatal
                with counts_lock:
                    sim.read_failures.append(
                        f"{type(exc).__name__}: {exc}")
                return
            else:
                with counts_lock:
                    sim.reads_total += 1

    threads = [threading.Thread(target=_reader, daemon=True)
               for _ in range(readers)]
    for thread in threads:
        thread.start()

    def _tick(tick: int, phase: str, status: str) -> None:
        health = service.health()
        sim.timeline.append({
            "tick": tick, "phase": phase, "status": status,
            "epoch": health["epoch"],
            "batches_behind": health["batches_behind"],
            "breaker": health["breaker"],
            "quarantined_total": health["quarantined_total"],
            "shed_total": health["requests_shed_total"],
        })

    try:
        rng = random.Random(seed)
        tick = 0
        for _ in range(batches):
            batch = synthetic_batch(base_ids, next_id, batch_size,
                                    year, rng)
            next_id += batch_size
            report = service.ingest(batch)
            _tick(tick, "ingest", report.status)
            tick += 1
        recovery = 0
        while service.batches_behind() and recovery < max_recovery_ticks:
            remaining = breaker.cooldown_remaining
            if remaining > 0:
                time.sleep(remaining)
            published, quarantined = service.pump()
            status = "published" if published else (
                "quarantined" if quarantined else "waiting")
            _tick(tick, "recover", status)
            tick += 1
            recovery += 1
        if service.batches_behind():
            # The run ended still behind (e.g. the breaker stayed
            # tripped past the recovery budget) — degraded, not lost.
            sim.status = "degraded"
    except Exception as exc:  # noqa: BLE001 - artifact must survive
        # A mid-tick crash must not lose the timeline recorded so far:
        # CI archives it either way (mirrors `repro profile`'s
        # status-failed RunReport).
        sim.status = "failed"
        sim.error = f"{type(exc).__name__}: {exc}"
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)

    sim.health = service.health()
    sim.quarantined = [record.report() for record in service.quarantined]
    return sim
