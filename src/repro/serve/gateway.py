"""Sharded scatter-gather gateway over the shm score board.

:class:`ShardedGateway` joins the two halves built by the earlier
layers into one multi-process serving system:

* **Update path (single updater)** — a composed
  :class:`~repro.serve.service.RankingService` owns the live engine,
  the publish guardrails, quarantine, and the update breaker exactly as
  in the single-process tier. Whenever it publishes a new snapshot, the
  gateway writes the full ``(ids, scores)`` state to the shared-memory
  :class:`~repro.engine.shm.ScoreBoardWriter` (append-only ids, one
  epoch bump) and scatters a ``refresh`` command to every shard. Each
  shard then performs its *own* guardrailed swap from the board — a
  poisoned or crashed shard degrades alone.
* **Read path (scatter-gather)** — ``top``/``page``/``rank_of``
  fan out to every shard (asyncio over a thread pool, since the pipe
  handles block) and merge with
  :func:`~repro.serve.merge.merge_top_entries`, which reproduces the
  single-process tie order bit-identically. A shard that cannot answer
  (dead worker, timeout) is skipped and reported as degraded in the
  result and in :meth:`health` — the query still answers from the
  remaining shards.

Degradation rungs per shard: **fresh** → **lagging** (vetoed/deferred
refresh, last good shard snapshot serving) → **tripped** (shard breaker
open) → **down** (process dead / pipe broken). :meth:`repair` respawns
dead shards and re-refreshes lagging ones; :meth:`health` reports every
rung without ever taking a shard's lock.
"""

from __future__ import annotations

import asyncio
import functools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional,
                    Tuple, Union)

import numpy as np

from repro.errors import ConfigError, ServeError, ShardUnavailableError
from repro.data.schema import Article
from repro.engine.shm import ScoreBoardWriter
from repro.query import RankEntry
from repro.resilience.policy import Deadline, RetryPolicy
from repro.serve.guardrails import GuardrailPolicy
from repro.serve.merge import merge_page_entries, merge_top_entries
from repro.serve.service import IngestReport, RankingService
from repro.serve.shard import (InlineShardHandle, ProcessShardHandle,
                               ShardConfig, ShardSpec, shard_of)

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.engine.live import LiveRanker
    from repro.engine.updates import UpdateBatch
    from repro.obs.handle import Observability
    from repro.resilience.faults import FaultPlan

ShardHandle = Union[InlineShardHandle, ProcessShardHandle]


@dataclass(frozen=True)
class GatewayReadResult:
    """Merged entries plus which shards actually answered."""

    entries: List[RankEntry]
    #: freshness floor: the lowest board epoch among answering shards.
    epoch: int
    shards_total: int
    shards_answered: int
    degraded: Tuple[int, ...] = ()

    @property
    def complete(self) -> bool:
        return self.shards_answered == self.shards_total


class ShardedGateway:
    """K shards behind one scatter-gather front door.

    Args:
        live: bootstrapped :class:`LiveRanker` (the global update path).
        num_shards: partitions of the article id space
            (``article_id % num_shards``).
        mode: ``"process"`` (worker process per shard, scores via shm)
            or ``"inline"`` (same-process shards; tests, small corpora).
        guardrails: shared policy for the service publish *and* each
            shard's slice validation.
        obs: observability handle — per-shard
            ``repro_gateway_*`` metrics and a ``gateway.publish`` span
            per board publish (single-updater path only).
        fault_plan: deterministic chaos — batch faults hit the service,
            shard faults hit shard refreshes.
        board_capacity: score board slots (default: 4x the bootstrap
            corpus, headroom for arrivals).
        score_dtype: dtype of the score board's serving lanes —
            ``numpy.float64`` (default) or ``numpy.float32`` (halves
            board score bytes; every publish is guarded by the
            :data:`repro.engine.shm.FLOAT32_PARITY_RTOL` tolerance
            contract against its float64 original, and shard reads
            still return float64).
        call_timeout: per-shard pipe call budget in seconds.
        auto_respawn: respawn a dead shard during refresh (reads never
            respawn — they degrade; :meth:`repair` does the rest).
        trace_reads: open a ``gateway.read`` span per *sync* read
            (``top_sync``/``page_sync``). The tracer is a
            single-threaded context stack, so enable this only for
            single-threaded use; the publish/refresh path is always
            traced (it has exactly one updater).
    """

    def __init__(self, live: "LiveRanker", num_shards: int = 2, *,
                 mode: str = "process",
                 guardrails: Optional[GuardrailPolicy] = None,
                 obs: Optional["Observability"] = None,
                 fault_plan: Optional["FaultPlan"] = None,
                 board_capacity: Optional[int] = None,
                 score_dtype: "np.dtype" = np.float64,
                 shard_failure_threshold: int = 3,
                 shard_cooldown: Optional[RetryPolicy] = None,
                 max_inflight: int = 64, max_waiting: int = 0,
                 call_timeout: float = 10.0,
                 auto_respawn: bool = True,
                 max_refresh_attempts: int = 3,
                 max_batch_attempts: int = 3,
                 default_deadline: Optional[Deadline] = None,
                 trace_reads: bool = False,
                 **service_kwargs: object) -> None:
        if num_shards <= 0:
            raise ConfigError(
                f"num_shards must be positive, got {num_shards}")
        if mode not in ("process", "inline"):
            raise ConfigError(
                f"mode must be 'process' or 'inline', got {mode!r}")
        if max_refresh_attempts <= 0:
            raise ConfigError("max_refresh_attempts must be positive")
        self.num_shards = num_shards
        self.mode = mode
        self._obs = obs
        self._call_timeout = call_timeout
        self._auto_respawn = auto_respawn
        self._max_refresh_attempts = max_refresh_attempts
        self._default_deadline = default_deadline
        self._trace_reads = trace_reads
        self._stats_lock = threading.Lock()
        self._closed = False

        self._service = RankingService(
            live, guardrails=guardrails, obs=obs, fault_plan=fault_plan,
            max_batch_attempts=max_batch_attempts,
            **service_kwargs)
        self._shard_config = ShardConfig(
            guardrails=self._service._guardrails,
            max_inflight=max_inflight, max_waiting=max_waiting,
            failure_threshold=shard_failure_threshold,
            cooldown=shard_cooldown, fault_plan=fault_plan)

        articles = live.dataset.articles
        capacity = board_capacity if board_capacity is not None \
            else max(4 * len(articles), 4096)
        self._writer = ScoreBoardWriter(capacity, dtype=score_dtype)
        self._board_epoch = -1
        self._published_ids: List[int] = []
        self._published_set: set = set()
        self._last_published_snapshot = None

        # Cumulative per-shard ownership: the source of truth for
        # respawns and for delta metadata sync before each refresh.
        self._owned: List[Dict[int, Article]] = [
            {} for _ in range(num_shards)]
        self._synced: List[set] = [set() for _ in range(num_shards)]
        self._refresh_attempts: Dict[Tuple[int, int], int] = {}
        self._shard_status: List[Dict[str, object]] = [
            {"shard": shard, "status": "fresh"}
            for shard in range(num_shards)]
        self._respawns_total = 0

        self._executor = ThreadPoolExecutor(
            max_workers=num_shards, thread_name_prefix="repro-gateway")
        self._handles: List[ShardHandle] = []
        try:
            self._handles = [self._spawn(shard)
                             for shard in range(num_shards)]
            self._maybe_publish()
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    # shard lifecycle

    def _spawn(self, shard: int) -> ShardHandle:
        spec = ShardSpec(shard=shard, num_shards=self.num_shards)
        articles = list(self._owned[shard].values())
        self._synced[shard] = set(self._owned[shard])
        if self.mode == "inline":
            return InlineShardHandle(spec, self._writer.layout, articles,
                                     self._shard_config)
        return ProcessShardHandle(spec, self._writer.layout, articles,
                                  self._shard_config,
                                  timeout=self._call_timeout)

    def _respawn(self, shard: int) -> None:
        try:
            self._handles[shard].stop()
        except Exception:  # noqa: BLE001 - it is already sick
            pass
        self._handles[shard] = self._spawn(shard)
        self._respawns_total += 1
        self._count_shard(shard, "respawn")

    # ------------------------------------------------------------------
    # update path (single updater)

    def ingest(self, batch: "UpdateBatch") -> IngestReport:
        """Feed one arrival batch through the composed service, then
        propagate any new snapshot to the board and every shard."""
        report = self._service.ingest(batch)
        self._maybe_publish()
        return report

    def pump(self) -> Tuple[int, int]:
        """Drain deferred service batches (breaker recovery), then
        propagate. Returns the service's ``(published, quarantined)``."""
        outcome = self._service.pump()
        self._maybe_publish()
        return outcome

    def _maybe_publish(self) -> None:
        """Board publish + shard scatter iff the snapshot moved."""
        snapshot = self._service.snapshot()
        if snapshot is self._last_published_snapshot:
            return
        span = self._obs.span("gateway.publish",
                              service_epoch=snapshot.epoch,
                              board_epoch=self._board_epoch + 1) \
            if self._obs is not None else None
        if span is not None:
            span.__enter__()
        try:
            self._publish_board(snapshot)
            self._partition_new_articles()
            self._sync_shards()
        finally:
            if span is not None:
                span.__exit__(None, None, None)

    def _publish_board(self, snapshot) -> None:
        by_id = snapshot.ranking.by_id()
        new_ids = [article_id for article_id in by_id
                   if article_id not in self._published_set]
        order = self._published_ids + new_ids
        if len(order) != len(by_id):
            # Articles are never removed; a shrink means the snapshot
            # and the board disagree about the corpus.
            raise ServeError(
                f"published corpus shrank: board has "
                f"{len(self._published_ids)} ids, snapshot has "
                f"{len(by_id)}")
        scores = np.fromiter((by_id[article_id] for article_id in order),
                             dtype=np.float64, count=len(order))
        epoch = self._board_epoch + 1
        try:
            self._writer.publish(
                np.asarray(order, dtype=np.int64), scores, epoch)
        except ValueError as exc:
            raise ServeError(f"score board publish failed: {exc}") \
                from exc
        self._board_epoch = epoch
        self._published_ids = order
        self._published_set.update(new_ids)
        self._last_published_snapshot = snapshot

    def _partition_new_articles(self) -> None:
        dataset = self._service._live.dataset
        for article_id, article in dataset.articles.items():
            shard = shard_of(article_id, self.num_shards)
            if article_id not in self._owned[shard]:
                self._owned[shard][article_id] = article

    def _sync_shards(self) -> None:
        for shard in range(self.num_shards):
            self._shard_status[shard] = self._refresh_shard(shard)

    def _refresh_shard(self, shard: int) -> Dict[str, object]:
        """Delta-sync metadata and refresh one shard to the board
        epoch, respawning a dead worker up to the attempt budget.

        Runs only on the single updater thread, so the ``gateway.
        refresh`` span (nested under ``gateway.publish`` during a
        scatter, a root during :meth:`repair`) is safe to open."""
        from repro.obs.handle import maybe_span

        epoch = self._board_epoch
        with maybe_span(self._obs, "gateway.refresh", shard=shard,
                        epoch=epoch) as span:
            report = self._refresh_shard_attempts(shard, epoch)
            if span is not None and hasattr(span, "attributes"):
                span.attributes["status"] = report.get("status")
            return report

    def _refresh_shard_attempts(self, shard: int,
                                epoch: int) -> Dict[str, object]:
        key = (shard, epoch)
        while True:
            attempt = self._refresh_attempts.get(key, 0)
            if attempt >= self._max_refresh_attempts:
                return {"shard": shard, "status": "down",
                        "epoch": -1,
                        "error": "refresh attempts exhausted"}
            self._refresh_attempts[key] = attempt + 1
            handle = self._handles[shard]
            try:
                delta = [self._owned[shard][article_id]
                         for article_id in self._owned[shard]
                         if article_id not in self._synced[shard]]
                if delta:
                    handle.call("absorb", articles=delta)
                    self._synced[shard].update(
                        article.id for article in delta)
                report = handle.call("refresh", epoch=epoch,
                                     attempt=attempt)
            except ShardUnavailableError as exc:
                self._count_shard(shard, "unavailable")
                if self._auto_respawn:
                    self._respawn(shard)
                    continue
                return {"shard": shard, "status": "down", "epoch": -1,
                        "error": str(exc)}
            self._count_shard(shard, str(report.get("status")))
            return report

    def repair(self) -> List[Dict[str, object]]:
        """Respawn dead shards and re-refresh non-fresh ones.

        The per-(shard, epoch) attempt counter keeps advancing across
        repairs, so a scripted fault with ``times=t`` stops firing once
        its budget is spent — deterministic recovery.
        """
        for shard in range(self.num_shards):
            status = self._shard_status[shard].get("status")
            if not self._handles[shard].alive:
                self._respawn(shard)
                status = "down"
            if status != "refreshed":
                self._shard_status[shard] = self._refresh_shard(shard)
        self._set_degraded_gauge()
        return list(self._shard_status)

    # ------------------------------------------------------------------
    # read path (scatter-gather)

    def _scatter(self, method: str, **kwargs: object
                 ) -> Tuple[List[Tuple[int, object]], List[int]]:
        """Call every shard serially; returns (answers, degraded)."""
        answers: List[Tuple[int, object]] = []
        degraded: List[int] = []
        for shard, handle in enumerate(self._handles):
            try:
                answers.append((shard, handle.call(method, **kwargs)))
            except ShardUnavailableError:
                self._count_shard(shard, "unavailable")
                degraded.append(shard)
        return answers, degraded

    async def _scatter_async(self, method: str, **kwargs: object
                             ) -> Tuple[List[Tuple[int, object]],
                                        List[int]]:
        """Concurrent scatter over the pipe handles (they block)."""
        loop = asyncio.get_running_loop()
        futures = [
            loop.run_in_executor(
                self._executor,
                functools.partial(handle.call, method, **kwargs))
            for handle in self._handles]
        outcomes = await asyncio.gather(*futures,
                                        return_exceptions=True)
        answers: List[Tuple[int, object]] = []
        degraded: List[int] = []
        for shard, outcome in enumerate(outcomes):
            if isinstance(outcome, ShardUnavailableError):
                self._count_shard(shard, "unavailable")
                degraded.append(shard)
            elif isinstance(outcome, BaseException):
                raise outcome
            else:
                answers.append((shard, outcome))
        return answers, degraded

    def _merge_read(self, answers: List[Tuple[int, object]],
                    degraded: List[int],
                    merge: Callable[[List[List[RankEntry]]],
                                    List[RankEntry]]
                    ) -> GatewayReadResult:
        if not answers:
            self._count_query("failed")
            raise ServeError(
                f"no shard answered (all {self.num_shards} degraded)")
        epochs = [epoch for _, (epoch, _) in answers]
        entries = merge([shard_entries
                         for _, (_, shard_entries) in answers])
        self._count_query("merged" if not degraded else "partial")
        return GatewayReadResult(
            entries=entries, epoch=min(epochs),
            shards_total=self.num_shards,
            shards_answered=len(answers),
            degraded=tuple(degraded))

    def _read_kwargs(self, deadline: Optional[Deadline]
                     ) -> Dict[str, object]:
        return {"deadline": deadline if deadline is not None
                else self._default_deadline}

    async def top(self, k: int = 10, venue_id: Optional[int] = None,
                  author_id: Optional[int] = None,
                  year_range: Optional[Tuple[int, int]] = None,
                  deadline: Optional[Deadline] = None
                  ) -> GatewayReadResult:
        """Merged best ``k``; degraded shards are skipped, not fatal."""
        answers, degraded = await self._scatter_async(
            "top", k=k, venue_id=venue_id, author_id=author_id,
            year_range=year_range, **self._read_kwargs(deadline))
        return self._merge_read(
            answers, degraded,
            lambda entries: merge_top_entries(entries, k))

    def _timed_read(self, op: str, fn: Callable[[], GatewayReadResult]
                    ) -> GatewayReadResult:
        """One sync scatter-gather read with latency accounting and,
        when ``trace_reads`` is on, a ``gateway.read`` span."""
        if self._obs is None:
            return fn()
        span = self._obs.span("gateway.read", op=op,
                              board_epoch=self._board_epoch) \
            if self._trace_reads else nullcontext()
        started = time.perf_counter()
        try:
            with span:
                return fn()
        finally:
            elapsed = time.perf_counter() - started
            with self._stats_lock:
                self._obs.metrics.histogram(
                    "repro_gateway_read_latency_seconds",
                    "Wall-clock duration of sync scatter-gather "
                    "reads.").observe(elapsed)

    def top_sync(self, k: int = 10, venue_id: Optional[int] = None,
                 author_id: Optional[int] = None,
                 year_range: Optional[Tuple[int, int]] = None,
                 deadline: Optional[Deadline] = None
                 ) -> GatewayReadResult:
        """Blocking :meth:`top` (serial scatter; CLI and tests)."""
        def _run() -> GatewayReadResult:
            answers, degraded = self._scatter(
                "top", k=k, venue_id=venue_id, author_id=author_id,
                year_range=year_range, **self._read_kwargs(deadline))
            return self._merge_read(
                answers, degraded,
                lambda entries: merge_top_entries(entries, k))

        return self._timed_read("top", _run)

    async def page(self, offset: int, limit: int,
                   deadline: Optional[Deadline] = None
                   ) -> GatewayReadResult:
        """Merged global slice ``[offset, offset+limit)``."""
        answers, degraded = await self._scatter_async(
            "top", k=offset + limit, **self._read_kwargs(deadline))
        return self._merge_read(
            answers, degraded,
            lambda entries: merge_page_entries(entries, offset, limit))

    def page_sync(self, offset: int, limit: int,
                  deadline: Optional[Deadline] = None
                  ) -> GatewayReadResult:
        def _run() -> GatewayReadResult:
            answers, degraded = self._scatter(
                "top", k=offset + limit, **self._read_kwargs(deadline))
            return self._merge_read(
                answers, degraded,
                lambda entries: merge_page_entries(entries, offset,
                                                   limit))

        return self._timed_read("page", _run)

    def rank_of(self, article_id: int,
                deadline: Optional[Deadline] = None) -> int:
        """1-based global rank — needs *every* shard, so a degraded
        shard raises :class:`ShardUnavailableError` (an exact rank over
        a partial corpus would be a lie)."""
        owner = shard_of(article_id, self.num_shards)
        kwargs = self._read_kwargs(deadline)
        _, score = self._handles[owner].call(
            "score_of", article_id=article_id, **kwargs)
        total = 0
        for handle in self._handles:
            _, ahead = handle.call("count_above", score=score,
                                   article_id=article_id, **kwargs)
            total += ahead
        return total + 1

    # ------------------------------------------------------------------
    # health

    def health(self) -> Dict[str, object]:
        """Tier health: the composed service plus every shard's rung."""
        shards: List[Dict[str, object]] = []
        for shard, handle in enumerate(self._handles):
            if not handle.alive:
                shards.append({"shard": shard, "status": "down",
                               "epoch": -1})
                continue
            try:
                shards.append(handle.call("health"))
            except Exception:  # noqa: BLE001 - a sick shard is "down"
                shards.append({"shard": shard, "status": "down",
                               "epoch": -1})
        degraded = [int(report["shard"]) for report in shards
                    if report.get("status") != "fresh"]
        service_health = self._service.health()
        if len(degraded) == self.num_shards:
            status = "down"
        elif degraded or service_health["status"] != "fresh":
            status = "degraded"
        else:
            status = "fresh"
        self._set_degraded_gauge(len(degraded))
        return {
            "status": status,
            "mode": self.mode,
            "num_shards": self.num_shards,
            "board_epoch": self._board_epoch,
            "degraded_shards": degraded,
            "respawns_total": self._respawns_total,
            "shards": shards,
            "service": service_health,
        }

    def readiness(self) -> Dict[str, object]:
        """Can the tier take traffic? Ready while any shard answers."""
        health = self.health()
        return {
            "ready": health["status"] != "down",
            "degraded": health["status"] != "fresh",
            "board_epoch": self._board_epoch,
            "degraded_shards": health["degraded_shards"],
        }

    # ------------------------------------------------------------------
    # observability (metrics registry is caller-locked, like service)

    def _count_shard(self, shard: int, outcome: str) -> None:
        if self._obs is None:
            return
        with self._stats_lock:
            self._obs.metrics.counter(
                "repro_gateway_shard_events_total",
                "Per-shard refresh/degradation events by outcome.",
                labels=("shard", "outcome")).inc(shard=str(shard),
                                                 outcome=outcome)

    def _count_query(self, outcome: str) -> None:
        if self._obs is None:
            return
        with self._stats_lock:
            self._obs.metrics.counter(
                "repro_gateway_queries_total",
                "Scatter-gather queries by outcome "
                "(merged/partial/failed).",
                labels=("outcome",)).inc(outcome=outcome)

    def _set_degraded_gauge(self, value: Optional[int] = None) -> None:
        if self._obs is None:
            return
        if value is None:
            value = sum(1 for report in self._shard_status
                        if report.get("status") not in ("refreshed",
                                                        "fresh"))
        with self._stats_lock:
            self._obs.metrics.gauge(
                "repro_gateway_degraded_shards",
                "Shards not serving the current board epoch.").set(value)

    # ------------------------------------------------------------------

    @property
    def service(self) -> RankingService:
        """The composed single-updater service (parity/monitoring)."""
        return self._service

    @property
    def board_epoch(self) -> int:
        return self._board_epoch

    def close(self) -> None:
        """Stop every shard and tear the board down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            try:
                handle.stop()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        self._executor.shutdown(wait=True)
        self._writer.close()

    def __enter__(self) -> "ShardedGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
